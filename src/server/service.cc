#include "server/service.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <set>
#include <thread>

#include "common/cancel.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "common/version.h"
#include "query/answers.h"
#include "query/batch.h"
#include "server/stats.h"

namespace xfrag::server {

using algebra::Fragment;
using algebra::OpMetrics;
using query::Strategy;

int HttpStatusForError(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return 200;
    case StatusCode::kInvalidArgument:
    case StatusCode::kParseError:
    case StatusCode::kOutOfRange:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kResourceExhausted:
      // A query that trips the powerset enumeration limits is the client's
      // to fix (choose another strategy), not a server overload.
      return 400;
    case StatusCode::kDeadlineExceeded:
      return 504;
    case StatusCode::kUnimplemented:
      return 501;
    case StatusCode::kInternal:
      return 500;
  }
  return 500;
}

StatusOr<Strategy> ParseStrategyName(std::string_view name) {
  if (name == "auto") return Strategy::kAuto;
  if (name == "brute") return Strategy::kBruteForce;
  if (name == "naive") return Strategy::kFixedPointNaive;
  if (name == "reduced") return Strategy::kFixedPointReduced;
  if (name == "pushdown") return Strategy::kPushDown;
  return Status::InvalidArgument(
      StrFormat("unknown strategy '%.*s' (expected auto|brute|naive|reduced|"
                "pushdown)",
                static_cast<int>(name.size()), name.data()));
}

FloorRegistry::Entry::Entry()
    : floor(-std::numeric_limits<double>::infinity()) {}

std::shared_ptr<FloorRegistry::Entry> FloorRegistry::Register(
    const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    if (entries_.size() >= capacity_) return nullptr;
    it = entries_.emplace(id, std::make_shared<Entry>()).first;
  }
  ++it->second->refs;
  return it->second;
}

void FloorRegistry::Deregister(const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(id);
  if (it == entries_.end()) return;
  if (--it->second->refs == 0) entries_.erase(it);
}

bool FloorRegistry::Raise(const std::string& id, double floor) {
  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(id);
    if (it == entries_.end()) return false;
    entry = it->second;
  }
  // Monotonic maximum: a concurrent raise can only leave a value at least as
  // high, so losing the CAS and re-reading is always convergent.
  double current = entry->floor.load(std::memory_order_relaxed);
  while (floor > current && !entry->floor.compare_exchange_weak(
                                current, floor, std::memory_order_relaxed)) {
  }
  return true;
}

size_t FloorRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

namespace {

// A structured error body: {"error": ..., "code": ...} plus extra fields
// callers attach (offset, metrics).
json::Value ErrorBody(const Status& status) {
  json::Value body = json::Value::Object();
  body.Set("error", status.message());
  body.Set("code", std::string(StatusCodeName(status.code())));
  return body;
}

QueryOutcome ErrorOutcome(const Status& status) {
  QueryOutcome outcome;
  outcome.http_status = HttpStatusForError(status);
  outcome.body = ErrorBody(status);
  return outcome;
}

}  // namespace

// The decoded request, after validation. Namespace-scope (not anonymous) so
// the RunParsed declaration in service.h can forward-declare it.
struct ParsedRequest {
  query::Query query;
  query::EvalOptions eval;
  double deadline_ms = 0.0;
  double debug_sleep_ms = 0.0;
  bool explain = false;
  bool include_xml = false;
  int64_t max_answers = -1;  // < 0 = unlimited
  int64_t top_k = -1;        // < 0 = no top-k cutoff
  bool rank = false;         // ranked evaluation ("top_k" implies it)
  bool rank_explicit = false;
  // Distributed top-k shard protocol (each requires top_k; see service.h).
  bool has_score_floor = false;
  double score_floor = 0.0;
  int64_t probe_documents = -1;  // < 0 = no probe cutoff
  int64_t skip_documents = 0;    // skip the first N eligible documents
  std::string query_id;
};

// Sharing state of one term-connected batch group, threaded into RunParsed
// for every item of the group. One instance per group, used by one thread.
struct BatchShared {
  // Scan-result memo shared by the group's items (query/batch.h).
  query::ScanMemo* scan_memo = nullptr;
  // Hoisted conjunctive pre-check verdicts, keyed "<doc>\x1f<folded term>":
  // whether the document's postings for the term are non-empty. The
  // pre-check is unmetered, so reusing a verdict is invisible to per-item
  // metrics.
  std::unordered_map<std::string, bool>* term_presence = nullptr;
  // Pre-check lookups answered from term_presence.
  uint64_t postings_shared = 0;
};

namespace {

Status DecodeRequest(const json::Value& root, bool allow_debug_sleep,
                     ParsedRequest* out) {
  if (!root.is_object()) {
    return Status::InvalidArgument("request body must be a JSON object");
  }
  for (const auto& [key, value] : root.members()) {
    if (key == "terms") {
      if (!value.is_array() || value.size() == 0) {
        return Status::InvalidArgument(
            "\"terms\" must be a non-empty array of strings");
      }
      for (const json::Value& term : value.items()) {
        if (!term.is_string() || term.AsString().empty()) {
          return Status::InvalidArgument(
              "\"terms\" must be a non-empty array of strings");
        }
        out->query.terms.push_back(term.AsString());
      }
    } else if (key == "filter") {
      if (!value.is_string()) {
        return Status::InvalidArgument("\"filter\" must be a string");
      }
      auto filter = query::ParseFilterExpression(value.AsString());
      if (!filter.ok()) {
        return Status::InvalidArgument("filter: " + filter.status().message());
      }
      out->query.filter = *filter;
    } else if (key == "strategy") {
      if (!value.is_string()) {
        return Status::InvalidArgument("\"strategy\" must be a string");
      }
      XFRAG_ASSIGN_OR_RETURN(out->eval.strategy,
                             ParseStrategyName(value.AsString()));
    } else if (key == "answer_mode") {
      if (value.is_string() && value.AsString() == "algebraic") {
        out->eval.answer_mode = query::AnswerMode::kAlgebraic;
      } else if (value.is_string() && value.AsString() == "leaf_strict") {
        out->eval.answer_mode = query::AnswerMode::kLeafStrict;
      } else {
        return Status::InvalidArgument(
            "\"answer_mode\" must be \"algebraic\" or \"leaf_strict\"");
      }
    } else if (key == "deadline_ms") {
      if (!value.is_number() || value.AsDouble() <= 0) {
        return Status::InvalidArgument(
            "\"deadline_ms\" must be a positive number");
      }
      out->deadline_ms = value.AsDouble();
    } else if (key == "explain") {
      if (!value.is_bool()) {
        return Status::InvalidArgument("\"explain\" must be a boolean");
      }
      out->explain = value.AsBool();
    } else if (key == "analyze") {
      if (!value.is_bool()) {
        return Status::InvalidArgument("\"analyze\" must be a boolean");
      }
      out->eval.analyze = value.AsBool();
      if (value.AsBool()) out->explain = true;
    } else if (key == "xml") {
      if (!value.is_bool()) {
        return Status::InvalidArgument("\"xml\" must be a boolean");
      }
      out->include_xml = value.AsBool();
    } else if (key == "max_answers") {
      if (!value.is_integral() || value.AsInt() < 0) {
        return Status::InvalidArgument(
            "\"max_answers\" must be a non-negative integer");
      }
      out->max_answers = value.AsInt();
    } else if (key == "top_k") {
      if (!value.is_integral() || value.AsInt() < 0) {
        return Status::InvalidArgument(
            "\"top_k\" must be a non-negative integer");
      }
      out->top_k = value.AsInt();
    } else if (key == "rank") {
      if (!value.is_bool()) {
        return Status::InvalidArgument("\"rank\" must be a boolean");
      }
      out->rank = value.AsBool();
      out->rank_explicit = true;
    } else if (key == "score_floor") {
      if (!value.is_number() || !std::isfinite(value.AsDouble())) {
        return Status::InvalidArgument(
            "\"score_floor\" must be a finite number");
      }
      out->has_score_floor = true;
      out->score_floor = value.AsDouble();
    } else if (key == "probe_documents") {
      if (!value.is_integral() || value.AsInt() < 1) {
        return Status::InvalidArgument(
            "\"probe_documents\" must be a positive integer");
      }
      out->probe_documents = value.AsInt();
    } else if (key == "skip_documents") {
      if (!value.is_integral() || value.AsInt() < 1) {
        return Status::InvalidArgument(
            "\"skip_documents\" must be a positive integer");
      }
      out->skip_documents = value.AsInt();
    } else if (key == "query_id") {
      if (!value.is_string() || value.AsString().empty() ||
          value.AsString().size() > 128) {
        return Status::InvalidArgument(
            "\"query_id\" must be a non-empty string of at most 128 bytes");
      }
      out->query_id = value.AsString();
    } else if (key == "debug_sleep_ms" && allow_debug_sleep) {
      if (!value.is_number() || value.AsDouble() < 0) {
        return Status::InvalidArgument(
            "\"debug_sleep_ms\" must be a non-negative number");
      }
      out->debug_sleep_ms = value.AsDouble();
    } else {
      return Status::InvalidArgument(
          StrFormat("unknown request field \"%s\"", key.c_str()));
    }
  }
  if (out->query.terms.empty()) {
    return Status::InvalidArgument("missing required field \"terms\"");
  }
  if (out->top_k >= 0) {
    if (out->rank_explicit && !out->rank) {
      return Status::InvalidArgument(
          "\"rank\": false conflicts with \"top_k\" (top-k answers are "
          "ranked by definition)");
    }
    out->rank = true;
  }
  // Distributed top-k fields only make sense under a bounded k, and a probe
  // is by construction the phase that *produces* the floor, so it may carry
  // neither a floor nor an update channel.
  if (out->top_k < 0) {
    if (out->has_score_floor) {
      return Status::InvalidArgument("\"score_floor\" requires \"top_k\"");
    }
    if (out->probe_documents >= 0) {
      return Status::InvalidArgument(
          "\"probe_documents\" requires \"top_k\"");
    }
    if (out->skip_documents > 0) {
      return Status::InvalidArgument(
          "\"skip_documents\" requires \"top_k\"");
    }
    if (!out->query_id.empty()) {
      return Status::InvalidArgument("\"query_id\" requires \"top_k\"");
    }
  }
  if (out->probe_documents >= 0 && out->has_score_floor) {
    return Status::InvalidArgument(
        "\"probe_documents\" conflicts with \"score_floor\"");
  }
  if (out->probe_documents >= 0 && !out->query_id.empty()) {
    return Status::InvalidArgument(
        "\"probe_documents\" conflicts with \"query_id\"");
  }
  // A probe evaluates the first documents; a resume skips them. One request
  // cannot be both halves of the split.
  if (out->probe_documents >= 0 && out->skip_documents > 0) {
    return Status::InvalidArgument(
        "\"probe_documents\" conflicts with \"skip_documents\"");
  }
  return Status::OK();
}

// The normalized-request cache key: terms case-folded (the index folds them
// anyway) and sorted (conjunctive semantics are order-free), then every
// field that can change the response body. '\x1f'/'\x1e' separators keep
// the key unambiguous. Deadline and debug-sleep are deliberately absent —
// they change timing, never a successful body, and debug-sleep requests
// bypass the cache entirely.
std::string ResultCacheKey(const ParsedRequest& request) {
  std::vector<std::string> terms;
  terms.reserve(request.query.terms.size());
  for (const std::string& term : request.query.terms) {
    terms.push_back(AsciiToLower(term));
  }
  std::sort(terms.begin(), terms.end());
  std::string key;
  for (const std::string& term : terms) {
    key += term;
    key += '\x1e';
  }
  key += '\x1f';
  key += request.query.filter != nullptr ? request.query.filter->ToString()
                                         : "";
  key += '\x1f';
  key += query::StrategyName(request.eval.strategy);
  key += '\x1f';
  key += request.eval.answer_mode == query::AnswerMode::kLeafStrict ? "L" : "A";
  key += '\x1f';
  key += StrFormat("%lld", static_cast<long long>(request.top_k));
  key += request.rank ? "\x1fR" : "\x1fU";
  key += '\x1f';
  key += StrFormat("%lld", static_cast<long long>(request.max_answers));
  key += request.include_xml ? "\x1f" "x" : "\x1f";
  key += request.explain ? "\x1f" "e" : "\x1f";
  key += request.eval.analyze ? "\x1f" "a" : "\x1f";
  // Distributed top-k: the floor and probe cutoff shape the body, so they
  // key it. "query_id" deliberately does not — it only opens the live-update
  // channel, and any body produced under a sound floor merges to the
  // identical global top-k (docs/SERVING.md), so serving a cached variant
  // across query ids is exact.
  key += '\x1f';
  if (request.has_score_floor) key += StrFormat("%.17g", request.score_floor);
  key += '\x1f';
  key += StrFormat("%lld", static_cast<long long>(request.probe_documents));
  key += '\x1f';
  key += StrFormat("%lld", static_cast<long long>(request.skip_documents));
  return key;
}

// Per-request store of one evaluated document's result, keyed by the
// document's subtree root class: a later document with the same root class
// is byte-identical, so its evaluation is replayed from here (same answers
// — node ids are document-local — same scores, same work counters).
struct StoredDocResult {
  algebra::OpMetrics metrics;
  std::vector<query::RankedAnswer> ranked;
  algebra::FragmentSet answers;
};

// One globally ranked answer, carrying its source document.
struct RankedHit {
  double score = 0.0;
  size_t document_index = 0;
  Fragment fragment;
};

// Cross-document rank order: score descending, then document index, then
// canonical fragment order — fully deterministic.
bool OutranksHit(const RankedHit& a, const RankedHit& b) {
  if (a.score != b.score) return a.score > b.score;
  if (a.document_index != b.document_index) {
    return a.document_index < b.document_index;
  }
  return a.fragment < b.fragment;
}

}  // namespace

QueryService::QueryService(const collection::Collection& collection,
                           ServiceOptions options)
    : collection_(collection),
      options_(options),
      floor_registry_(options.floor_registry_capacity) {
  caches_.reserve(collection_.size());
  std::unordered_map<doc::SubtreeClassId, size_t> root_class_counts;
  for (size_t i = 0; i < collection_.size(); ++i) {
    caches_.push_back(std::make_unique<query::FixedPointCache>(
        options_.fixed_point_cache));
    if (++root_class_counts[collection_.entry(i).classes.root_class()] == 2) {
      duplicate_root_classes_.insert(
          collection_.entry(i).classes.root_class());
    }
  }
  ResultCacheOptions cache_options;
  cache_options.max_bytes = options_.result_cache_bytes;
  cache_options.shards = options_.result_cache_shards;
  result_cache_ = std::make_unique<ResultCache>(cache_options);
}

json::Value QueryService::AnswerToJson(std::string_view document_name,
                                       size_t document_index,
                                       const Fragment& fragment,
                                       const doc::Document& document,
                                       bool include_xml) {
  json::Value answer = json::Value::Object();
  answer.Set("document", document_name);
  answer.Set("document_index", static_cast<uint64_t>(document_index));
  answer.Set("root", static_cast<uint64_t>(fragment.root()));
  answer.Set("root_tag", document.tag(fragment.root()));
  answer.Set("size", static_cast<uint64_t>(fragment.size()));
  json::Value nodes = json::Value::Array();
  for (doc::NodeId n : fragment.nodes()) {
    nodes.Append(static_cast<uint64_t>(n));
  }
  answer.Set("nodes", std::move(nodes));
  if (include_xml) {
    answer.Set("xml", query::FragmentToXml(fragment, document,
                                           /*mark_elisions=*/true));
  }
  return answer;
}

QueryOutcome QueryService::HandleQuery(std::string_view body_text) const {
  Timer timer;
  size_t error_offset = 0;
  auto root = json::Parse(body_text, &error_offset);
  if (!root.ok()) {
    QueryOutcome outcome = ErrorOutcome(root.status());
    outcome.body.Set("offset", static_cast<uint64_t>(error_offset));
    return outcome;
  }

  ParsedRequest request;
  Status decoded =
      DecodeRequest(*root, options_.enable_debug_sleep, &request);
  if (!decoded.ok()) return ErrorOutcome(decoded);
  if (request.has_score_floor) {
    floors_seeded_.fetch_add(1, std::memory_order_relaxed);
  }
  if (request.probe_documents >= 0) {
    probe_requests_.fetch_add(1, std::memory_order_relaxed);
  }
  if (request.skip_documents > 0) {
    resume_requests_.fetch_add(1, std::memory_order_relaxed);
  }
  return RunParsed(request, timer, nullptr);
}

QueryOutcome QueryService::RunParsed(ParsedRequest& request,
                                     const Timer& timer,
                                     BatchShared* shared) const {
  // Serve from the result cache when possible: a hit costs one key build and
  // one map lookup, and the engine never runs — the outcome carries zero
  // metrics, which is how the loopback tests prove the hit was served
  // without evaluation. Only request-specific echo fields are re-stamped.
  std::string cache_key;
  if (result_cache_->enabled() && request.debug_sleep_ms <= 0) {
    cache_key = ResultCacheKey(request);
    if (auto cached = result_cache_->Find(cache_key)) {
      QueryOutcome outcome;
      outcome.http_status = 200;
      outcome.body = *cached;
      outcome.body.Set("query", request.query.ToString());
      outcome.body.Set("result_cache", "hit");
      outcome.body.Set("elapsed_ms", timer.ElapsedMillis());
      return outcome;
    }
  }

  // Resolve the deadline policy: request value, else the server default,
  // both clamped to the configured ceiling.
  double deadline_ms = request.deadline_ms > 0 ? request.deadline_ms
                                               : options_.default_deadline_ms;
  if (options_.max_deadline_ms > 0 &&
      (deadline_ms <= 0 || deadline_ms > options_.max_deadline_ms)) {
    deadline_ms = options_.max_deadline_ms;
  }
  CancelToken cancel;
  if (deadline_ms > 0) {
    cancel.SetDeadlineAfter(std::chrono::nanoseconds(
        static_cast<int64_t>(deadline_ms * 1e6)));
    request.eval.executor.cancel = &cancel;
  }

  if (request.debug_sleep_ms > 0) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(
        static_cast<int64_t>(request.debug_sleep_ms * 1e6)));
  }

  QueryOutcome outcome;
  json::Value answers = json::Value::Array();
  json::Value explains = json::Value::Array();
  size_t answer_count = 0;
  size_t documents_evaluated = 0;
  size_t documents_skipped = 0;
  bool truncated = false;

  // Ranked evaluation asks each document for its k best answers (the global
  // top k is a subset of the per-document top k's), then merges. "rank"
  // without "top_k" ranks everything: an effectively-unbounded k keeps the
  // engine on the ranked path without ever pruning.
  const bool ranked_mode = request.rank;
  const int64_t effective_k = request.top_k >= 0
                                  ? request.top_k
                                  : std::numeric_limits<int64_t>::max();
  std::vector<RankedHit> hits;

  // Distributed top-k: open the live-update channel for the query's id (the
  // registration must precede the first evaluation so no raise is lost), and
  // prepare the cross-document floor. Both only ever *raise* the bound each
  // collector prunes against; soundness arguments in docs/SERVING.md.
  std::shared_ptr<FloorRegistry::Entry> live_entry;
  if (!request.query_id.empty()) {
    live_entry = floor_registry_.Register(request.query_id);
  }
  struct RegistryGuard {
    FloorRegistry* registry = nullptr;
    const std::string* id = nullptr;
    ~RegistryGuard() {
      if (registry != nullptr) registry->Deregister(*id);
    }
  } registry_guard{live_entry != nullptr ? &floor_registry_ : nullptr,
                   &request.query_id};
  // The running k best scores across already-evaluated documents: once k
  // answers are known, the smallest of them is a sound floor for every later
  // document (its witnesses are real answers of this very query).
  const bool self_seed =
      options_.enable_cross_document_floor && request.top_k > 0;
  std::multiset<double> best_scores;

  // Document-class dedup (DAG compression): documents whose roots intern to
  // the same subtree class are byte-identical, so the first one evaluated in
  // this request serves as the representative and later members replay its
  // stored result. EXPLAIN requests evaluate every document (each body
  // carries a per-document explain entry), so they skip the dedup.
  const bool dedup_documents =
      algebra::DagCompressionEnabled() && !request.explain;
  std::unordered_map<doc::SubtreeClassId, StoredDocResult> evaluated_classes;
  size_t documents_deduplicated = 0;

  // Resume half of a probe/resume split: pass over the first N eligible
  // documents without evaluating them. Counter bookkeeping is exactly
  // complementary to the probe's (which breaks right after its N-th eligible
  // evaluation): ineligible documents ahead of the resume point were already
  // counted by the probe, so the probe body and the resume body sum to the
  // single-request counters field by field.
  int64_t resume_skip = request.skip_documents;
  for (size_t i = 0; i < collection_.size(); ++i) {
    if (request.probe_documents >= 0 &&
        documents_evaluated >= static_cast<size_t>(request.probe_documents)) {
      break;  // Probe: the first N eligible documents only.
    }
    const collection::CollectionEntry& entry = collection_.entry(i);
    // Conjunctive pre-check, as in CollectionEngine: a document missing any
    // term cannot contribute answers, so skip it without building a plan.
    // Within a batch group the verdict is hoisted into the shared presence
    // map, so the group's items probe each (document, term) pair once.
    bool has_all_terms = true;
    for (const std::string& term : request.query.terms) {
      bool present;
      if (shared != nullptr) {
        std::string presence_key = StrFormat("%zu", i);
        presence_key += '\x1f';
        presence_key += AsciiToLower(term);
        auto it = shared->term_presence->find(presence_key);
        if (it != shared->term_presence->end()) {
          ++shared->postings_shared;
          present = it->second;
        } else {
          present = !entry.index.Lookup(term).empty();
          shared->term_presence->emplace(std::move(presence_key), present);
        }
      } else {
        present = !entry.index.Lookup(term).empty();
      }
      if (!present) {
        has_all_terms = false;
        break;
      }
    }
    if (!has_all_terms) {
      if (resume_skip <= 0) ++documents_skipped;
      continue;
    }
    if (resume_skip > 0) {
      --resume_skip;
      continue;
    }

    const bool dedup_this_document =
        dedup_documents &&
        duplicate_root_classes_.count(entry.classes.root_class()) > 0;
    if (dedup_this_document) {
      auto it = evaluated_classes.find(entry.classes.root_class());
      if (it != evaluated_classes.end()) {
        // Replay the representative: identical documents yield identical
        // answers (node ids are document-local), scores, and counters, so
        // the response body is bit-identical to evaluating this document.
        const StoredDocResult& stored = it->second;
        outcome.metrics.Merge(stored.metrics);
        ++documents_evaluated;
        ++documents_deduplicated;
        if (ranked_mode) {
          for (const query::RankedAnswer& answer : stored.ranked) {
            if (self_seed) {
              best_scores.insert(answer.score);
              if (best_scores.size() > static_cast<size_t>(request.top_k)) {
                best_scores.erase(best_scores.begin());
              }
            }
            hits.push_back(RankedHit{answer.score, i, answer.fragment});
          }
        } else {
          for (const Fragment& fragment : stored.answers.Sorted()) {
            ++answer_count;
            if (request.max_answers >= 0 &&
                answers.size() >= static_cast<size_t>(request.max_answers)) {
              truncated = true;
              continue;
            }
            answers.Append(AnswerToJson(entry.name, i, fragment,
                                        entry.document, request.include_xml));
          }
        }
        continue;
      }
    }

    query::EvalOptions eval = request.eval;
    eval.executor.fixed_point_cache = caches_[i].get();
    eval.executor.subtree_classes = &entry.classes;
    if (shared != nullptr) {
      eval.executor.scan_memo = shared->scan_memo;
      eval.executor.scan_memo_document = i;
    }
    if (ranked_mode) eval.top_k = effective_k;
    if (request.has_score_floor) {
      eval.executor.score_floor = request.score_floor;
    }
    if (self_seed && best_scores.size() >= static_cast<size_t>(request.top_k)) {
      double running_kth = *best_scores.begin();
      if (running_kth > eval.executor.score_floor) {
        eval.executor.score_floor = running_kth;
      }
    }
    if (live_entry != nullptr) {
      eval.executor.live_score_floor = &live_entry->floor;
    }
    OpMetrics partial;
    eval.metrics_sink = &partial;
    query::QueryEngine engine(entry.document, entry.index);
    auto result = engine.Evaluate(request.query, eval);
    outcome.metrics.Merge(partial);
    if (!result.ok()) {
      QueryOutcome error = ErrorOutcome(result.status());
      error.metrics = outcome.metrics;
      error.body.Set("documents_evaluated",
                     static_cast<uint64_t>(documents_evaluated));
      error.body.Set("metrics", StatsRegistry::OpMetricsToJson(error.metrics));
      if (error.http_status == 504) {
        error.body.Set("partial", true);
      }
      return error;
    }
    ++documents_evaluated;
    if (dedup_this_document) {
      StoredDocResult stored;
      stored.metrics = partial;
      stored.ranked = result->ranked;
      stored.answers = result->answers;
      evaluated_classes.emplace(entry.classes.root_class(),
                                std::move(stored));
    }
    if (ranked_mode) {
      for (query::RankedAnswer& answer : result->ranked) {
        if (self_seed) {
          best_scores.insert(answer.score);
          if (best_scores.size() > static_cast<size_t>(request.top_k)) {
            best_scores.erase(best_scores.begin());
          }
        }
        hits.push_back(RankedHit{answer.score, i, std::move(answer.fragment)});
      }
    } else {
      for (const Fragment& fragment : result->answers.Sorted()) {
        ++answer_count;
        if (request.max_answers >= 0 &&
            answers.size() >= static_cast<size_t>(request.max_answers)) {
          truncated = true;
          continue;
        }
        answers.Append(AnswerToJson(entry.name, i, fragment, entry.document,
                                    request.include_xml));
      }
    }
    if (request.explain) {
      json::Value explain = json::Value::Object();
      explain.Set("document", entry.name);
      explain.Set("strategy_used",
                  std::string(query::StrategyName(result->strategy_used)));
      explain.Set("text", result->explain);
      explains.Append(std::move(explain));
    }
  }

  if (ranked_mode) {
    std::sort(hits.begin(), hits.end(), OutranksHit);
    if (hits.size() > static_cast<uint64_t>(effective_k)) {
      hits.erase(hits.begin() + static_cast<ptrdiff_t>(effective_k),
                 hits.end());
    }
    answer_count = hits.size();
    for (const RankedHit& hit : hits) {
      if (request.max_answers >= 0 &&
          answers.size() >= static_cast<size_t>(request.max_answers)) {
        truncated = true;
        break;
      }
      const collection::CollectionEntry& entry =
          collection_.entry(hit.document_index);
      json::Value answer =
          AnswerToJson(entry.name, hit.document_index, hit.fragment,
                       entry.document, request.include_xml);
      answer.Set("score", hit.score);
      answers.Append(std::move(answer));
    }
  }

  json::Value body = json::Value::Object();
  body.Set("query", request.query.ToString());
  if (ranked_mode) {
    body.Set("ranked", true);
    if (request.top_k >= 0) body.Set("top_k", request.top_k);
  }
  if (request.probe_documents >= 0) body.Set("probe", true);
  if (request.skip_documents > 0) body.Set("resume", true);
  body.Set("documents", static_cast<uint64_t>(collection_.size()));
  body.Set("documents_evaluated", static_cast<uint64_t>(documents_evaluated));
  body.Set("documents_skipped", static_cast<uint64_t>(documents_skipped));
  body.Set("answer_count", static_cast<uint64_t>(answer_count));
  if (truncated) body.Set("truncated", true);
  body.Set("answers", std::move(answers));
  body.Set("metrics", StatsRegistry::OpMetricsToJson(outcome.metrics));
  if (request.explain) body.Set("explain", std::move(explains));
  body.Set("elapsed_ms", timer.ElapsedMillis());
  dag_documents_deduplicated_.fetch_add(documents_deduplicated,
                                        std::memory_order_relaxed);
  dag_class_pairs_considered_.fetch_add(
      outcome.metrics.class_pairs_considered, std::memory_order_relaxed);
  dag_answers_multiplied_out_.fetch_add(
      outcome.metrics.answers_multiplied_out, std::memory_order_relaxed);
  outcome.body = std::move(body);
  // Only fully successful bodies are cached (errors and deadline
  // expirations returned above never reach this point).
  if (!cache_key.empty()) result_cache_->Insert(cache_key, outcome.body);
  return outcome;
}

QueryOutcome QueryService::HandleQueryBatch(std::string_view body_text) const {
  Timer timer;
  size_t error_offset = 0;
  auto root = json::Parse(body_text, &error_offset);
  if (!root.ok()) {
    QueryOutcome outcome = ErrorOutcome(root.status());
    outcome.body.Set("offset", static_cast<uint64_t>(error_offset));
    return outcome;
  }
  // Accept a bare array of query objects or the {"queries": [...]} envelope.
  const json::Value* queries = nullptr;
  if (root->is_array()) {
    queries = &*root;
  } else if (root->is_object()) {
    for (const auto& [key, value] : root->members()) {
      if (key == "queries") {
        if (!value.is_array()) {
          return ErrorOutcome(Status::InvalidArgument(
              "\"queries\" must be an array of query objects"));
        }
        queries = &value;
      } else {
        return ErrorOutcome(Status::InvalidArgument(
            StrFormat("unknown batch field \"%s\"", key.c_str())));
      }
    }
    if (queries == nullptr) {
      return ErrorOutcome(
          Status::InvalidArgument("missing required field \"queries\""));
    }
  } else {
    return ErrorOutcome(Status::InvalidArgument(
        "batch body must be a JSON array or {\"queries\": [...]}"));
  }
  if (queries->size() == 0) {
    return ErrorOutcome(
        Status::InvalidArgument("batch must contain at least one query"));
  }
  if (queries->size() > options_.batch_max_items) {
    return ErrorOutcome(Status::InvalidArgument(
        StrFormat("batch of %zu items exceeds the %zu-item limit",
                  queries->size(), options_.batch_max_items)));
  }

  struct Item {
    ParsedRequest request;
    bool runnable = false;
    int http_status = 0;
    json::Value body;
    algebra::OpMetrics metrics;
    bool result_cache_hit = false;
  };
  std::vector<Item> items(queries->size());
  // Decode every item up front, in submission order, so the distributed
  // top-k observability counters tick exactly as N sequential /query
  // requests would have ticked them. A malformed item becomes a per-item
  // structured 400 — it never poisons the rest of the batch.
  std::vector<size_t> runnable;  // original index per runnable position
  for (size_t i = 0; i < queries->size(); ++i) {
    Item& item = items[i];
    Status decoded = DecodeRequest((*queries)[i], options_.enable_debug_sleep,
                                   &item.request);
    if (!decoded.ok()) {
      QueryOutcome error = ErrorOutcome(decoded);
      item.http_status = error.http_status;
      item.body = std::move(error.body);
      continue;
    }
    if (item.request.has_score_floor) {
      floors_seeded_.fetch_add(1, std::memory_order_relaxed);
    }
    if (item.request.probe_documents >= 0) {
      probe_requests_.fetch_add(1, std::memory_order_relaxed);
    }
    if (item.request.skip_documents > 0) {
      resume_requests_.fetch_add(1, std::memory_order_relaxed);
    }
    item.runnable = true;
    runnable.push_back(i);
  }

  // Partition the runnable items into term-connected groups. Items inside a
  // group run sequentially in submission order, so every piece of shared
  // mutable state they can observe (fixed-point cache, result cache)
  // evolves exactly as under sequential /query requests; distinct groups
  // touch disjoint term sets — hence disjoint cache keys — and may run on
  // different workers.
  std::vector<const query::Query*> runnable_queries;
  runnable_queries.reserve(runnable.size());
  for (size_t i : runnable) {
    runnable_queries.push_back(&items[i].request.query);
  }
  std::vector<std::vector<size_t>> groups =
      query::GroupQueriesByTerms(runnable_queries);

  std::atomic<uint64_t> subplans_shared{0};
  std::atomic<uint64_t> postings_shared{0};
  auto run_group = [&](const std::vector<size_t>& members) {
    query::ScanMemo memo;
    std::unordered_map<std::string, bool> term_presence;
    BatchShared shared{&memo, &term_presence, 0};
    for (size_t member : members) {
      Item& item = items[runnable[member]];
      Timer item_timer;
      QueryOutcome outcome = RunParsed(item.request, item_timer, &shared);
      item.result_cache_hit = outcome.http_status == 200 &&
                              outcome.body.Find("result_cache") != nullptr;
      item.http_status = outcome.http_status;
      item.body = std::move(outcome.body);
      item.metrics = outcome.metrics;
    }
    // A memo hit is a scan sub-plan answered without touching the postings:
    // it counts once as a shared sub-plan and once as a shared posting
    // decode; hoisted pre-check reuses add to the latter.
    subplans_shared.fetch_add(memo.hits(), std::memory_order_relaxed);
    postings_shared.fetch_add(memo.hits() + shared.postings_shared,
                              std::memory_order_relaxed);
  };
  const size_t group_parallelism = std::min<size_t>(
      options_.batch_parallelism == 0 ? 1 : options_.batch_parallelism,
      groups.size());
  if (group_parallelism > 1) {
    ThreadPool pool(static_cast<unsigned>(group_parallelism));
    pool.ParallelFor(groups.size(),
                     [&](unsigned /*chunk*/, size_t begin, size_t end) {
                       for (size_t g = begin; g < end; ++g) {
                         run_group(groups[g]);
                       }
                     });
  } else {
    for (const std::vector<size_t>& members : groups) run_group(members);
  }

  QueryOutcome outcome;
  outcome.http_status = 200;
  uint64_t cache_hits = 0;
  json::Value results = json::Value::Array();
  for (Item& item : items) {
    if (item.result_cache_hit) ++cache_hits;
    json::Value entry = json::Value::Object();
    entry.Set("status", static_cast<int64_t>(item.http_status));
    entry.Set("body", std::move(item.body));
    results.Append(std::move(entry));
    outcome.metrics.Merge(item.metrics);
  }
  const uint64_t evaluated =
      static_cast<uint64_t>(runnable.size()) - cache_hits;
  json::Value batch = json::Value::Object();
  batch.Set("items", static_cast<uint64_t>(items.size()));
  batch.Set("groups", static_cast<uint64_t>(groups.size()));
  batch.Set("evaluated", evaluated);
  batch.Set("result_cache_hits", cache_hits);
  batch.Set("subplans_shared",
            subplans_shared.load(std::memory_order_relaxed));
  batch.Set("postings_shared",
            postings_shared.load(std::memory_order_relaxed));
  json::Value body = json::Value::Object();
  body.Set("results", std::move(results));
  body.Set("batch", std::move(batch));
  body.Set("elapsed_ms", timer.ElapsedMillis());
  outcome.body = std::move(body);

  batches_.fetch_add(1, std::memory_order_relaxed);
  batch_items_.fetch_add(items.size(), std::memory_order_relaxed);
  batch_result_cache_hits_.fetch_add(cache_hits, std::memory_order_relaxed);
  batch_subplans_shared_.fetch_add(
      subplans_shared.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  batch_postings_shared_.fetch_add(
      postings_shared.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(batch_mu_);
    batch_sizes_.Record(items.size());
  }
  return outcome;
}

QueryOutcome QueryService::HandleThresholdUpdate(
    std::string_view body_text) const {
  floor_updates_received_.fetch_add(1, std::memory_order_relaxed);
  size_t error_offset = 0;
  auto root = json::Parse(body_text, &error_offset);
  if (!root.ok()) {
    QueryOutcome outcome = ErrorOutcome(root.status());
    outcome.body.Set("offset", static_cast<uint64_t>(error_offset));
    return outcome;
  }
  if (!root->is_object()) {
    return ErrorOutcome(
        Status::InvalidArgument("request body must be a JSON object"));
  }
  std::string query_id;
  bool has_floor = false;
  double floor = 0.0;
  for (const auto& [key, value] : root->members()) {
    if (key == "query_id") {
      if (!value.is_string() || value.AsString().empty() ||
          value.AsString().size() > 128) {
        return ErrorOutcome(Status::InvalidArgument(
            "\"query_id\" must be a non-empty string of at most 128 bytes"));
      }
      query_id = value.AsString();
    } else if (key == "score_floor") {
      if (!value.is_number() || !std::isfinite(value.AsDouble())) {
        return ErrorOutcome(Status::InvalidArgument(
            "\"score_floor\" must be a finite number"));
      }
      has_floor = true;
      floor = value.AsDouble();
    } else {
      return ErrorOutcome(Status::InvalidArgument(
          StrFormat("unknown request field \"%s\"", key.c_str())));
    }
  }
  if (query_id.empty()) {
    return ErrorOutcome(
        Status::InvalidArgument("missing required field \"query_id\""));
  }
  if (!has_floor) {
    return ErrorOutcome(
        Status::InvalidArgument("missing required field \"score_floor\""));
  }
  // An unknown id is a normal race (the query already answered), not an
  // error: the router fires updates without awaiting them.
  bool updated = floor_registry_.Raise(query_id, floor);
  if (updated) floor_updates_applied_.fetch_add(1, std::memory_order_relaxed);
  QueryOutcome outcome;
  outcome.http_status = 200;
  outcome.body = json::Value::Object();
  outcome.body.Set("updated", updated);
  return outcome;
}

json::Value QueryService::DistributedTopKStatsJson() const {
  json::Value body = json::Value::Object();
  body.Set("floors_seeded",
           floors_seeded_.load(std::memory_order_relaxed));
  body.Set("probe_requests",
           probe_requests_.load(std::memory_order_relaxed));
  body.Set("resume_requests",
           resume_requests_.load(std::memory_order_relaxed));
  body.Set("floor_updates_received",
           floor_updates_received_.load(std::memory_order_relaxed));
  body.Set("floor_updates_applied",
           floor_updates_applied_.load(std::memory_order_relaxed));
  body.Set("active_floor_entries",
           static_cast<uint64_t>(floor_registry_.size()));
  return body;
}

json::Value QueryService::BatchStatsJson() const {
  json::Value body = json::Value::Object();
  body.Set("batches", batches_.load(std::memory_order_relaxed));
  body.Set("items", batch_items_.load(std::memory_order_relaxed));
  body.Set("result_cache_hits",
           batch_result_cache_hits_.load(std::memory_order_relaxed));
  body.Set("subplans_shared",
           batch_subplans_shared_.load(std::memory_order_relaxed));
  body.Set("postings_shared",
           batch_postings_shared_.load(std::memory_order_relaxed));
  {
    std::lock_guard<std::mutex> lock(batch_mu_);
    body.Set("size", StatsRegistry::LatencyToJson(batch_sizes_));
  }
  return body;
}

json::Value QueryService::DagStatsJson() const {
  const doc::SubtreeClassInterner& interner = collection_.subtree_classes();
  json::Value body = json::Value::Object();
  body.Set("enabled", algebra::DagCompressionEnabled());
  body.Set("classes", static_cast<uint64_t>(interner.size()));
  const uint64_t total_nodes = collection_.TotalNodes();
  body.Set("total_nodes", total_nodes);
  body.Set("unique_subtree_nodes", interner.unique_subtree_nodes());
  body.Set("compression_ratio",
           interner.unique_subtree_nodes() > 0
               ? static_cast<double>(total_nodes) /
                     static_cast<double>(interner.unique_subtree_nodes())
               : 1.0);
  std::set<doc::SubtreeClassId> root_classes;
  for (size_t i = 0; i < collection_.size(); ++i) {
    root_classes.insert(collection_.entry(i).classes.root_class());
  }
  body.Set("documents", static_cast<uint64_t>(collection_.size()));
  body.Set("distinct_documents", static_cast<uint64_t>(root_classes.size()));
  body.Set("documents_deduplicated",
           dag_documents_deduplicated_.load(std::memory_order_relaxed));
  body.Set("class_pairs_considered",
           dag_class_pairs_considered_.load(std::memory_order_relaxed));
  body.Set("answers_multiplied_out",
           dag_answers_multiplied_out_.load(std::memory_order_relaxed));
  return body;
}

json::Value QueryService::HealthzJson() const {
  json::Value body = json::Value::Object();
  body.Set("status", "ok");
  body.Set("documents", static_cast<uint64_t>(collection_.size()));
  body.Set("total_nodes", static_cast<uint64_t>(collection_.TotalNodes()));
  return body;
}

json::Value QueryService::VersionJson() const {
  json::Value body = json::Value::Object();
  body.Set("version", kVersion);
  body.Set("build", BuildInfo("xfragd"));
  return body;
}

json::Value QueryService::CacheStatsJson() const {
  uint64_t entries = 0, bytes = 0, hits = 0, misses = 0, evictions = 0;
  for (const auto& cache : caches_) {
    entries += cache->size();
    bytes += cache->bytes();
    hits += cache->hits();
    misses += cache->misses();
    evictions += cache->evictions();
  }
  json::Value body = json::Value::Object();
  body.Set("entries", entries);
  body.Set("bytes", bytes);
  body.Set("hits", hits);
  body.Set("misses", misses);
  body.Set("evictions", evictions);
  return body;
}

json::Value QueryService::ResultCacheStatsJson() const {
  return result_cache_->StatsJson();
}

void QueryService::InvalidateCaches() const {
  result_cache_->Clear();
  for (const auto& cache : caches_) cache->Clear();
}

}  // namespace xfrag::server
