#include "server/http_server.h"

#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/json.h"
#include "common/logging.h"
#include "common/strings.h"
#include "common/timer.h"

namespace xfrag::server {

namespace {

constexpr std::string_view kJsonType = "application/json";

std::string JsonError(int status, std::string_view message) {
  json::Value body = json::Value::Object();
  body.Set("error", message);
  body.Set("status", static_cast<int64_t>(status));
  return RenderHttpResponse(status, kJsonType, body.Dump());
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    char ca = a[i], cb = b[i];
    if (ca >= 'A' && ca <= 'Z') ca = static_cast<char>(ca - 'A' + 'a');
    if (cb >= 'A' && cb <= 'Z') cb = static_cast<char>(cb - 'A' + 'a');
    if (ca != cb) return false;
  }
  return true;
}

/// Whether the client permits reuse: HTTP/1.1 defaults to keep-alive unless
/// `Connection: close`; HTTP/1.0 requires an explicit `Connection:
/// keep-alive`.
bool ClientAllowsKeepAlive(const HttpRequest& request) {
  const std::string* connection = request.FindHeader("Connection");
  if (request.version == "HTTP/1.1") {
    return connection == nullptr || !EqualsIgnoreCase(*connection, "close");
  }
  return connection != nullptr && EqualsIgnoreCase(*connection, "keep-alive");
}

}  // namespace

HttpServer::HttpServer(HttpDispatcher& dispatcher, HttpServerOptions options)
    : dispatcher_(dispatcher), options_(std::move(options)) {
  if (options_.workers < 1) options_.workers = 1;
  if (options_.queue_capacity < 0) options_.queue_capacity = 0;
  if (options_.keep_alive_idle_timeout_ms < 1) {
    options_.keep_alive_idle_timeout_ms = 1;
  }
}

HttpServer::~HttpServer() { Shutdown(); }

Status HttpServer::Start() {
  XFRAG_CHECK(!started_.load() && "HttpServer::Start called twice");
  XFRAG_ASSIGN_OR_RETURN(listen_fd_, ListenTcp(options_.host, options_.port));
  XFRAG_ASSIGN_OR_RETURN(port_, LocalPort(listen_fd_.get()));
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    return Status::Internal(StrFormat("pipe: %s", std::strerror(errno)));
  }
  wake_read_ = UniqueFd(pipe_fds[0]);
  wake_write_ = UniqueFd(pipe_fds[1]);
  // Non-blocking both ways: the drain loop must not hang on an empty pipe,
  // and a full pipe must not block parking (the poller is awake anyway).
  (void)::fcntl(wake_read_.get(), F_SETFL, O_NONBLOCK);
  (void)::fcntl(wake_write_.get(), F_SETFL, O_NONBLOCK);
  // +1: ThreadPool(p) spawns p-1 OS threads, and Post()ed work only runs on
  // spawned threads — the accept loop never calls into the pool's run loop.
  pool_ = std::make_unique<ThreadPool>(
      static_cast<unsigned>(options_.workers) + 1);
  started_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void HttpServer::Shutdown() {
  if (!started_.load()) return;
  // Serialize concurrent Shutdown calls; the second caller blocks until the
  // first has fully drained, so "Shutdown returned" always means "quiet".
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mutex_);
  stopping_.store(true);
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::unique_lock<std::mutex> lock(drain_mutex_);
    drained_.wait(lock, [this] {
      return in_flight_.load(std::memory_order_acquire) == 0;
    });
  }
  pool_.reset();
  listen_fd_.Reset();
}

void HttpServer::AcceptLoop() {
  std::vector<ParkedConnection> parked;
  std::vector<pollfd> pfds;
  while (!stopping_.load(std::memory_order_relaxed)) {
    // Adopt freshly parked connections so this round's poll watches them.
    {
      std::lock_guard<std::mutex> lock(park_mutex_);
      for (auto& p : park_inbox_) parked.push_back(std::move(p));
      park_inbox_.clear();
    }

    auto now = std::chrono::steady_clock::now();
    int timeout_ms = 100;  // tick: re-check stopping_ at least this often
    pfds.clear();
    pfds.push_back({listen_fd_.get(), POLLIN, 0});
    pfds.push_back({wake_read_.get(), POLLIN, 0});
    for (const auto& p : parked) {
      pfds.push_back({p.conn.get(), POLLIN, 0});
      auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                      p.idle_deadline - now)
                      .count();
      timeout_ms = std::clamp(static_cast<int>(left), 0, timeout_ms);
    }

    int ready = ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()),
                       timeout_ms);
    if (ready < 0) continue;  // EINTR: re-check stopping_

    if (pfds[1].revents != 0) {
      char buf[256];
      while (::read(wake_read_.get(), buf, sizeof(buf)) > 0) {
      }
    }

    // Resume readable parked connections (a worker picks them back up; EOF
    // and errors surface in its read), close the ones past their idle
    // deadline. pfds[i + 2] corresponds to parked[i].
    now = std::chrono::steady_clock::now();
    size_t kept = 0;
    for (size_t i = 0; i < parked.size(); ++i) {
      if (pfds[i + 2].revents != 0) {
        int fd = parked[i].conn.Release();
        int served = parked[i].served;
        pool_->Post(
            [this, fd, served] { HandleConnection(UniqueFd(fd), served); });
      } else if (parked[i].idle_deadline <= now) {
        parked[i].conn.Reset();  // silent close, as the idle contract says
        FinishExchange();
      } else {
        parked[kept++] = std::move(parked[i]);
      }
    }
    parked.resize(kept);

    if (pfds[0].revents == 0) continue;
    UniqueFd conn(::accept(listen_fd_.get(), nullptr, nullptr));
    if (!conn.valid()) continue;

    int capacity = options_.workers + options_.queue_capacity;
    // Optimistically claim a slot; release it again if over capacity. The
    // counter is the single admission authority, so two racing accepts can
    // never both squeeze past a full server. Under keep-alive the slot is
    // held for the connection's whole lifetime, so a parked idle connection
    // still counts against capacity — reuse is a resource, not a freebie.
    int admitted = in_flight_.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (admitted > capacity) {
      FinishExchange();
      Timer timer;
      (void)SetSocketTimeouts(conn.get(), /*timeout_ms=*/250);
      std::string response = RenderHttpResponse(
          503, kJsonType,
          "{\"error\":\"server at capacity, retry later\",\"status\":503}",
          "Retry-After: 1\r\n");
      // Record before the bytes go out: once the client has its response it
      // may immediately ask /metrics, which must already include this one.
      stats_.RecordRequest(503,
                           static_cast<uint64_t>(timer.ElapsedMicros()),
                           nullptr);
      (void)WriteAll(conn.get(), response);
      // The request was never read; closing now would RST the 503 out from
      // under the client. Half-close and drain until the client has read the
      // response and hung up (bounded by the short socket timeout above).
      ::shutdown(conn.get(), SHUT_WR);
      char drain[4096];
      while (true) {
        auto n = ReadSome(conn.get(), drain, sizeof(drain));
        if (!n.ok() || *n == 0) break;
      }
      continue;
    }
    int fd = conn.Release();
    pool_->Post([this, fd] { HandleConnection(UniqueFd(fd), /*served=*/0); });
  }

  // Drain: close every parked connection. ParkConnection rejects newcomers
  // once it observes stopping_, and its mutex orders that check against this
  // final sweep, so none can slip in afterwards.
  std::lock_guard<std::mutex> lock(park_mutex_);
  for (auto& p : park_inbox_) parked.push_back(std::move(p));
  park_inbox_.clear();
  for (auto& p : parked) {
    p.conn.Reset();
    FinishExchange();
  }
}

void HttpServer::ParkConnection(UniqueFd conn, int served) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(options_.keep_alive_idle_timeout_ms);
  std::lock_guard<std::mutex> lock(park_mutex_);
  if (stopping_.load(std::memory_order_relaxed)) {
    conn.Reset();  // the poller may already be past its final sweep
    FinishExchange();
    return;
  }
  park_inbox_.push_back(ParkedConnection{std::move(conn), served, deadline});
  char byte = 1;
  (void)!::write(wake_write_.get(), &byte, 1);
}

void HttpServer::FinishExchange() {
  if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(drain_mutex_);
    drained_.notify_all();
  }
}

void HttpServer::LingeringClose(UniqueFd* conn) {
  // If the client is still mid-send (a parser error cut the read short), a
  // bare close() would RST the response away. Half-close, then drain until
  // the peer has read the response and hung up.
  ::shutdown(conn->get(), SHUT_WR);
  (void)SetSocketTimeouts(conn->get(), /*timeout_ms=*/250);
  char drain[4096];
  while (true) {
    auto n = ReadSome(conn->get(), drain, sizeof(drain));
    if (!n.ok() || *n == 0) break;
  }
  conn->Reset();
}

void HttpServer::HandleConnection(UniqueFd conn, int served) {
  if (served == 0) {
    (void)SetSocketTimeouts(conn.get(), options_.request_timeout_ms);
  }

  std::string leftover;
  int linger_streak = 0;
  while (conn.valid()) {
    // Between keep-alive requests, linger briefly for the next request
    // before handing the connection back to the poller. A busy closed-loop
    // client has the next request on the wire within microseconds; serving
    // it on this same worker skips the park → self-pipe wakeup → poll
    // dispatch → ThreadPool::Post round trip that otherwise taxes every
    // keep-alive exchange. A connection that stays quiet past the linger
    // still parks, so the poller keeps enforcing the idle timeout, and a
    // burst cap force-parks hot connections so they cannot pin a worker
    // while parked connections with requests pending wait. Pipelined
    // leftover bytes (a request that already arrived) skip the wait.
    if (served > 0 && leftover.empty()) {
      const bool burst_exhausted =
          options_.keep_alive_linger_burst > 0 &&
          linger_streak >= options_.keep_alive_linger_burst;
      pollfd pfd{conn.get(), POLLIN, 0};
      int ready = ::poll(
          &pfd, 1,
          burst_exhausted ? 0 : std::max(0, options_.keep_alive_linger_ms));
      if (ready == 0 || (ready > 0 && burst_exhausted)) {
        ParkConnection(std::move(conn), served);
        return;  // the admission slot travels with the parked connection
      }
      if (ready < 0) break;  // poll error: silent close
      ++linger_streak;
    }

    Timer timer;
    HttpRequestParser parser(options_.max_body_bytes);
    auto state = HttpRequestParser::State::kNeedMore;
    if (!leftover.empty()) {
      state = parser.Feed(leftover);
      leftover.clear();
    }
    char buf[16 * 1024];
    bool timed_out = false;
    bool peer_closed = false;
    while (state == HttpRequestParser::State::kNeedMore) {
      auto n = ReadSome(conn.get(), buf, sizeof(buf));
      if (!n.ok()) {
        timed_out = n.status().code() == StatusCode::kDeadlineExceeded;
        break;
      }
      if (*n == 0) {
        peer_closed = true;
        break;
      }
      state = parser.Feed(std::string_view(buf, *n));
    }

    if (peer_closed && state == HttpRequestParser::State::kNeedMore) {
      // EOF between requests (or mid-request): nothing to answer, nothing to
      // record — it never became a request.
      break;
    }

    std::string response;
    int status = 0;
    bool keep_alive = false;
    algebra::OpMetrics metrics;
    bool has_metrics = false;
    if (state == HttpRequestParser::State::kComplete) {
      // Decide the connection's fate before dispatch so the response can
      // carry the matching Connection header.
      ++served;
      keep_alive = options_.keep_alive &&
                   !stopping_.load(std::memory_order_relaxed) &&
                   (options_.max_requests_per_connection == 0 ||
                    served < options_.max_requests_per_connection) &&
                   ClientAllowsKeepAlive(parser.request());
      response = dispatcher_.Dispatch(parser.request(), keep_alive, &status,
                                      &metrics, &has_metrics);
    } else if (state == HttpRequestParser::State::kError) {
      status = parser.error_status();
      response = JsonError(status, parser.error());
    } else if (timed_out) {
      // A timeout with a half-read request gets 408; an idle-wait timeout was
      // already handled above by the silent close.
      status = 408;
      response = JsonError(408, "timed out waiting for the request");
    }

    if (status != 0) {
      // Record before the bytes go out: a client that has read its response
      // may immediately ask /metrics, which must already include this one.
      stats_.RecordRequest(status,
                           static_cast<uint64_t>(timer.ElapsedMicros()),
                           has_metrics ? &metrics : nullptr);
      (void)WriteAll(conn.get(), response);
    }
    if (status == 0 || !keep_alive) {
      if (status != 0) {
        LingeringClose(&conn);
      }
      break;
    }
    // Connection stays open: any pipelined bytes seed the next parser.
    leftover = parser.TakeRemaining();
  }

  conn.Reset();  // close before releasing the slot: Shutdown implies flushed
  FinishExchange();
}

}  // namespace xfrag::server
