#include "server/server.h"

#include <utility>

#include "common/json.h"

namespace xfrag::server {

namespace {

constexpr std::string_view kJsonType = "application/json";

}  // namespace

HttpServerOptions Server::ToHttpOptions(const ServerOptions& options) {
  HttpServerOptions http;
  http.host = options.host;
  http.port = options.port;
  http.workers = options.workers;
  http.queue_capacity = options.queue_capacity;
  http.request_timeout_ms = options.request_timeout_ms;
  http.max_body_bytes = options.max_body_bytes;
  http.keep_alive = options.keep_alive;
  http.keep_alive_idle_timeout_ms = options.keep_alive_idle_timeout_ms;
  http.max_requests_per_connection = options.max_requests_per_connection;
  return http;
}

Server::Server(const collection::Collection& collection, ServerOptions options)
    : options_(std::move(options)),
      service_(collection, options_.service),
      http_(*this, ToHttpOptions(options_)) {}

Server::~Server() { Shutdown(); }

std::string Server::Dispatch(const HttpRequest& request, bool keep_alive,
                             int* status_out, algebra::OpMetrics* metrics_out,
                             bool* has_metrics_out) {
  const std::string& target = request.target;
  if (target == "/query") {
    if (request.method != "POST") {
      *status_out = 405;
      return RenderHttpResponse(
          405, kJsonType,
          "{\"error\":\"use POST for /query\",\"status\":405}",
          "Allow: POST\r\n", keep_alive);
    }
    QueryOutcome outcome = service_.HandleQuery(request.body);
    *status_out = outcome.http_status;
    *metrics_out = outcome.metrics;
    *has_metrics_out = true;
    return RenderHttpResponse(outcome.http_status, kJsonType,
                              outcome.body.Dump(), {}, keep_alive);
  }
  if (target == "/threshold") {
    if (request.method != "POST") {
      *status_out = 405;
      return RenderHttpResponse(
          405, kJsonType,
          "{\"error\":\"use POST for /threshold\",\"status\":405}",
          "Allow: POST\r\n", keep_alive);
    }
    QueryOutcome outcome = service_.HandleThresholdUpdate(request.body);
    *status_out = outcome.http_status;
    return RenderHttpResponse(outcome.http_status, kJsonType,
                              outcome.body.Dump(), {}, keep_alive);
  }
  if (target == "/healthz" || target == "/metrics" || target == "/version") {
    if (request.method != "GET") {
      *status_out = 405;
      return RenderHttpResponse(
          405, kJsonType,
          "{\"error\":\"use GET for this endpoint\",\"status\":405}",
          "Allow: GET\r\n", keep_alive);
    }
    json::Value body;
    if (target == "/healthz") {
      body = service_.HealthzJson();
    } else if (target == "/version") {
      body = service_.VersionJson();
    } else {
      body = http_.stats().ToJson();
      body.Set("fixed_point_cache", service_.CacheStatsJson());
      body.Set("result_cache", service_.ResultCacheStatsJson());
      body.Set("distributed_topk", service_.DistributedTopKStatsJson());
      body.Set("dag", service_.DagStatsJson());
      body.Set("in_flight", static_cast<int64_t>(InFlight()));
    }
    *status_out = 200;
    return RenderHttpResponse(200, kJsonType, body.Dump(), {}, keep_alive);
  }
  *status_out = 404;
  return RenderHttpResponse(404, kJsonType,
                            "{\"error\":\"no such endpoint\",\"status\":404}",
                            {}, keep_alive);
}

}  // namespace xfrag::server
