#include "server/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

#include "common/json.h"
#include "common/logging.h"
#include "common/timer.h"
#include "server/http.h"

namespace xfrag::server {

namespace {

constexpr std::string_view kJsonType = "application/json";

std::string JsonError(int status, std::string_view message) {
  json::Value body = json::Value::Object();
  body.Set("error", message);
  body.Set("status", static_cast<int64_t>(status));
  return RenderHttpResponse(status, kJsonType, body.Dump());
}

}  // namespace

Server::Server(const collection::Collection& collection, ServerOptions options)
    : options_(std::move(options)), service_(collection, options_.service) {
  if (options_.workers < 1) options_.workers = 1;
  if (options_.queue_capacity < 0) options_.queue_capacity = 0;
}

Server::~Server() { Shutdown(); }

Status Server::Start() {
  XFRAG_CHECK(!started_.load() && "Server::Start called twice");
  XFRAG_ASSIGN_OR_RETURN(listen_fd_, ListenTcp(options_.host, options_.port));
  XFRAG_ASSIGN_OR_RETURN(port_, LocalPort(listen_fd_.get()));
  // +1: ThreadPool(p) spawns p-1 OS threads, and Post()ed work only runs on
  // spawned threads — the accept loop never calls into the pool's run loop.
  pool_ = std::make_unique<ThreadPool>(
      static_cast<unsigned>(options_.workers) + 1);
  started_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void Server::Shutdown() {
  if (!started_.load()) return;
  // Serialize concurrent Shutdown calls; the second caller blocks until the
  // first has fully drained, so "Shutdown returned" always means "quiet".
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mutex_);
  stopping_.store(true);
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::unique_lock<std::mutex> lock(drain_mutex_);
    drained_.wait(lock, [this] {
      return in_flight_.load(std::memory_order_acquire) == 0;
    });
  }
  pool_.reset();
  listen_fd_.Reset();
}

void Server::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_.get(), POLLIN, 0};
    int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;  // timeout or EINTR: re-check stopping_
    UniqueFd conn(::accept(listen_fd_.get(), nullptr, nullptr));
    if (!conn.valid()) continue;

    int capacity = options_.workers + options_.queue_capacity;
    // Optimistically claim a slot; release it again if over capacity. The
    // counter is the single admission authority, so two racing accepts can
    // never both squeeze past a full server.
    int admitted = in_flight_.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (admitted > capacity) {
      FinishExchange();
      Timer timer;
      (void)SetSocketTimeouts(conn.get(), /*timeout_ms=*/250);
      std::string response = RenderHttpResponse(
          503, kJsonType,
          "{\"error\":\"server at capacity, retry later\",\"status\":503}",
          "Retry-After: 1\r\n");
      // Record before the bytes go out: once the client has its response it
      // may immediately ask /metrics, which must already include this one.
      stats_.RecordRequest(503,
                           static_cast<uint64_t>(timer.ElapsedMicros()),
                           nullptr);
      (void)WriteAll(conn.get(), response);
      // The request was never read; closing now would RST the 503 out from
      // under the client. Half-close and drain until the client has read the
      // response and hung up (bounded by the short socket timeout above).
      ::shutdown(conn.get(), SHUT_WR);
      char drain[4096];
      while (true) {
        auto n = ReadSome(conn.get(), drain, sizeof(drain));
        if (!n.ok() || *n == 0) break;
      }
      continue;
    }
    int fd = conn.Release();
    pool_->Post([this, fd] { HandleConnection(UniqueFd(fd)); });
  }
}

void Server::FinishExchange() {
  if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(drain_mutex_);
    drained_.notify_all();
  }
}

void Server::HandleConnection(UniqueFd conn) {
  Timer timer;
  (void)SetSocketTimeouts(conn.get(), options_.request_timeout_ms);

  HttpRequestParser parser(options_.max_body_bytes);
  char buf[16 * 1024];
  auto state = HttpRequestParser::State::kNeedMore;
  bool timed_out = false;
  while (state == HttpRequestParser::State::kNeedMore) {
    auto n = ReadSome(conn.get(), buf, sizeof(buf));
    if (!n.ok()) {
      timed_out = n.status().code() == StatusCode::kDeadlineExceeded;
      break;
    }
    if (*n == 0) break;  // peer closed before a complete request
    state = parser.Feed(std::string_view(buf, *n));
  }

  std::string response;
  int status = 0;
  algebra::OpMetrics metrics;
  bool has_metrics = false;
  if (state == HttpRequestParser::State::kComplete) {
    response = Dispatch(parser.request(), &status, &metrics, &has_metrics);
  } else if (state == HttpRequestParser::State::kError) {
    status = parser.error_status();
    response = JsonError(status, parser.error());
  } else if (timed_out) {
    status = 408;
    response = JsonError(408, "timed out waiting for the request");
  }
  // An EOF mid-request gets no response (there is no one left to read it)
  // and is not recorded — it never became a request.
  if (status != 0) {
    // Record before the bytes go out: a client that has read its response
    // may immediately ask /metrics, which must already include this one.
    stats_.RecordRequest(status, static_cast<uint64_t>(timer.ElapsedMicros()),
                         has_metrics ? &metrics : nullptr);
    (void)WriteAll(conn.get(), response);
    // Lingering close: if the client is still mid-send (parser error cut the
    // read short), a bare close() would RST the response away. Half-close,
    // then drain until the peer has read the response and hung up.
    ::shutdown(conn.get(), SHUT_WR);
    (void)SetSocketTimeouts(conn.get(), /*timeout_ms=*/250);
    char drain[4096];
    while (true) {
      auto n = ReadSome(conn.get(), drain, sizeof(drain));
      if (!n.ok() || *n == 0) break;
    }
  }
  conn.Reset();  // close before releasing the slot: Shutdown implies flushed
  FinishExchange();
}

std::string Server::Dispatch(const HttpRequest& request, int* status_out,
                             algebra::OpMetrics* metrics_out,
                             bool* has_metrics_out) const {
  const std::string& target = request.target;
  if (target == "/query") {
    if (request.method != "POST") {
      *status_out = 405;
      return RenderHttpResponse(
          405, kJsonType,
          "{\"error\":\"use POST for /query\",\"status\":405}",
          "Allow: POST\r\n");
    }
    QueryOutcome outcome = service_.HandleQuery(request.body);
    *status_out = outcome.http_status;
    *metrics_out = outcome.metrics;
    *has_metrics_out = true;
    return RenderHttpResponse(outcome.http_status, kJsonType,
                              outcome.body.Dump());
  }
  if (target == "/healthz" || target == "/metrics" || target == "/version") {
    if (request.method != "GET") {
      *status_out = 405;
      return RenderHttpResponse(
          405, kJsonType,
          "{\"error\":\"use GET for this endpoint\",\"status\":405}",
          "Allow: GET\r\n");
    }
    json::Value body;
    if (target == "/healthz") {
      body = service_.HealthzJson();
    } else if (target == "/version") {
      body = service_.VersionJson();
    } else {
      body = stats_.ToJson();
      body.Set("fixed_point_cache", service_.CacheStatsJson());
      body.Set("result_cache", service_.ResultCacheStatsJson());
      body.Set("in_flight", static_cast<int64_t>(InFlight()));
    }
    *status_out = 200;
    return RenderHttpResponse(200, kJsonType, body.Dump());
  }
  *status_out = 404;
  return RenderHttpResponse(404, kJsonType,
                            "{\"error\":\"no such endpoint\",\"status\":404}");
}

}  // namespace xfrag::server
