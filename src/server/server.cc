#include "server/server.h"

#include <memory>
#include <utility>

#include "common/json.h"
#include "common/version.h"

namespace xfrag::server {

namespace {

constexpr std::string_view kJsonType = "application/json";

std::string ErrorBody(const Status& status, int http_status) {
  json::Value body = json::Value::Object();
  body.Set("error", status.message());
  body.Set("status", static_cast<int64_t>(http_status));
  return body.Dump();
}

}  // namespace

HttpServerOptions Server::ToHttpOptions(const ServerOptions& options) {
  HttpServerOptions http;
  http.host = options.host;
  http.port = options.port;
  http.workers = options.workers;
  http.queue_capacity = options.queue_capacity;
  http.request_timeout_ms = options.request_timeout_ms;
  http.max_body_bytes = options.max_body_bytes;
  http.keep_alive = options.keep_alive;
  http.keep_alive_idle_timeout_ms = options.keep_alive_idle_timeout_ms;
  http.max_requests_per_connection = options.max_requests_per_connection;
  http.keep_alive_linger_ms = options.keep_alive_linger_ms;
  http.keep_alive_linger_burst = options.keep_alive_linger_burst;
  return http;
}

Server::Server(const collection::Collection& collection, ServerOptions options)
    : options_(std::move(options)), http_(*this, ToHttpOptions(options_)) {
  auto state = std::make_shared<ServingState>();
  state->borrowed = &collection;
  state->query_service =
      std::make_unique<QueryService>(collection, options_.service);
  state_ = std::move(state);
}

Server::Server(std::string snapshot_path,
               storage::SnapshotCollection snapshot, ServerOptions options)
    : options_(std::move(options)), http_(*this, ToHttpOptions(options_)) {
  auto state = std::make_shared<ServingState>();
  state->snapshot = std::move(snapshot);
  state->from_snapshot = true;
  state->snapshot_path = std::move(snapshot_path);
  // The collection lives at a stable heap address inside the shared state
  // from here on, so the service's reference stays valid for this epoch.
  state->query_service = std::make_unique<QueryService>(
      state->snapshot.collection, options_.service);
  const storage::SnapshotOpenStats& open = state->snapshot.stats;
  http_.mutable_stats().RecordSnapshotOpen(open.open_ms, open.file_bytes,
                                           open.mapped_bytes,
                                           open.resident_bytes);
  state_ = std::move(state);
}

Server::~Server() { Shutdown(); }

StatusOr<json::Value> Server::ReloadSnapshot(const std::string& path) {
  // One reload at a time; queries are never blocked by this lock.
  std::lock_guard<std::mutex> reload_lock(reload_mutex_);
  std::shared_ptr<const ServingState> current = CurrentState();
  if (!current->from_snapshot) {
    reload_failures_.fetch_add(1, std::memory_order_relaxed);
    return Status::InvalidArgument(
        "reload requires a snapshot-backed server (start xfragd with "
        "--snapshot)");
  }
  const std::string& next_path =
      path.empty() ? current->snapshot_path : path;

  // Open and validate the replacement entirely off to the side; a corrupt
  // file fails here and the serving state is untouched.
  storage::SnapshotOpenOptions open_options;
  open_options.validate_structure = options_.validate_snapshot_on_reload;
  auto loaded = storage::LoadCollectionFromSnapshot(next_path, open_options);
  if (!loaded.ok()) {
    reload_failures_.fetch_add(1, std::memory_order_relaxed);
    return loaded.status();
  }

  auto next = std::make_shared<ServingState>();
  next->snapshot = std::move(*loaded);
  next->from_snapshot = true;
  next->snapshot_path = next_path;
  next->epoch = current->epoch + 1;
  next->query_service = std::make_unique<QueryService>(
      next->snapshot.collection, options_.service);

  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    state_ = next;
  }
  reloads_.fetch_add(1, std::memory_order_relaxed);
  const storage::SnapshotOpenStats& open = next->snapshot.stats;
  http_.mutable_stats().RecordSnapshotOpen(open.open_ms, open.file_bytes,
                                           open.mapped_bytes,
                                           open.resident_bytes);
  // The drained epoch's caches are useless now; dropping them means the old
  // state releases its memory as soon as the last in-flight request ends.
  current->service().InvalidateCaches();

  json::Value body = json::Value::Object();
  body.Set("reloaded", true);
  body.Set("epoch", next->epoch);
  body.Set("snapshot", next->snapshot_path);
  body.Set("documents", static_cast<uint64_t>(next->collection().size()));
  body.Set("total_nodes",
           static_cast<uint64_t>(next->collection().TotalNodes()));
  body.Set("open_ms", next->snapshot.stats.open_ms);
  return body;
}

json::Value Server::SnapshotMetricsJson(const ServingState& state) const {
  json::Value out = json::Value::Object();
  out.Set("enabled", state.from_snapshot);
  out.Set("epoch", state.epoch);
  out.Set("reloads", reloads_.load(std::memory_order_relaxed));
  out.Set("reload_failures",
          reload_failures_.load(std::memory_order_relaxed));
  if (state.from_snapshot) {
    out.Set("path", state.snapshot_path);
    out.Set("format_version", storage::kSnapshotFormatVersion);
    out.Set("tool_version", state.snapshot.meta.tool_version);
    out.Set("open_ms", state.snapshot.stats.open_ms);
    out.Set("file_bytes", state.snapshot.stats.file_bytes);
    out.Set("mapped_bytes", state.snapshot.stats.mapped_bytes);
    out.Set("resident_bytes", state.snapshot.reader != nullptr
                                  ? state.snapshot.reader->ResidentBytesNow()
                                  : 0);
  }
  return out;
}

std::string Server::Dispatch(const HttpRequest& request, bool keep_alive,
                             int* status_out, algebra::OpMetrics* metrics_out,
                             bool* has_metrics_out) {
  // Pin one serving epoch for this whole exchange; a concurrent reload
  // swaps the pointer without invalidating this state.
  std::shared_ptr<const ServingState> state = CurrentState();
  const std::string& target = request.target;
  if (target == "/query") {
    if (request.method != "POST") {
      *status_out = 405;
      return RenderHttpResponse(
          405, kJsonType,
          "{\"error\":\"use POST for /query\",\"status\":405}",
          "Allow: POST\r\n", keep_alive);
    }
    QueryOutcome outcome = state->service().HandleQuery(request.body);
    *status_out = outcome.http_status;
    *metrics_out = outcome.metrics;
    *has_metrics_out = true;
    return RenderHttpResponse(outcome.http_status, kJsonType,
                              outcome.body.Dump(), {}, keep_alive);
  }
  if (target == "/query_batch") {
    if (request.method != "POST") {
      *status_out = 405;
      return RenderHttpResponse(
          405, kJsonType,
          "{\"error\":\"use POST for /query_batch\",\"status\":405}",
          "Allow: POST\r\n", keep_alive);
    }
    QueryOutcome outcome = state->service().HandleQueryBatch(request.body);
    *status_out = outcome.http_status;
    *metrics_out = outcome.metrics;
    *has_metrics_out = true;
    return RenderHttpResponse(outcome.http_status, kJsonType,
                              outcome.body.Dump(), {}, keep_alive);
  }
  if (target == "/threshold") {
    if (request.method != "POST") {
      *status_out = 405;
      return RenderHttpResponse(
          405, kJsonType,
          "{\"error\":\"use POST for /threshold\",\"status\":405}",
          "Allow: POST\r\n", keep_alive);
    }
    QueryOutcome outcome = state->service().HandleThresholdUpdate(request.body);
    *status_out = outcome.http_status;
    return RenderHttpResponse(outcome.http_status, kJsonType,
                              outcome.body.Dump(), {}, keep_alive);
  }
  if (target == "/admin/reload") {
    if (request.method != "POST") {
      *status_out = 405;
      return RenderHttpResponse(
          405, kJsonType,
          "{\"error\":\"use POST for /admin/reload\",\"status\":405}",
          "Allow: POST\r\n", keep_alive);
    }
    // Body: {} or {"snapshot": "<path>"} (empty body = reload in place).
    std::string path;
    if (!request.body.empty()) {
      size_t error_offset = 0;
      auto root = json::Parse(request.body, &error_offset);
      if (!root.ok()) {
        *status_out = 400;
        return RenderHttpResponse(400, kJsonType,
                                  ErrorBody(root.status(), 400), {},
                                  keep_alive);
      }
      if (!root->is_object()) {
        *status_out = 400;
        return RenderHttpResponse(
            400, kJsonType,
            "{\"error\":\"reload body must be a JSON object\","
            "\"status\":400}",
            {}, keep_alive);
      }
      for (const auto& [key, value] : root->members()) {
        if (key == "snapshot" && value.is_string()) {
          path = value.AsString();
        } else {
          *status_out = 400;
          return RenderHttpResponse(
              400, kJsonType,
              "{\"error\":\"unknown reload field '" + key +
                  "' (expected \\\"snapshot\\\")\",\"status\":400}",
              {}, keep_alive);
        }
      }
    }
    auto reloaded = ReloadSnapshot(path);
    if (!reloaded.ok()) {
      int http_status = HttpStatusForError(reloaded.status());
      *status_out = http_status;
      return RenderHttpResponse(http_status, kJsonType,
                                ErrorBody(reloaded.status(), http_status), {},
                                keep_alive);
    }
    *status_out = 200;
    return RenderHttpResponse(200, kJsonType, reloaded->Dump(), {},
                              keep_alive);
  }
  if (target == "/healthz" || target == "/metrics" || target == "/version") {
    if (request.method != "GET") {
      *status_out = 405;
      return RenderHttpResponse(
          405, kJsonType,
          "{\"error\":\"use GET for this endpoint\",\"status\":405}",
          "Allow: GET\r\n", keep_alive);
    }
    json::Value body;
    if (target == "/healthz") {
      body = state->service().HealthzJson();
      body.Set("epoch", state->epoch);
    } else if (target == "/version") {
      body = state->service().VersionJson();
      if (state->from_snapshot) {
        json::Value snap = json::Value::Object();
        snap.Set("path", state->snapshot_path);
        snap.Set("format_version", storage::kSnapshotFormatVersion);
        snap.Set("tool_version", state->snapshot.meta.tool_version);
        snap.Set("epoch", state->epoch);
        body.Set("snapshot", std::move(snap));
      }
    } else {
      body = http_.stats().ToJson();
      body.Set("fixed_point_cache", state->service().CacheStatsJson());
      body.Set("result_cache", state->service().ResultCacheStatsJson());
      body.Set("distributed_topk", state->service().DistributedTopKStatsJson());
      body.Set("dag", state->service().DagStatsJson());
      body.Set("batch", state->service().BatchStatsJson());
      body.Set("snapshot", SnapshotMetricsJson(*state));
      body.Set("in_flight", static_cast<int64_t>(InFlight()));
    }
    *status_out = 200;
    return RenderHttpResponse(200, kJsonType, body.Dump(), {}, keep_alive);
  }
  *status_out = 404;
  return RenderHttpResponse(404, kJsonType,
                            "{\"error\":\"no such endpoint\",\"status\":404}",
                            {}, keep_alive);
}

}  // namespace xfrag::server
