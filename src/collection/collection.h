// A collection of named XML documents with per-document keyword indexes —
// the deployment shape the paper claims for the model ("can accommodate a
// very large collection of XML documents", §7). Documents are independent
// retrieval units: a fragment never spans documents, so collection-level
// evaluation is per-document evaluation plus a merge, which the engine
// parallelizes across documents.

#ifndef XFRAG_COLLECTION_COLLECTION_H_
#define XFRAG_COLLECTION_COLLECTION_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "doc/document.h"
#include "doc/subtree_classes.h"
#include "text/inverted_index.h"

namespace xfrag::collection {

/// \brief One member document with its index and subtree-class view.
struct CollectionEntry {
  std::string name;
  doc::Document document;
  text::InvertedIndex index;
  /// Subtree equivalence classes of `document`, interned against the
  /// collection-global interner at Add time (doc/subtree_classes.h). Drives
  /// DAG-compressed evaluation: `classes.root_class()` identifies duplicate
  /// documents, and the kernels consume the per-node class structure.
  doc::SubtreeClassIndex classes;

  CollectionEntry(std::string n, doc::Document d, text::InvertedIndex i,
                  doc::SubtreeClassIndex c)
      : name(std::move(n)),
        document(std::move(d)),
        index(std::move(i)),
        classes(std::move(c)) {}
};

/// \brief An ordered, name-addressable set of documents.
class Collection {
 public:
  Collection() = default;

  /// Indexing configuration applied to documents added afterwards.
  explicit Collection(text::IndexOptions index_options)
      : index_options_(index_options) {}

  /// \brief Adds a document under `name` (must be unique). Builds its index.
  /// Fails on a frozen (snapshot-backed) collection.
  Status Add(std::string name, doc::Document document);

  /// \brief Parses `xml_text` and adds it under `name`.
  Status AddXml(std::string name, std::string_view xml_text);

  /// \brief Adds an already-constructed entry (the snapshot load path:
  /// document, index, and classes were rebuilt zero-copy over the mapping,
  /// so nothing is re-derived here). `name` must still be unique.
  Status AddPrebuilt(std::string name, doc::Document document,
                     text::InvertedIndex index, doc::SubtreeClassIndex classes);

  /// \brief Replaces the collection-global interner (snapshot load path —
  /// the per-class statistics come from the file's class table). Only valid
  /// while the collection is empty of interned state, i.e. before any Add.
  void AdoptSubtreeClassStats(doc::SubtreeClassInterner interner) {
    interner_ = std::move(interner);
  }

  /// \brief Anchors an external resource (the snapshot mapping) for the
  /// collection's lifetime. Entries built over mmap-ed columns borrow from
  /// it, so it must die after them.
  void HoldResource(std::shared_ptr<void> resource) {
    resources_.push_back(std::move(resource));
    frozen_ = true;
  }

  /// True when the collection is snapshot-backed and thus immutable.
  bool frozen() const { return frozen_; }

  /// Number of documents.
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Entries in insertion order.
  const CollectionEntry& entry(size_t i) const { return *entries_[i]; }

  /// Entry by name, or NotFound.
  StatusOr<const CollectionEntry*> Find(std::string_view name) const;

  /// Document names in insertion order.
  std::vector<std::string> Names() const;

  /// Number of member documents whose index contains `term`.
  size_t DocumentFrequency(std::string_view term) const;

  /// Total nodes across all documents.
  size_t TotalNodes() const;

  /// The collection-global subtree-class interner (class ids are comparable
  /// across member documents).
  const doc::SubtreeClassInterner& subtree_classes() const {
    return interner_;
  }

 private:
  text::IndexOptions index_options_;
  doc::SubtreeClassInterner interner_;
  // Declared before entries_ so the mapping outlives the views during
  // destruction (members are destroyed in reverse declaration order).
  std::vector<std::shared_ptr<void>> resources_;
  std::vector<std::unique_ptr<CollectionEntry>> entries_;
  std::unordered_map<std::string, size_t> by_name_;
  bool frozen_ = false;
};

}  // namespace xfrag::collection

#endif  // XFRAG_COLLECTION_COLLECTION_H_
