#include "collection/collection.h"

#include "xml/parser.h"

namespace xfrag::collection {

Status Collection::Add(std::string name, doc::Document document) {
  if (frozen_) {
    return Status::InvalidArgument(
        "collection is snapshot-backed (immutable); rebuild the snapshot to "
        "add documents");
  }
  if (by_name_.count(name) > 0) {
    return Status::InvalidArgument("duplicate document name '" + name + "'");
  }
  text::InvertedIndex index =
      text::InvertedIndex::Build(document, index_options_);
  doc::SubtreeClassIndex classes =
      doc::SubtreeClassIndex::Build(document, &interner_);
  by_name_[name] = entries_.size();
  entries_.push_back(std::make_unique<CollectionEntry>(
      std::move(name), std::move(document), std::move(index),
      std::move(classes)));
  return Status::OK();
}

Status Collection::AddPrebuilt(std::string name, doc::Document document,
                               text::InvertedIndex index,
                               doc::SubtreeClassIndex classes) {
  if (by_name_.count(name) > 0) {
    return Status::InvalidArgument("duplicate document name '" + name + "'");
  }
  by_name_[name] = entries_.size();
  entries_.push_back(std::make_unique<CollectionEntry>(
      std::move(name), std::move(document), std::move(index),
      std::move(classes)));
  return Status::OK();
}

Status Collection::AddXml(std::string name, std::string_view xml_text) {
  auto dom = xml::Parse(xml_text);
  if (!dom.ok()) return dom.status();
  auto document = doc::Document::FromDom(*dom);
  if (!document.ok()) return document.status();
  return Add(std::move(name), std::move(document).value());
}

StatusOr<const CollectionEntry*> Collection::Find(
    std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  if (it == by_name_.end()) {
    return Status::NotFound("no document named '" + std::string(name) + "'");
  }
  return const_cast<const CollectionEntry*>(entries_[it->second].get());
}

std::vector<std::string> Collection::Names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& entry : entries_) out.push_back(entry->name);
  return out;
}

size_t Collection::DocumentFrequency(std::string_view term) const {
  size_t count = 0;
  for (const auto& entry : entries_) {
    if (!entry->index.Lookup(term).empty()) ++count;
  }
  return count;
}

size_t Collection::TotalNodes() const {
  size_t total = 0;
  for (const auto& entry : entries_) total += entry->document.size();
  return total;
}

}  // namespace xfrag::collection
