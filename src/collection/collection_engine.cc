#include "collection/collection_engine.h"

#include <algorithm>
#include <optional>
#include <unordered_map>

#include "common/thread_pool.h"
#include "common/timer.h"

namespace xfrag::collection {

namespace {

// Outcome of evaluating one document.
struct PerDocumentOutcome {
  bool skipped = false;
  Status status;
  algebra::FragmentSet answers;
  algebra::OpMetrics metrics;
};

PerDocumentOutcome EvaluateOne(const CollectionEntry& entry,
                               const query::Query& query,
                               const query::EvalOptions& options) {
  PerDocumentOutcome outcome;
  // Conjunctive pre-check: skip documents missing any term.
  for (const auto& term : query.terms) {
    if (entry.index.Lookup(term).empty()) {
      outcome.skipped = true;
      return outcome;
    }
  }
  query::QueryEngine engine(entry.document, entry.index);
  // Hand the kernels this document's subtree classes; they self-gate on the
  // global compression switch and on per-document duplication.
  query::EvalOptions doc_options = options;
  doc_options.executor.subtree_classes = &entry.classes;
  auto result = engine.Evaluate(query, doc_options);
  if (!result.ok()) {
    outcome.status = result.status();
    return outcome;
  }
  outcome.answers = std::move(result->answers);
  outcome.metrics = result->metrics;
  return outcome;
}

}  // namespace

StatusOr<CollectionResult> CollectionEngine::Evaluate(
    const query::Query& query, const CollectionEvalOptions& options) const {
  Timer timer;
  if (query.terms.empty()) {
    return Status::InvalidArgument("query must contain at least one term");
  }
  const size_t n = collection_.size();
  std::vector<PerDocumentOutcome> outcomes(n);

  // Document-class dedup: documents whose roots intern to the same subtree
  // class are byte-identical, so only the first member of each class (the
  // representative) is evaluated; the others replay its outcome after the
  // barrier. Identical documents produce identical answers (node ids are
  // document-local) and identical work counters, so the merged result is
  // bit-identical to evaluating every member.
  std::vector<size_t> representative(n);
  const bool dedup = algebra::DagCompressionEnabled();
  std::unordered_map<doc::SubtreeClassId, size_t> first_of_class;
  for (size_t i = 0; i < n; ++i) {
    representative[i] = i;
    if (!dedup) continue;
    auto [it, inserted] =
        first_of_class.emplace(collection_.entry(i).classes.root_class(), i);
    if (!inserted) representative[i] = it->second;
  }

  // Representatives fan out over the shared pool (one contiguous chunk per
  // worker); each outcome lands in its own slot, so the merge below is
  // deterministic for any parallelism.
  ThreadPool* pool = options.thread_pool;
  std::optional<ThreadPool> transient_pool;
  if (pool == nullptr && std::max(1u, options.parallelism) > 1 && n > 1) {
    transient_pool.emplace(options.parallelism);
    pool = &*transient_pool;
  }
  if (pool != nullptr && n > 1) {
    pool->ParallelFor(n, [&](unsigned /*chunk*/, size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        if (representative[i] != i) continue;
        outcomes[i] =
            EvaluateOne(collection_.entry(i), query, options.per_document);
      }
    });
  } else {
    for (size_t i = 0; i < n; ++i) {
      if (representative[i] != i) continue;
      outcomes[i] =
          EvaluateOne(collection_.entry(i), query, options.per_document);
    }
  }

  CollectionResult result;
  for (size_t i = 0; i < n; ++i) {
    const bool replayed = representative[i] != i;
    PerDocumentOutcome& outcome = outcomes[representative[i]];
    if (outcome.skipped) {
      ++result.documents_skipped;
      continue;
    }
    if (!outcome.status.ok()) return outcome.status;
    ++result.documents_evaluated;
    if (replayed) ++result.documents_deduplicated;
    result.metrics.Merge(outcome.metrics);
    for (const algebra::Fragment& fragment : outcome.answers.Sorted()) {
      result.answers.emplace_back(i, collection_.entry(i).name, fragment);
    }
  }
  result.elapsed_ms = timer.ElapsedMillis();
  return result;
}

}  // namespace xfrag::collection
