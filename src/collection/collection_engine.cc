#include "collection/collection_engine.h"

#include <algorithm>
#include <future>

#include "common/timer.h"

namespace xfrag::collection {

namespace {

// Outcome of evaluating one document.
struct PerDocumentOutcome {
  bool skipped = false;
  Status status;
  algebra::FragmentSet answers;
  algebra::OpMetrics metrics;
};

PerDocumentOutcome EvaluateOne(const CollectionEntry& entry,
                               const query::Query& query,
                               const query::EvalOptions& options) {
  PerDocumentOutcome outcome;
  // Conjunctive pre-check: skip documents missing any term.
  for (const auto& term : query.terms) {
    if (entry.index.Lookup(term).empty()) {
      outcome.skipped = true;
      return outcome;
    }
  }
  query::QueryEngine engine(entry.document, entry.index);
  auto result = engine.Evaluate(query, options);
  if (!result.ok()) {
    outcome.status = result.status();
    return outcome;
  }
  outcome.answers = std::move(result->answers);
  outcome.metrics = result->metrics;
  return outcome;
}

}  // namespace

StatusOr<CollectionResult> CollectionEngine::Evaluate(
    const query::Query& query, const CollectionEvalOptions& options) const {
  Timer timer;
  if (query.terms.empty()) {
    return Status::InvalidArgument("query must contain at least one term");
  }
  const size_t n = collection_.size();
  std::vector<PerDocumentOutcome> outcomes(n);

  unsigned workers = std::max(1u, options.parallelism);
  if (workers == 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) {
      outcomes[i] =
          EvaluateOne(collection_.entry(i), query, options.per_document);
    }
  } else {
    // Static interleaved partitioning keeps the merge deterministic.
    std::vector<std::future<void>> futures;
    for (unsigned w = 0; w < workers; ++w) {
      futures.push_back(std::async(std::launch::async, [&, w] {
        for (size_t i = w; i < n; i += workers) {
          outcomes[i] =
              EvaluateOne(collection_.entry(i), query, options.per_document);
        }
      }));
    }
    for (auto& future : futures) future.get();
  }

  CollectionResult result;
  for (size_t i = 0; i < n; ++i) {
    PerDocumentOutcome& outcome = outcomes[i];
    if (outcome.skipped) {
      ++result.documents_skipped;
      continue;
    }
    if (!outcome.status.ok()) return outcome.status;
    ++result.documents_evaluated;
    result.metrics.fragment_joins += outcome.metrics.fragment_joins;
    result.metrics.filter_evals += outcome.metrics.filter_evals;
    result.metrics.filter_rejections += outcome.metrics.filter_rejections;
    result.metrics.fixed_point_iterations +=
        outcome.metrics.fixed_point_iterations;
    result.metrics.fragments_produced += outcome.metrics.fragments_produced;
    for (const algebra::Fragment& fragment : outcome.answers.Sorted()) {
      result.answers.emplace_back(i, collection_.entry(i).name, fragment);
    }
  }
  result.elapsed_ms = timer.ElapsedMillis();
  return result;
}

}  // namespace xfrag::collection
