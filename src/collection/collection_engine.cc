#include "collection/collection_engine.h"

#include <algorithm>
#include <optional>

#include "common/thread_pool.h"
#include "common/timer.h"

namespace xfrag::collection {

namespace {

// Outcome of evaluating one document.
struct PerDocumentOutcome {
  bool skipped = false;
  Status status;
  algebra::FragmentSet answers;
  algebra::OpMetrics metrics;
};

PerDocumentOutcome EvaluateOne(const CollectionEntry& entry,
                               const query::Query& query,
                               const query::EvalOptions& options) {
  PerDocumentOutcome outcome;
  // Conjunctive pre-check: skip documents missing any term.
  for (const auto& term : query.terms) {
    if (entry.index.Lookup(term).empty()) {
      outcome.skipped = true;
      return outcome;
    }
  }
  query::QueryEngine engine(entry.document, entry.index);
  auto result = engine.Evaluate(query, options);
  if (!result.ok()) {
    outcome.status = result.status();
    return outcome;
  }
  outcome.answers = std::move(result->answers);
  outcome.metrics = result->metrics;
  return outcome;
}

}  // namespace

StatusOr<CollectionResult> CollectionEngine::Evaluate(
    const query::Query& query, const CollectionEvalOptions& options) const {
  Timer timer;
  if (query.terms.empty()) {
    return Status::InvalidArgument("query must contain at least one term");
  }
  const size_t n = collection_.size();
  std::vector<PerDocumentOutcome> outcomes(n);

  // Documents fan out over the shared pool (one contiguous chunk per
  // worker); each outcome lands in its own slot, so the merge below is
  // deterministic for any parallelism.
  ThreadPool* pool = options.thread_pool;
  std::optional<ThreadPool> transient_pool;
  if (pool == nullptr && std::max(1u, options.parallelism) > 1 && n > 1) {
    transient_pool.emplace(options.parallelism);
    pool = &*transient_pool;
  }
  if (pool != nullptr && n > 1) {
    pool->ParallelFor(n, [&](unsigned /*chunk*/, size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        outcomes[i] =
            EvaluateOne(collection_.entry(i), query, options.per_document);
      }
    });
  } else {
    for (size_t i = 0; i < n; ++i) {
      outcomes[i] =
          EvaluateOne(collection_.entry(i), query, options.per_document);
    }
  }

  CollectionResult result;
  for (size_t i = 0; i < n; ++i) {
    PerDocumentOutcome& outcome = outcomes[i];
    if (outcome.skipped) {
      ++result.documents_skipped;
      continue;
    }
    if (!outcome.status.ok()) return outcome.status;
    ++result.documents_evaluated;
    result.metrics.Merge(outcome.metrics);
    for (const algebra::Fragment& fragment : outcome.answers.Sorted()) {
      result.answers.emplace_back(i, collection_.entry(i).name, fragment);
    }
  }
  result.elapsed_ms = timer.ElapsedMillis();
  return result;
}

}  // namespace xfrag::collection
