// Query evaluation over a Collection: per-document evaluation (documents
// are independent retrieval units) with term-presence pre-filtering and
// optional parallelism, merged into a provenance-tagged result.

#ifndef XFRAG_COLLECTION_COLLECTION_ENGINE_H_
#define XFRAG_COLLECTION_COLLECTION_ENGINE_H_

#include <string>
#include <vector>

#include "collection/collection.h"
#include "query/engine.h"

namespace xfrag::collection {

/// One answer fragment with its source document.
struct CollectionAnswer {
  /// Index of the document within the collection.
  size_t document_index = 0;
  /// The document's name.
  std::string document_name;
  /// The answer fragment (node ids are document-local).
  algebra::Fragment fragment;

  CollectionAnswer(size_t index, std::string name, algebra::Fragment f)
      : document_index(index),
        document_name(std::move(name)),
        fragment(std::move(f)) {}
};

/// Result of a collection-wide evaluation.
struct CollectionResult {
  /// Answers in document order, then the per-document canonical order.
  std::vector<CollectionAnswer> answers;
  /// Documents that contained all query terms (hence produced answers).
  size_t documents_evaluated = 0;
  /// Documents skipped by the term-presence pre-check.
  size_t documents_skipped = 0;
  /// Of the evaluated documents, how many were *replayed* from a
  /// byte-identical representative (same subtree root class) instead of
  /// being evaluated themselves. Identical documents yield identical
  /// answers, node ids, and work counters, so every other field of this
  /// result is unchanged by the dedup; 0 when DAG compression is disabled.
  size_t documents_deduplicated = 0;
  /// Aggregated operator metrics across evaluated documents.
  algebra::OpMetrics metrics;
  /// Wall-clock time for the whole evaluation.
  double elapsed_ms = 0.0;
};

/// Evaluation options for a collection query.
struct CollectionEvalOptions {
  query::EvalOptions per_document;
  /// Worker threads; 1 evaluates sequentially. Results are merged in
  /// document order either way, so the output is deterministic.
  unsigned parallelism = 1;
  /// Optional externally owned pool for the per-document fan-out (shared
  /// with the query executor's pooled kernels). When null and `parallelism`
  /// > 1, Evaluate spins up a transient pool. A non-null pool overrides
  /// `parallelism` with its own width.
  ThreadPool* thread_pool = nullptr;
};

/// \brief Evaluates keyword queries over every document of a collection.
class CollectionEngine {
 public:
  /// The collection must outlive the engine.
  explicit CollectionEngine(const Collection& collection)
      : collection_(collection) {}

  /// \brief Evaluates `query` against every document containing all query
  /// terms; other documents are skipped without building a plan.
  StatusOr<CollectionResult> Evaluate(
      const query::Query& query,
      const CollectionEvalOptions& options = {}) const;

 private:
  const Collection& collection_;
};

}  // namespace xfrag::collection

#endif  // XFRAG_COLLECTION_COLLECTION_ENGINE_H_
