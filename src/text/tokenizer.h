// Tokenization of element text into the representative keywords of a node —
// the paper's keywords(n) function (Definition 1). ASCII lowercasing,
// alphanumeric token boundaries, optional stop-word removal.

#ifndef XFRAG_TEXT_TOKENIZER_H_
#define XFRAG_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace xfrag::text {

/// Tokenizer configuration.
struct TokenizerOptions {
  /// Drop common English stop words ("the", "of", ...).
  bool remove_stopwords = false;
  /// Minimum token length; shorter tokens are dropped.
  size_t min_token_length = 1;
  /// Fold simple English plurals: a trailing 's' is stripped from tokens
  /// longer than 3 characters unless they end in "ss" ("plans" → "plan",
  /// "class" stays). Applied identically at index and query time.
  bool fold_plurals = false;
};

/// \brief Applies the plural-folding rule to one lowercase token.
std::string FoldPlural(std::string token);

/// \brief Splits `input` into lowercase alphanumeric tokens.
///
/// A token is a maximal run of ASCII letters and digits; all other bytes are
/// separators. Multi-byte UTF-8 sequences are treated as token characters so
/// non-ASCII words survive intact (unfolded).
std::vector<std::string> Tokenize(std::string_view input,
                                  const TokenizerOptions& options = {});

/// \brief True iff `word` (already lowercase) is in the stop-word list.
bool IsStopword(std::string_view word);

}  // namespace xfrag::text

#endif  // XFRAG_TEXT_TOKENIZER_H_
