// Inverted index mapping each term to the sorted list of document nodes whose
// own textual content contains it. This implements the paper's base keyword
// selection σ_{keyword=k}(nodes(D)) (Definition 3) and the membership test
// k ∈ keywords(n) used by Definition 8.
//
// The paper performs no other preprocessing ("no preprocessing of data is
// carried out and all answer fragments are computed dynamically", §6) — the
// index only materialises keywords(n), not fragments.

#ifndef XFRAG_TEXT_INVERTED_INDEX_H_
#define XFRAG_TEXT_INVERTED_INDEX_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "doc/document.h"
#include "text/tokenizer.h"

namespace xfrag::text {

/// Indexing configuration. Tag names are optionally indexed as terms too
/// (the paper "does not distinguish between tag/attribute names and text
/// contents", §2.1).
struct IndexOptions {
  TokenizerOptions tokenizer;
  bool index_tag_names = true;
};

/// \brief Term → posting-list index over one Document.
class InvertedIndex {
 public:
  /// \brief Indexes every node of `document`. The document must outlive the
  /// index.
  static InvertedIndex Build(const doc::Document& document,
                             const IndexOptions& options = {});

  /// \brief Reconstructs an index from term → sorted posting list pairs
  /// (the storage module's deserialization path). Lists must be sorted and
  /// duplicate-free; returns InvalidArgument otherwise.
  static StatusOr<InvertedIndex> FromPostings(
      std::unordered_map<std::string, std::vector<doc::NodeId>> postings);

  /// Sorted node ids whose keywords(n) contains `term`. The term is
  /// normalized exactly as the index's tokenizer normalized node text
  /// (lowercasing, and plural folding when enabled), so query terms match
  /// regardless of surface form. Empty vector when the term is absent.
  const std::vector<doc::NodeId>& Lookup(std::string_view term) const;

  /// True iff `term` appears in keywords(node).
  bool Contains(std::string_view term, doc::NodeId node) const;

  /// Number of distinct terms.
  size_t term_count() const { return postings_.size(); }

  /// Total number of postings.
  size_t posting_count() const { return posting_count_; }

  /// Document frequency of `term` (size of its posting list).
  size_t DocumentFrequency(std::string_view term) const {
    return Lookup(term).size();
  }

  /// All indexed terms (unsorted).
  std::vector<std::string> Terms() const;

 private:
  std::unordered_map<std::string, std::vector<doc::NodeId>> postings_;
  size_t posting_count_ = 0;
  TokenizerOptions normalization_;
  std::vector<doc::NodeId> empty_;
};

}  // namespace xfrag::text

#endif  // XFRAG_TEXT_INVERTED_INDEX_H_
