// Inverted index mapping each term to the sorted list of document nodes whose
// own textual content contains it. This implements the paper's base keyword
// selection σ_{keyword=k}(nodes(D)) (Definition 3) and the membership test
// k ∈ keywords(n) used by Definition 8.
//
// The paper performs no other preprocessing ("no preprocessing of data is
// carried out and all answer fragments are computed dynamically", §6) — the
// index only materialises keywords(n), not fragments.

#ifndef XFRAG_TEXT_INVERTED_INDEX_H_
#define XFRAG_TEXT_INVERTED_INDEX_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "doc/document.h"
#include "text/tokenizer.h"

namespace xfrag::text {

/// Indexing configuration. Tag names are optionally indexed as terms too
/// (the paper "does not distinguish between tag/attribute names and text
/// contents", §2.1).
struct IndexOptions {
  TokenizerOptions tokenizer;
  bool index_tag_names = true;
};

/// \brief Term → posting-list index over one Document.
class InvertedIndex {
 public:
  /// \brief Indexes every node of `document`. The document must outlive the
  /// index.
  static InvertedIndex Build(const doc::Document& document,
                             const IndexOptions& options = {});

  /// \brief Reconstructs an index from term → sorted posting list pairs
  /// (the storage module's deserialization path). Lists must be sorted and
  /// duplicate-free; returns InvalidArgument otherwise.
  static StatusOr<InvertedIndex> FromPostings(
      std::unordered_map<std::string, std::vector<doc::NodeId>> postings);

  /// \brief The raw term-dictionary + postings columns of one document
  /// inside a snapshot. Terms are stored sorted (binary-searchable) in a
  /// blob with offsets; each term's posting list is a varint delta run in
  /// `postings_blob` over the byte range
  /// [posting_offsets[t], posting_offsets[t+1]).
  struct SnapshotColumns {
    size_t term_count = 0;
    const uint64_t* term_offsets = nullptr;     // [term_count + 1]
    std::string_view term_blob;                 // Sorted unique terms.
    const uint64_t* posting_offsets = nullptr;  // [term_count + 1], bytes
    std::string_view postings_blob;             // Varint delta runs.
    size_t node_count = 0;      // Posting ids must stay below this.
    size_t posting_count = 0;   // Total postings (from the directory).
    bool validate = true;
  };

  /// \brief Zero-copy index over snapshot columns. Posting lists stay
  /// delta-encoded in the mapping and are decoded lazily on the first
  /// Lookup of each term (first-wins publication; thread-safe), so only
  /// queried terms ever materialize. `normalization` must be the tokenizer
  /// configuration the index was built with (persisted in snapshot meta).
  /// With `columns.validate` (default) the term dictionary is checked to be
  /// sorted/lowercase and every delta run is scan-validated, so a corrupt
  /// snapshot yields ParseError here, never UB later.
  static StatusOr<InvertedIndex> FromSnapshotColumns(
      const SnapshotColumns& columns, const TokenizerOptions& normalization);

  /// Sorted node ids whose keywords(n) contains `term`. The term is
  /// normalized exactly as the index's tokenizer normalized node text
  /// (lowercasing, and plural folding when enabled), so query terms match
  /// regardless of surface form. Empty vector when the term is absent.
  const std::vector<doc::NodeId>& Lookup(std::string_view term) const;

  /// True iff `term` appears in keywords(node).
  bool Contains(std::string_view term, doc::NodeId node) const;

  /// Number of distinct terms.
  size_t term_count() const {
    return snapshot_ ? snapshot_->term_count : postings_.size();
  }

  /// Total number of postings.
  size_t posting_count() const { return posting_count_; }

  /// Document frequency of `term` (size of its posting list).
  size_t DocumentFrequency(std::string_view term) const {
    return Lookup(term).size();
  }

  /// All indexed terms (unsorted).
  std::vector<std::string> Terms() const;

 private:
  // Snapshot view mode: postings live delta-encoded in the mapping; decoded
  // lists are cached per term with first-wins atomic publication so
  // concurrent Lookups of the same term are race-free and later calls keep
  // returning the same stable reference.
  struct SnapshotState {
    size_t term_count = 0;
    const uint64_t* term_offsets = nullptr;
    std::string_view term_blob;
    const uint64_t* posting_offsets = nullptr;
    std::string_view postings_blob;
    size_t node_count = 0;

    std::unique_ptr<std::atomic<const std::vector<doc::NodeId>*>[]> slots;
    std::mutex publish_mutex;
    std::vector<std::unique_ptr<std::vector<doc::NodeId>>> owned;

    std::string_view term(size_t t) const {
      return term_blob.substr(term_offsets[t],
                              term_offsets[t + 1] - term_offsets[t]);
    }
  };

  const std::vector<doc::NodeId>& SnapshotLookup(const std::string& term)
      const;

  std::unordered_map<std::string, std::vector<doc::NodeId>> postings_;
  size_t posting_count_ = 0;
  TokenizerOptions normalization_;
  std::vector<doc::NodeId> empty_;
  std::shared_ptr<SnapshotState> snapshot_;  // Null for built indexes.
};

}  // namespace xfrag::text

#endif  // XFRAG_TEXT_INVERTED_INDEX_H_
