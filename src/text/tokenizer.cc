#include "text/tokenizer.h"

#include <array>
#include <cctype>

namespace xfrag::text {

namespace {

constexpr std::array<std::string_view, 32> kStopwords = {
    "a",    "an",   "and",  "are", "as",   "at",   "be",   "by",
    "for",  "from", "has",  "he",  "in",   "is",   "it",   "its",
    "of",   "on",   "or",   "that", "the", "this", "to",   "was",
    "were", "will", "with", "not", "but",  "they", "she",  "we",
};

bool IsTokenChar(unsigned char c) {
  return std::isalnum(c) || c >= 0x80;
}

}  // namespace

std::string FoldPlural(std::string token) {
  if (token.size() > 3 && token.back() == 's' &&
      token[token.size() - 2] != 's') {
    token.pop_back();
  }
  return token;
}

bool IsStopword(std::string_view word) {
  for (std::string_view sw : kStopwords) {
    if (sw == word) return true;
  }
  return false;
}

std::vector<std::string> Tokenize(std::string_view input,
                                  const TokenizerOptions& options) {
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < input.size()) {
    while (i < input.size() &&
           !IsTokenChar(static_cast<unsigned char>(input[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < input.size() &&
           IsTokenChar(static_cast<unsigned char>(input[i]))) {
      ++i;
    }
    if (i == start) continue;
    std::string token;
    token.reserve(i - start);
    for (size_t j = start; j < i; ++j) {
      token.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(input[j]))));
    }
    if (token.size() < options.min_token_length) continue;
    if (options.remove_stopwords && IsStopword(token)) continue;
    if (options.fold_plurals) token = FoldPlural(std::move(token));
    tokens.push_back(std::move(token));
  }
  return tokens;
}

}  // namespace xfrag::text
