#include "text/inverted_index.h"

#include <algorithm>

#include "common/strings.h"

namespace xfrag::text {

InvertedIndex InvertedIndex::Build(const doc::Document& document,
                                   const IndexOptions& options) {
  InvertedIndex index;
  index.normalization_ = options.tokenizer;
  for (doc::NodeId n = 0; n < document.size(); ++n) {
    std::vector<std::string> tokens =
        Tokenize(document.text(n), options.tokenizer);
    if (options.index_tag_names) {
      auto tag_tokens = Tokenize(document.tag(n), options.tokenizer);
      tokens.insert(tokens.end(), tag_tokens.begin(), tag_tokens.end());
    }
    std::sort(tokens.begin(), tokens.end());
    tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
    for (auto& token : tokens) {
      index.postings_[std::move(token)].push_back(n);
      ++index.posting_count_;
    }
  }
  // Postings are built in increasing n, hence already sorted.
  return index;
}

StatusOr<InvertedIndex> InvertedIndex::FromPostings(
    std::unordered_map<std::string, std::vector<doc::NodeId>> postings) {
  InvertedIndex index;
  for (auto& [term, list] : postings) {
    if (term.empty()) {
      return Status::InvalidArgument("empty term in posting map");
    }
    if (term != AsciiToLower(term)) {
      return Status::InvalidArgument("term '" + term + "' is not lowercase");
    }
    for (size_t i = 0; i < list.size(); ++i) {
      if (i > 0 && list[i] <= list[i - 1]) {
        return Status::InvalidArgument("posting list for '" + term +
                                       "' is not sorted and unique");
      }
    }
    index.posting_count_ += list.size();
  }
  index.postings_ = std::move(postings);
  return index;
}

const std::vector<doc::NodeId>& InvertedIndex::Lookup(
    std::string_view term) const {
  std::string folded = AsciiToLower(term);
  if (normalization_.fold_plurals) folded = FoldPlural(std::move(folded));
  auto it = postings_.find(folded);
  if (it == postings_.end()) return empty_;
  return it->second;
}

bool InvertedIndex::Contains(std::string_view term, doc::NodeId node) const {
  const auto& list = Lookup(term);
  return std::binary_search(list.begin(), list.end(), node);
}

std::vector<std::string> InvertedIndex::Terms() const {
  std::vector<std::string> out;
  out.reserve(postings_.size());
  for (const auto& [term, _] : postings_) out.push_back(term);
  return out;
}

}  // namespace xfrag::text
