#include "text/inverted_index.h"

#include <algorithm>

#include "common/strings.h"

namespace xfrag::text {

namespace {

// Local LEB128 decode mirroring storage::Reader::ReadVarint, including the
// 10-byte cap (the text module cannot link storage without a dependency
// cycle; the encoding contract lives in docs/STORAGE.md).
bool DecodeVarint(std::string_view data, size_t* pos, uint64_t* out) {
  uint64_t value = 0;
  int shift = 0;
  for (int length = 1; length <= 10; ++length, shift += 7) {
    if (*pos >= data.size()) return false;
    uint8_t byte = static_cast<uint8_t>(data[(*pos)++]);
    if (shift == 63 && (byte & 0x7F) > 1) return false;
    value |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *out = value;
      return true;
    }
  }
  return false;
}

// Decodes one term's varint delta run into absolute sorted node ids.
StatusOr<std::vector<doc::NodeId>> DecodeDeltaRun(std::string_view run,
                                                  size_t node_count) {
  std::vector<doc::NodeId> list;
  size_t pos = 0;
  uint64_t current = 0;
  bool first = true;
  while (pos < run.size()) {
    uint64_t delta = 0;
    if (!DecodeVarint(run, &pos, &delta)) {
      return Status::ParseError("malformed varint in posting run");
    }
    // The first value is absolute; subsequent deltas are the gap minus
    // nothing (lists are strictly increasing, deltas >= 1).
    if (first) {
      current = delta;
      first = false;
    } else {
      if (delta == 0) {
        return Status::ParseError("posting run is not strictly increasing");
      }
      if (current > UINT64_MAX - delta) {
        return Status::ParseError("posting id overflows");
      }
      current += delta;
    }
    if (current >= node_count) {
      return Status::ParseError("posting id out of node range");
    }
    list.push_back(static_cast<doc::NodeId>(current));
  }
  return list;
}

}  // namespace

InvertedIndex InvertedIndex::Build(const doc::Document& document,
                                   const IndexOptions& options) {
  InvertedIndex index;
  index.normalization_ = options.tokenizer;
  for (doc::NodeId n = 0; n < document.size(); ++n) {
    std::vector<std::string> tokens =
        Tokenize(document.text(n), options.tokenizer);
    if (options.index_tag_names) {
      auto tag_tokens = Tokenize(document.tag(n), options.tokenizer);
      tokens.insert(tokens.end(), tag_tokens.begin(), tag_tokens.end());
    }
    std::sort(tokens.begin(), tokens.end());
    tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
    for (auto& token : tokens) {
      index.postings_[std::move(token)].push_back(n);
      ++index.posting_count_;
    }
  }
  // Postings are built in increasing n, hence already sorted.
  return index;
}

StatusOr<InvertedIndex> InvertedIndex::FromPostings(
    std::unordered_map<std::string, std::vector<doc::NodeId>> postings) {
  InvertedIndex index;
  for (auto& [term, list] : postings) {
    if (term.empty()) {
      return Status::InvalidArgument("empty term in posting map");
    }
    if (term != AsciiToLower(term)) {
      return Status::InvalidArgument("term '" + term + "' is not lowercase");
    }
    for (size_t i = 0; i < list.size(); ++i) {
      if (i > 0 && list[i] <= list[i - 1]) {
        return Status::InvalidArgument("posting list for '" + term +
                                       "' is not sorted and unique");
      }
    }
    index.posting_count_ += list.size();
  }
  index.postings_ = std::move(postings);
  return index;
}

StatusOr<InvertedIndex> InvertedIndex::FromSnapshotColumns(
    const SnapshotColumns& c, const TokenizerOptions& normalization) {
  if (c.term_offsets == nullptr || c.posting_offsets == nullptr) {
    return Status::InvalidArgument("snapshot index offsets missing");
  }
  // Offsets may be slices of collection-global cumulative arrays, so the
  // first entry need not be 0 — only monotone and in-bounds.
  const size_t t = c.term_count;
  if (c.validate) {
    for (size_t i = 0; i < t; ++i) {
      if (c.term_offsets[i + 1] <= c.term_offsets[i]) {
        return Status::ParseError("snapshot term offsets not increasing");
      }
      if (c.posting_offsets[i + 1] < c.posting_offsets[i]) {
        return Status::ParseError("snapshot posting offsets not monotone");
      }
    }
    if (c.term_offsets[t] > c.term_blob.size() ||
        c.posting_offsets[t] > c.postings_blob.size()) {
      return Status::ParseError("snapshot index offsets exceed their blobs");
    }
    size_t postings_seen = 0;
    std::string_view previous;
    for (size_t i = 0; i < t; ++i) {
      std::string_view term = c.term_blob.substr(
          c.term_offsets[i], c.term_offsets[i + 1] - c.term_offsets[i]);
      if (i > 0 && term <= previous) {
        return Status::ParseError("snapshot term dictionary is not sorted");
      }
      if (term != AsciiToLower(std::string(term))) {
        return Status::ParseError("snapshot term is not lowercase");
      }
      previous = term;
      auto run = DecodeDeltaRun(
          c.postings_blob.substr(
              c.posting_offsets[i],
              c.posting_offsets[i + 1] - c.posting_offsets[i]),
          c.node_count);
      if (!run.ok()) {
        return Status::ParseError("snapshot postings for '" +
                                  std::string(term) +
                                  "': " + run.status().message());
      }
      if (run->empty()) {
        return Status::ParseError("snapshot term '" + std::string(term) +
                                  "' has no postings");
      }
      postings_seen += run->size();
    }
    if (postings_seen != c.posting_count) {
      return Status::ParseError("snapshot posting count mismatch");
    }
  } else if (c.term_offsets[t] > c.term_blob.size() ||
             c.posting_offsets[t] > c.postings_blob.size()) {
    return Status::ParseError("snapshot index offsets exceed their blobs");
  }

  InvertedIndex index;
  index.normalization_ = normalization;
  index.posting_count_ = c.posting_count;
  auto state = std::make_shared<SnapshotState>();
  state->term_count = t;
  state->term_offsets = c.term_offsets;
  state->term_blob = c.term_blob;
  state->posting_offsets = c.posting_offsets;
  state->postings_blob = c.postings_blob;
  state->node_count = c.node_count;
  state->slots =
      std::make_unique<std::atomic<const std::vector<doc::NodeId>*>[]>(t);
  for (size_t i = 0; i < t; ++i) {
    state->slots[i].store(nullptr, std::memory_order_relaxed);
  }
  index.snapshot_ = std::move(state);
  return index;
}

const std::vector<doc::NodeId>& InvertedIndex::SnapshotLookup(
    const std::string& term) const {
  SnapshotState& s = *snapshot_;
  size_t lo = 0, hi = s.term_count;
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (s.term(mid) < term) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == s.term_count || s.term(lo) != term) return empty_;

  const auto* cached = s.slots[lo].load(std::memory_order_acquire);
  if (cached != nullptr) return *cached;

  // First touch: decode off-lock, publish first-wins under the mutex so a
  // losing thread adopts the winner's list and the slot stays stable.
  auto decoded = DecodeDeltaRun(
      s.postings_blob.substr(s.posting_offsets[lo],
                             s.posting_offsets[lo + 1] -
                                 s.posting_offsets[lo]),
      s.node_count);
  // Open-time validation already scanned every run; a failure here means the
  // mapping changed underneath us, which the immutability contract excludes.
  std::vector<doc::NodeId> list =
      decoded.ok() ? std::move(*decoded) : std::vector<doc::NodeId>{};
  std::lock_guard<std::mutex> lock(s.publish_mutex);
  cached = s.slots[lo].load(std::memory_order_relaxed);
  if (cached != nullptr) return *cached;
  s.owned.push_back(
      std::make_unique<std::vector<doc::NodeId>>(std::move(list)));
  const auto* published = s.owned.back().get();
  s.slots[lo].store(published, std::memory_order_release);
  return *published;
}

const std::vector<doc::NodeId>& InvertedIndex::Lookup(
    std::string_view term) const {
  std::string folded = AsciiToLower(term);
  if (normalization_.fold_plurals) folded = FoldPlural(std::move(folded));
  if (snapshot_ != nullptr) return SnapshotLookup(folded);
  auto it = postings_.find(folded);
  if (it == postings_.end()) return empty_;
  return it->second;
}

bool InvertedIndex::Contains(std::string_view term, doc::NodeId node) const {
  const auto& list = Lookup(term);
  return std::binary_search(list.begin(), list.end(), node);
}

std::vector<std::string> InvertedIndex::Terms() const {
  std::vector<std::string> out;
  if (snapshot_ != nullptr) {
    out.reserve(snapshot_->term_count);
    for (size_t i = 0; i < snapshot_->term_count; ++i) {
      out.emplace_back(snapshot_->term(i));
    }
    return out;
  }
  out.reserve(postings_.size());
  for (const auto& [term, _] : postings_) out.push_back(term);
  return out;
}

}  // namespace xfrag::text
