// Pooled HTTP/1.1 client for one backend shard. Each BackendClient owns a
// small LIFO pool of keep-alive connections to a single endpoint; Call()
// checks one out (or dials with a bounded connect timeout and bounded
// retries), runs one request/response exchange with the incremental
// HttpResponseParser, and returns the connection to the pool when the server
// committed to keeping it open.
//
// Failure semantics are deliberately conservative, because the router's
// merge must never double-apply a query side effect (there are none today —
// /query is a pure read — but the discipline is free): an exchange is only
// retried transparently when it provably never reached the server's request
// handler, i.e. a pooled connection that died before yielding a single
// response byte (a stale keep-alive race) or a connect() that failed
// outright. Once a response byte has been seen, the error is surfaced.
//
// Calls are cancelable from another thread through CallCancel — the
// scatter-gather layer uses this to abandon the hedging loser. Cancel() uses
// shutdown(2), never close(2), so the fd stays valid (no fd-reuse race) and
// the blocked recv/send in the calling thread wakes with an error.

#ifndef XFRAG_ROUTER_BACKEND_CLIENT_H_
#define XFRAG_ROUTER_BACKEND_CLIENT_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "server/http.h"
#include "server/net.h"

namespace xfrag::router {

/// \brief Cross-thread cancellation handle for one Call(). Arm/disarm are
/// internal to BackendClient; callers just hold the handle and Cancel().
class CallCancel {
 public:
  /// \brief Wakes the call's blocked socket I/O and makes the call fail with
  /// kCancelled. Safe from any thread, idempotent, and race-free against the
  /// call completing concurrently (a completed call ignores it).
  void Cancel();

  bool canceled() const;

 private:
  friend class BackendClient;
  /// Registers the in-flight fd; reports false if already canceled (the
  /// caller must not start I/O).
  bool Arm(int fd);
  void Disarm();

  mutable std::mutex mutex_;
  int fd_ = -1;
  bool canceled_ = false;
};

/// \brief One parsed exchange outcome (status + body already split).
struct BackendResponse {
  int status = 0;
  std::string body;
  bool reused_connection = false;
};

/// \brief Keep-alive connection pool + HTTP client for one shard endpoint.
/// Thread-safe: any number of concurrent Call()s; the pool is shared.
class BackendClient {
 public:
  struct Options {
    int connect_timeout_ms = 1000;
    /// Socket read/write timeout while an exchange is in flight. Per-call
    /// deadlines below this still apply (the smaller wins).
    int io_timeout_ms = 30000;
    /// Connections kept warm for reuse (beyond this, finished connections
    /// are closed, not pooled).
    size_t max_pool_size = 8;
    /// Fresh-connect attempts per Call (>= 1).
    int max_connect_attempts = 2;
    size_t max_response_bytes = 64u << 20;
  };

  BackendClient(std::string host, uint16_t port, Options options);
  ~BackendClient();

  BackendClient(const BackendClient&) = delete;
  BackendClient& operator=(const BackendClient&) = delete;

  /// \brief One HTTP exchange. `request_bytes` must be a complete HTTP/1.1
  /// message (use BuildRequest). `deadline_ms` > 0 caps the whole exchange
  /// including connect; <= 0 falls back to the configured io timeout.
  /// `cancel` may be null.
  StatusOr<BackendResponse> Call(const std::string& request_bytes,
                                 int deadline_ms,
                                 const std::shared_ptr<CallCancel>& cancel);

  /// \brief Renders a keep-alive request message for this endpoint.
  std::string BuildRequest(std::string_view method, std::string_view target,
                           std::string_view body) const;

  const std::string& host() const { return host_; }
  uint16_t port() const { return port_; }

  /// Pool observability for /metrics.
  struct PoolStats {
    uint64_t connects = 0;
    uint64_t reuses = 0;
    uint64_t stale_retries = 0;
    size_t pooled = 0;
  };
  PoolStats Stats() const;

 private:
  server::UniqueFd TakePooled();
  void ReturnPooled(server::UniqueFd fd);
  StatusOr<BackendResponse> Exchange(server::UniqueFd* conn,
                                     const std::string& request_bytes,
                                     int timeout_ms,
                                     const std::shared_ptr<CallCancel>& cancel,
                                     bool* saw_bytes);

  std::string host_;
  uint16_t port_ = 0;
  Options options_;

  mutable std::mutex mutex_;
  std::vector<server::UniqueFd> pool_;
  uint64_t connects_ = 0;
  uint64_t reuses_ = 0;
  uint64_t stale_retries_ = 0;
};

}  // namespace xfrag::router

#endif  // XFRAG_ROUTER_BACKEND_CLIENT_H_
