#include "router/shard_map.h"

#include <algorithm>
#include <set>

#include "common/json.h"
#include "common/strings.h"

namespace xfrag::router {

namespace {

Status ShardError(size_t index, const std::string& message) {
  return Status::InvalidArgument(
      StrFormat("shards[%zu]: %s", index, message.c_str()));
}

}  // namespace

std::string ShardInfo::Endpoint() const {
  return StrFormat("%s:%u", host.c_str(), unsigned{port});
}

StatusOr<ShardInfo> ParseEndpoint(std::string_view endpoint) {
  size_t colon = endpoint.rfind(':');
  if (colon == std::string_view::npos || colon == 0 ||
      colon + 1 == endpoint.size()) {
    return Status::InvalidArgument(
        StrFormat("endpoint \"%.*s\" is not host:port",
                  static_cast<int>(endpoint.size()), endpoint.data()));
  }
  ShardInfo info;
  info.host = std::string(endpoint.substr(0, colon));
  std::string_view port_text = endpoint.substr(colon + 1);
  uint32_t port = 0;
  for (char c : port_text) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument(
          StrFormat("endpoint \"%.*s\" has a non-numeric port",
                    static_cast<int>(endpoint.size()), endpoint.data()));
    }
    port = port * 10 + static_cast<uint32_t>(c - '0');
    if (port > 65535) break;
  }
  if (port < 1 || port > 65535) {
    return Status::InvalidArgument(
        StrFormat("endpoint \"%.*s\" port out of range 1..65535",
                  static_cast<int>(endpoint.size()), endpoint.data()));
  }
  info.port = static_cast<uint16_t>(port);
  return info;
}

StatusOr<ShardMap> ParseShardMap(std::string_view text) {
  size_t error_offset = 0;
  auto root = json::Parse(text, &error_offset);
  if (!root.ok()) {
    return Status::ParseError(StrFormat("%s (offset %zu)",
                                        root.status().message().c_str(),
                                        error_offset));
  }
  if (!root->is_object()) {
    return Status::InvalidArgument("shard map must be a JSON object");
  }
  const json::Value* shards = nullptr;
  for (const auto& [key, value] : root->members()) {
    if (key == "shards") {
      shards = &value;
    } else {
      return Status::InvalidArgument(
          StrFormat("unknown shard-map field \"%s\"", key.c_str()));
    }
  }
  if (shards == nullptr || !shards->is_array() || shards->size() == 0) {
    return Status::InvalidArgument(
        "\"shards\" must be a non-empty array of shard objects");
  }

  ShardMap map;
  std::set<std::string> endpoints;
  for (size_t i = 0; i < shards->size(); ++i) {
    const json::Value& entry = (*shards)[i];
    if (!entry.is_object()) {
      return ShardError(i, "must be an object");
    }
    ShardInfo info;
    bool have_endpoint = false, have_documents = false;
    for (const auto& [key, value] : entry.members()) {
      if (key == "endpoint") {
        if (!value.is_string()) {
          return ShardError(i, "\"endpoint\" must be a string");
        }
        auto parsed = ParseEndpoint(value.AsString());
        if (!parsed.ok()) return ShardError(i, parsed.status().message());
        info.host = parsed->host;
        info.port = parsed->port;
        have_endpoint = true;
      } else if (key == "documents") {
        if (!value.is_object()) {
          return ShardError(i, "\"documents\" must be an object");
        }
        bool have_begin = false, have_count = false;
        for (const auto& [dkey, dvalue] : value.members()) {
          if (dkey == "begin") {
            if (!dvalue.is_integral() || dvalue.AsInt() < 0) {
              return ShardError(
                  i, "\"documents.begin\" must be a non-negative integer");
            }
            info.doc_begin = static_cast<size_t>(dvalue.AsInt());
            have_begin = true;
          } else if (dkey == "count") {
            if (!dvalue.is_integral() || dvalue.AsInt() < 1) {
              return ShardError(
                  i, "\"documents.count\" must be a positive integer");
            }
            info.doc_count = static_cast<size_t>(dvalue.AsInt());
            have_count = true;
          } else {
            return ShardError(
                i, StrFormat("unknown documents field \"%s\"", dkey.c_str()));
          }
        }
        if (!have_begin || !have_count) {
          return ShardError(
              i, "\"documents\" requires both \"begin\" and \"count\"");
        }
        have_documents = true;
      } else if (key == "weight") {
        if (!value.is_number() || value.AsDouble() <= 0) {
          return ShardError(i, "\"weight\" must be a positive number");
        }
        info.weight = value.AsDouble();
      } else {
        return ShardError(i,
                          StrFormat("unknown shard field \"%s\"", key.c_str()));
      }
    }
    if (!have_endpoint) return ShardError(i, "missing \"endpoint\"");
    if (!have_documents) return ShardError(i, "missing \"documents\"");
    if (!endpoints.insert(info.Endpoint()).second) {
      return ShardError(
          i, StrFormat("duplicate endpoint \"%s\"", info.Endpoint().c_str()));
    }
    map.shards.push_back(std::move(info));
  }

  std::sort(map.shards.begin(), map.shards.end(),
            [](const ShardInfo& a, const ShardInfo& b) {
              return a.doc_begin < b.doc_begin;
            });
  size_t next = 0;
  for (size_t i = 0; i < map.shards.size(); ++i) {
    const ShardInfo& shard = map.shards[i];
    if (shard.doc_begin > next) {
      return Status::InvalidArgument(StrFormat(
          "document ranges leave a gap: documents [%zu, %zu) are served by "
          "no shard",
          next, shard.doc_begin));
    }
    if (shard.doc_begin < next) {
      return Status::InvalidArgument(StrFormat(
          "document ranges overlap at document %zu (shard %s)",
          shard.doc_begin, shard.Endpoint().c_str()));
    }
    next = shard.doc_begin + shard.doc_count;
  }
  map.total_documents = next;
  return map;
}

}  // namespace xfrag::router
