// Exact cross-shard merge of /query response bodies. The contract that
// makes the router transparent: for a corpus partitioned over N shards, the
// merged body is byte-identical (modulo the "elapsed_ms" timing field) to
// the body a single xfragd hosting the whole corpus would produce for the
// same request. That holds because:
//
//  * documents are disjoint across shards and shard ranges are contiguous,
//    so full-mode answers concatenate in shard (= document) order;
//  * ranked order is (score desc, global document index asc, canonical
//    fragment order); ties within one document land on one shard, which
//    already ordered them, so a stable k-way merge on (score, doc) alone
//    reproduces the global order without re-deriving fragment comparisons;
//  * per-shard truncation at k (or max_answers) keeps every element of the
//    global prefix: a hit at global rank r < k has shard-local rank <= r,
//    so it survived its shard's own cut;
//  * answer_count obeys min(k, Σ min(k, hᵢ)) == min(k, Σ hᵢ), so summing
//    shard counts and clamping once reproduces the single-node count;
//  * OpMetrics are per-document sums, so field-wise addition over shards
//    equals the single node's aggregate.
//
// Shard-local "document_index" values are rewritten to global indices by
// adding the shard's doc_begin from the shard map.

#ifndef XFRAG_ROUTER_MERGE_H_
#define XFRAG_ROUTER_MERGE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/json.h"
#include "common/status.h"

namespace xfrag::router {

/// \brief One shard's successful /query body, tagged with its slice.
struct ShardBody {
  size_t shard_index = 0;
  /// Global index of the shard's first document (from the shard map).
  size_t doc_base = 0;
  json::Value body;
};

/// \brief The request fields the merge must know to reproduce single-node
/// semantics (extracted from the client request by the router; absent
/// fields keep the defaults).
struct MergePlan {
  int64_t top_k = -1;       // < 0 = no top-k cutoff
  bool rank = false;        // ranked evaluation ("top_k" implies it)
  int64_t max_answers = -1; // < 0 = unlimited
};

/// \brief Merges shard bodies (must be sorted by doc_base; every body a
/// successful 200 /query response) into the single-node response body.
///
/// `total_documents` is the corpus size from the shard map — reported even
/// when some shards are missing. `missing_shards` lists shard indices that
/// failed or timed out; when non-empty, a `"partial":
/// {"missing_shards": [...]}` object is appended (degraded mode). The
/// caller stamps "elapsed_ms" afterwards.
///
/// Returns InvalidArgument when a shard body is missing a required field —
/// the caller turns that into a 502, never a silently wrong merge.
StatusOr<json::Value> MergeQueryBodies(std::vector<ShardBody> bodies,
                                       const MergePlan& plan,
                                       size_t total_documents,
                                       const std::vector<size_t>&
                                           missing_shards);

}  // namespace xfrag::router

#endif  // XFRAG_ROUTER_MERGE_H_
