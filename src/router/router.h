// xfrag_router — the scatter-gather serving tier. One Router fronts N
// xfragd shards holding disjoint document slices (the ShardMap) and exposes
// the same HTTP surface as a single xfragd: POST /query plus GET
// /healthz, /metrics, /version. Every /query fans out to every shard
// concurrently, responses merge exactly (see router/merge.h), and the
// router's answer is byte-identical — modulo "elapsed_ms" — to a single
// xfragd hosting the whole corpus.
//
// Tail-latency control: after a p95-derived delay with stragglers still
// outstanding, the router launches at most ONE hedge — a duplicate request
// to the slowest straggler on a fresh exchange — and the first response
// wins; the loser is canceled via socket shutdown. Hedging is bounded (one
// per request) so a busy cluster sees at most 1/N extra load.
//
// Degraded mode: a shard that times out, refuses connections, or answers
// 5xx becomes a "missing shard". By default the router still answers 200
// with the merged remainder plus "partial": {"missing_shards": [...]};
// a request carrying "require_complete": true gets 504 instead. 4xx shard
// responses (validation errors) are forwarded verbatim — every shard
// validates identically, so the first one speaks for all.
//
// A background thread polls every shard's /healthz, maintaining mark-down /
// mark-up state that /metrics reports alongside per-shard latency
// histograms, hedge counters, partial counts, and connection-pool stats.

#ifndef XFRAG_ROUTER_ROUTER_H_
#define XFRAG_ROUTER_ROUTER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "router/backend_client.h"
#include "router/shard_map.h"
#include "server/http_server.h"
#include "server/latency_histogram.h"

namespace xfrag::router {

struct RouterOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Concurrent client requests the router serves (each occupies one worker
  /// for the whole scatter-gather).
  int workers = 8;
  int queue_capacity = 64;
  int request_timeout_ms = 10000;
  size_t max_body_bytes = 1 << 20;
  bool keep_alive = true;
  int keep_alive_idle_timeout_ms = 5000;
  int max_requests_per_connection = 1000;
  /// Worker linger before parking a kept-alive connection (see
  /// HttpServerOptions::keep_alive_linger_ms; 0 = park immediately).
  int keep_alive_linger_ms = 1;
  int keep_alive_linger_burst = 32;

  /// Per-shard budget for requests that carry no "deadline_ms" of their
  /// own. The router waits this long (plus a small network grace) before
  /// declaring stragglers missing.
  int default_shard_deadline_ms = 30000;
  /// Extra wait beyond the shard deadline for bytes already in flight.
  int deadline_grace_ms = 100;

  bool enable_hedging = true;
  /// Floor for the p95-derived hedge delay.
  int hedge_min_delay_ms = 5;
  /// Hedge delay used until the latency histograms have enough samples.
  int hedge_default_delay_ms = 50;
  /// Samples required before p95 replaces the default delay.
  uint64_t hedge_warmup_samples = 32;

  /// Interval between background /healthz probes (0 disables the checker).
  int health_check_interval_ms = 1000;
  /// Budget for one health probe.
  int health_check_timeout_ms = 1000;

  /// Distributed top-k bound exchange (docs/SERVING.md): top-k queries run
  /// two-phase — a cheap probe over the first `probe_documents` documents of
  /// every shard yields a global k-th-score floor that the refine phase
  /// pushes down ("score_floor"), and a fast shard's improved k-th score is
  /// propagated to still-running shards via POST /threshold. Probe bodies
  /// are reused: each shard's refine request resumes after its probed
  /// documents ("skip_documents") and the merge interleaves the probe and
  /// resume answer streams, so the probe's work is never paid twice.
  /// Answers are byte-identical either way; this is purely a work saver. A
  /// request may opt out with "bound_exchange": false.
  bool enable_bound_exchange = true;
  /// Documents each shard evaluates during the probe phase.
  int probe_documents = 1;
  /// Budget for one fire-and-forget threshold-update call.
  int threshold_update_timeout_ms = 200;

  /// Maximum items one POST /query_batch request may carry; larger batches
  /// are rejected whole with a structured 400. Keep at or below the shards'
  /// own batch_max_items — a shard-side envelope rejection is forwarded
  /// verbatim for the whole batch.
  size_t batch_max_items = 256;

  BackendClient::Options backend;
};

/// \brief The router daemon core: HTTP frontend + scatter-gather executor.
///
/// Lifecycle: construct → Start() → (serve) → Shutdown(); the destructor
/// calls Shutdown() if needed.
class Router : private server::HttpDispatcher {
 public:
  Router(ShardMap map, RouterOptions options);
  ~Router() override;

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  Status Start();
  void Shutdown();

  uint16_t port() const { return http_.port(); }
  const server::StatsRegistry& stats() const { return http_.stats(); }
  int InFlight() const { return http_.InFlight(); }
  const ShardMap& shard_map() const { return map_; }

  /// Router-tier counters (also in /metrics under "router").
  uint64_t hedges_launched() const { return hedges_launched_.load(); }
  uint64_t hedges_won() const { return hedges_won_.load(); }
  uint64_t partials_served() const { return partials_served_.load(); }

  /// Distributed top-k counters (also in /metrics under
  /// "router"."distributed_topk").
  uint64_t bounds_pushed() const { return bounds_pushed_.load(); }
  uint64_t threshold_updates_sent() const {
    return threshold_updates_sent_.load();
  }
  uint64_t threshold_updates_applied() const {
    return threshold_updates_applied_.load();
  }
  uint64_t bound_exchange_fallbacks() const {
    return bound_exchange_fallbacks_.load();
  }
  uint64_t topk_pairs_rejected() const {
    return topk_pairs_rejected_.load();
  }
  uint64_t probe_answers_reused() const {
    return probe_answers_reused_.load();
  }

  /// Healthy-shard count per the background checker (all shards are
  /// considered healthy before the first probe completes).
  size_t HealthyShards() const;

 private:
  /// Mutable per-shard runtime state next to the immutable ShardInfo.
  struct ShardState {
    ShardInfo info;
    std::unique_ptr<BackendClient> client;

    mutable std::mutex mutex;
    server::LatencyHistogram latency;  // successful exchanges only
    uint64_t requests = 0;
    uint64_t failures = 0;
    bool healthy = true;
    uint64_t mark_downs = 0;
    uint64_t mark_ups = 0;

    uint64_t P95Micros() const;
    uint64_t LatencyCount() const;
  };

  /// Outcome of one shard's scatter leg.
  struct ShardOutcome {
    bool resolved = false;  // a response (any HTTP status) arrived
    int http_status = 0;
    std::string body;
    Status error = Status::OK();
  };

  /// Shared between the coordinator and its in-flight attempt tasks; held
  /// by shared_ptr so the coordinator may return (deadline) while straggler
  /// attempts are still finishing in the fan-out pool.
  struct GatherState;

  std::string Dispatch(const server::HttpRequest& request, bool keep_alive,
                       int* status_out, algebra::OpMetrics* metrics_out,
                       bool* has_metrics_out) override;

  /// The /query path: parse, scatter (two-phase for top-k), hedge, gather,
  /// merge. Returns the response body; `*status_out` carries the HTTP
  /// status.
  std::string HandleQuery(const std::string& request_body, int* status_out);

  /// The /query_batch path: the whole batch goes to every shard in ONE
  /// backend request (one connection acquisition, one JSON parse, one
  /// deadline budget per shard per batch), each item merges with the exact
  /// per-item merge, and degraded/partial semantics apply per item. The
  /// two-phase top-k bound exchange is deliberately skipped: merging
  /// per-shard local top-k lists over disjoint documents is already the
  /// exact global top-k — floors are only a work-saver, and would cost a
  /// second scatter round-trip per batch. Envelope fields: a bare array, or
  /// {"queries": [...], "require_complete": bool} (require_complete applies
  /// to every item; per-item occurrences are per-item 400s).
  std::string HandleQueryBatch(const std::string& request_body,
                               int* status_out);

  /// Coordinator-thread callback fired as each shard's 200 body arrives:
  /// (shard index, body text, shards still outstanding). Used by the
  /// two-phase top-k path to raise the global threshold mid-query.
  using ResponseHook =
      std::function<void(size_t, const std::string&, const std::vector<size_t>&)>;

  /// Runs the scatter-gather for an already-forwardable shard request.
  /// `target` is the shard-side endpoint ("/query", "/query_batch").
  std::vector<ShardOutcome> ScatterGather(const std::string& forward_body,
                                          int shard_deadline_ms,
                                          const ResponseHook& on_response = {},
                                          const std::string& target = "/query");

  /// Per-shard-body form: `forward_bodies[i]` goes to shard i (the refine
  /// phase sends each shard its own "skip_documents" resume point). Must
  /// have exactly one body per shard.
  std::vector<ShardOutcome> ScatterGather(
      const std::vector<std::string>& forward_bodies, int shard_deadline_ms,
      const ResponseHook& on_response = {},
      const std::string& target = "/query");

  /// Posts fire-and-forget POST /threshold raises to `targets`.
  void SendThresholdUpdates(const std::vector<size_t>& targets,
                            const std::string& query_id, double floor);

  int HedgeDelayMs(int shard_deadline_ms) const;
  json::Value RouterMetricsJson() const;
  void HealthLoop();

  ShardMap map_;
  RouterOptions options_;
  std::vector<std::unique_ptr<ShardState>> shards_;
  std::unique_ptr<ThreadPool> fanout_pool_;

  std::atomic<uint64_t> hedges_launched_{0};
  std::atomic<uint64_t> hedges_won_{0};
  std::atomic<uint64_t> partials_served_{0};

  /// Batch routing observability (/metrics "router"."batch").
  std::atomic<uint64_t> batches_routed_{0};
  std::atomic<uint64_t> batch_items_routed_{0};

  /// Distributed top-k state: unique per-query ids for the /threshold
  /// channel, counters, and per-phase latency histograms.
  std::atomic<uint64_t> query_id_counter_{0};
  std::atomic<uint64_t> bounds_pushed_{0};
  std::atomic<uint64_t> threshold_updates_sent_{0};
  std::atomic<uint64_t> threshold_updates_applied_{0};
  std::atomic<uint64_t> bound_exchange_fallbacks_{0};
  /// Sum of merged "pairs_rejected_score" over top-k responses — the pairs
  /// the score bounds (including pushed floors) saved across the fleet.
  std::atomic<uint64_t> topk_pairs_rejected_{0};
  /// Probe bodies merged into final responses (one per shard per query):
  /// the refine phase resumed after those documents instead of re-evaluating
  /// them.
  std::atomic<uint64_t> probe_answers_reused_{0};
  mutable std::mutex phase_mutex_;
  server::LatencyHistogram probe_latency_;
  server::LatencyHistogram refine_latency_;
  server::LatencyHistogram update_latency_;

  /// Per-instance random tag embedded in generated query ids.
  std::string query_tag_;

  std::thread health_thread_;
  std::mutex health_mutex_;
  std::condition_variable health_cv_;
  bool health_stop_ = false;

  std::atomic<bool> started_{false};
  server::HttpServer http_;
};

}  // namespace xfrag::router

#endif  // XFRAG_ROUTER_ROUTER_H_
