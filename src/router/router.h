// xfrag_router — the scatter-gather serving tier. One Router fronts N
// xfragd shards holding disjoint document slices (the ShardMap) and exposes
// the same HTTP surface as a single xfragd: POST /query plus GET
// /healthz, /metrics, /version. Every /query fans out to every shard
// concurrently, responses merge exactly (see router/merge.h), and the
// router's answer is byte-identical — modulo "elapsed_ms" — to a single
// xfragd hosting the whole corpus.
//
// Tail-latency control: after a p95-derived delay with stragglers still
// outstanding, the router launches at most ONE hedge — a duplicate request
// to the slowest straggler on a fresh exchange — and the first response
// wins; the loser is canceled via socket shutdown. Hedging is bounded (one
// per request) so a busy cluster sees at most 1/N extra load.
//
// Degraded mode: a shard that times out, refuses connections, or answers
// 5xx becomes a "missing shard". By default the router still answers 200
// with the merged remainder plus "partial": {"missing_shards": [...]};
// a request carrying "require_complete": true gets 504 instead. 4xx shard
// responses (validation errors) are forwarded verbatim — every shard
// validates identically, so the first one speaks for all.
//
// A background thread polls every shard's /healthz, maintaining mark-down /
// mark-up state that /metrics reports alongside per-shard latency
// histograms, hedge counters, partial counts, and connection-pool stats.

#ifndef XFRAG_ROUTER_ROUTER_H_
#define XFRAG_ROUTER_ROUTER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "router/backend_client.h"
#include "router/shard_map.h"
#include "server/http_server.h"
#include "server/latency_histogram.h"

namespace xfrag::router {

struct RouterOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Concurrent client requests the router serves (each occupies one worker
  /// for the whole scatter-gather).
  int workers = 8;
  int queue_capacity = 64;
  int request_timeout_ms = 10000;
  size_t max_body_bytes = 1 << 20;
  bool keep_alive = true;
  int keep_alive_idle_timeout_ms = 5000;
  int max_requests_per_connection = 1000;

  /// Per-shard budget for requests that carry no "deadline_ms" of their
  /// own. The router waits this long (plus a small network grace) before
  /// declaring stragglers missing.
  int default_shard_deadline_ms = 30000;
  /// Extra wait beyond the shard deadline for bytes already in flight.
  int deadline_grace_ms = 100;

  bool enable_hedging = true;
  /// Floor for the p95-derived hedge delay.
  int hedge_min_delay_ms = 5;
  /// Hedge delay used until the latency histograms have enough samples.
  int hedge_default_delay_ms = 50;
  /// Samples required before p95 replaces the default delay.
  uint64_t hedge_warmup_samples = 32;

  /// Interval between background /healthz probes (0 disables the checker).
  int health_check_interval_ms = 1000;
  /// Budget for one health probe.
  int health_check_timeout_ms = 1000;

  BackendClient::Options backend;
};

/// \brief The router daemon core: HTTP frontend + scatter-gather executor.
///
/// Lifecycle: construct → Start() → (serve) → Shutdown(); the destructor
/// calls Shutdown() if needed.
class Router : private server::HttpDispatcher {
 public:
  Router(ShardMap map, RouterOptions options);
  ~Router() override;

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  Status Start();
  void Shutdown();

  uint16_t port() const { return http_.port(); }
  const server::StatsRegistry& stats() const { return http_.stats(); }
  int InFlight() const { return http_.InFlight(); }
  const ShardMap& shard_map() const { return map_; }

  /// Router-tier counters (also in /metrics under "router").
  uint64_t hedges_launched() const { return hedges_launched_.load(); }
  uint64_t hedges_won() const { return hedges_won_.load(); }
  uint64_t partials_served() const { return partials_served_.load(); }

  /// Healthy-shard count per the background checker (all shards are
  /// considered healthy before the first probe completes).
  size_t HealthyShards() const;

 private:
  /// Mutable per-shard runtime state next to the immutable ShardInfo.
  struct ShardState {
    ShardInfo info;
    std::unique_ptr<BackendClient> client;

    mutable std::mutex mutex;
    server::LatencyHistogram latency;  // successful exchanges only
    uint64_t requests = 0;
    uint64_t failures = 0;
    bool healthy = true;
    uint64_t mark_downs = 0;
    uint64_t mark_ups = 0;

    uint64_t P95Micros() const;
    uint64_t LatencyCount() const;
  };

  /// Outcome of one shard's scatter leg.
  struct ShardOutcome {
    bool resolved = false;  // a response (any HTTP status) arrived
    int http_status = 0;
    std::string body;
    Status error = Status::OK();
  };

  /// Shared between the coordinator and its in-flight attempt tasks; held
  /// by shared_ptr so the coordinator may return (deadline) while straggler
  /// attempts are still finishing in the fan-out pool.
  struct GatherState;

  std::string Dispatch(const server::HttpRequest& request, bool keep_alive,
                       int* status_out, algebra::OpMetrics* metrics_out,
                       bool* has_metrics_out) override;

  /// The /query path: parse, scatter, hedge, gather, merge.
  /// Returns the response body; `*status_out` carries the HTTP status.
  std::string HandleQuery(const std::string& request_body, int* status_out);

  /// Runs the scatter-gather for an already-forwardable shard request.
  std::vector<ShardOutcome> ScatterGather(const std::string& forward_body,
                                          int shard_deadline_ms);

  int HedgeDelayMs(int shard_deadline_ms) const;
  json::Value RouterMetricsJson() const;
  void HealthLoop();

  ShardMap map_;
  RouterOptions options_;
  std::vector<std::unique_ptr<ShardState>> shards_;
  std::unique_ptr<ThreadPool> fanout_pool_;

  std::atomic<uint64_t> hedges_launched_{0};
  std::atomic<uint64_t> hedges_won_{0};
  std::atomic<uint64_t> partials_served_{0};

  std::thread health_thread_;
  std::mutex health_mutex_;
  std::condition_variable health_cv_;
  bool health_stop_ = false;

  std::atomic<bool> started_{false};
  server::HttpServer http_;
};

}  // namespace xfrag::router

#endif  // XFRAG_ROUTER_ROUTER_H_
