// The router's static topology: which xfragd shard serves which contiguous
// slice of the global document space. Loaded once at startup from a JSON
// config and validated strictly — a router running with an overlapping or
// gapped shard map would silently return wrong merges, so every structural
// defect is a hard startup error with a precise message (JSON syntax errors
// carry the byte offset, semantic errors name the offending shard).
//
// Schema:
//   {"shards": [
//     {"endpoint": "127.0.0.1:9001",
//      "documents": {"begin": 0, "count": 40},
//      "weight": 1.0},                                  // optional, > 0
//     ...
//   ]}
//
// Shards must cover [0, total_documents) contiguously without overlap (any
// order in the file; the parser sorts by `begin`), and endpoints must be
// unique — two shards on one endpoint would double-count its documents.

#ifndef XFRAG_ROUTER_SHARD_MAP_H_
#define XFRAG_ROUTER_SHARD_MAP_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace xfrag::router {

/// \brief One backend shard: an endpoint plus the contiguous global
/// document range it serves.
struct ShardInfo {
  std::string host;
  uint16_t port = 0;

  /// First global document index served by this shard.
  size_t doc_begin = 0;
  /// Number of documents served (> 0).
  size_t doc_count = 0;

  /// Relative capacity hint (> 0). Not used for routing — every /query fans
  /// out to every shard — but reported in /metrics and reserved for
  /// weighted replica selection.
  double weight = 1.0;

  std::string Endpoint() const;
};

/// \brief The validated topology: shards sorted by doc_begin, covering
/// [0, total_documents) exactly.
struct ShardMap {
  std::vector<ShardInfo> shards;
  size_t total_documents = 0;
};

/// \brief Parses and validates a shard-map config.
///
/// JSON syntax errors return ParseError with "offset N" appended to the
/// message (byte offset into `text`); structural errors return
/// InvalidArgument naming the shard index in file order. Validation rules:
/// non-empty shard list, well-formed `host:port` endpoints, positive
/// document counts, unique endpoints, and ranges that tile [0, total)
/// with no gap or overlap.
StatusOr<ShardMap> ParseShardMap(std::string_view text);

/// \brief Parses `host:port` (IPv4 literal or hostname, port 1..65535).
StatusOr<ShardInfo> ParseEndpoint(std::string_view endpoint);

}  // namespace xfrag::router

#endif  // XFRAG_ROUTER_SHARD_MAP_H_
