#include "router/backend_client.h"

#include <sys/socket.h>

#include <algorithm>
#include <utility>

#include "common/strings.h"

namespace xfrag::router {

using server::HttpResponseParser;
using server::ReadSome;
using server::SetSocketTimeouts;
using server::UniqueFd;
using server::WriteAll;

void CallCancel::Cancel() {
  std::lock_guard<std::mutex> lock(mutex_);
  canceled_ = true;
  if (fd_ >= 0) {
    // shutdown, not close: the owning Call() still holds the fd open, so the
    // descriptor number cannot be recycled under us; its blocked recv/send
    // returns immediately with EOF/EPIPE.
    ::shutdown(fd_, SHUT_RDWR);
  }
}

bool CallCancel::canceled() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return canceled_;
}

bool CallCancel::Arm(int fd) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (canceled_) return false;
  fd_ = fd;
  return true;
}

void CallCancel::Disarm() {
  std::lock_guard<std::mutex> lock(mutex_);
  fd_ = -1;
}

BackendClient::BackendClient(std::string host, uint16_t port, Options options)
    : host_(std::move(host)), port_(port), options_(options) {
  if (options_.max_connect_attempts < 1) options_.max_connect_attempts = 1;
}

BackendClient::~BackendClient() = default;

std::string BackendClient::BuildRequest(std::string_view method,
                                        std::string_view target,
                                        std::string_view body) const {
  std::string out;
  out.reserve(body.size() + 160);
  out.append(method);
  out.append(" ");
  out.append(target);
  out.append(" HTTP/1.1\r\nHost: ");
  out.append(StrFormat("%s:%u", host_.c_str(), unsigned{port_}));
  out.append("\r\nContent-Type: application/json\r\nContent-Length: ");
  out.append(StrFormat("%zu", body.size()));
  out.append("\r\nConnection: keep-alive\r\n\r\n");
  out.append(body);
  return out;
}

UniqueFd BackendClient::TakePooled() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (pool_.empty()) return UniqueFd();
  UniqueFd fd = std::move(pool_.back());
  pool_.pop_back();
  ++reuses_;
  return fd;
}

void BackendClient::ReturnPooled(UniqueFd fd) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (pool_.size() < options_.max_pool_size) pool_.push_back(std::move(fd));
}

BackendClient::PoolStats BackendClient::Stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  PoolStats stats;
  stats.connects = connects_;
  stats.reuses = reuses_;
  stats.stale_retries = stale_retries_;
  stats.pooled = pool_.size();
  return stats;
}

StatusOr<BackendResponse> BackendClient::Exchange(
    UniqueFd* conn, const std::string& request_bytes, int timeout_ms,
    const std::shared_ptr<CallCancel>& cancel, bool* saw_bytes) {
  *saw_bytes = false;
  if (cancel != nullptr && !cancel->Arm(conn->get())) {
    return Status::DeadlineExceeded("call canceled");
  }
  // Disarm before every return below so Cancel() never touches a descriptor
  // we have already handed back to the pool (or closed).
  auto finish = [&](StatusOr<BackendResponse> result) {
    if (cancel != nullptr) cancel->Disarm();
    return result;
  };

  (void)SetSocketTimeouts(conn->get(), timeout_ms);
  Status written = WriteAll(conn->get(), request_bytes);
  if (!written.ok()) return finish(std::move(written));

  HttpResponseParser parser(options_.max_response_bytes);
  char buf[16 * 1024];
  auto state = HttpResponseParser::State::kNeedMore;
  while (state == HttpResponseParser::State::kNeedMore) {
    auto n = ReadSome(conn->get(), buf, sizeof(buf));
    if (!n.ok()) {
      *saw_bytes = parser.saw_bytes();
      return finish(n.status());
    }
    if (*n == 0) {
      state = parser.OnEof();
      break;
    }
    state = parser.Feed(std::string_view(buf, *n));
    *saw_bytes = parser.saw_bytes();
  }
  if (state != HttpResponseParser::State::kComplete) {
    *saw_bytes = parser.saw_bytes();
    return finish(Status::Internal(StrFormat(
        "bad response from %s:%u: %s", host_.c_str(), unsigned{port_},
        parser.error().empty() ? "connection closed mid-response"
                               : parser.error().c_str())));
  }
  if (cancel != nullptr) cancel->Disarm();
  if (cancel != nullptr && cancel->canceled()) {
    // The cancel raced with completion; the response is whole, but the
    // socket may have been shut down mid-keep-alive. Do not reuse it.
    BackendResponse response;
    response.status = parser.response().status;
    response.body = parser.response().body;
    return response;
  }

  BackendResponse response;
  response.status = parser.response().status;
  response.body = parser.response().body;
  if (parser.response().keep_alive) {
    ReturnPooled(std::move(*conn));
  }
  return response;
}

StatusOr<BackendResponse> BackendClient::Call(
    const std::string& request_bytes, int deadline_ms,
    const std::shared_ptr<CallCancel>& cancel) {
  int timeout_ms = options_.io_timeout_ms;
  if (deadline_ms > 0) timeout_ms = std::min(timeout_ms, deadline_ms);
  if (timeout_ms < 1) timeout_ms = 1;

  // First try a pooled connection. A keep-alive peer may close an idle
  // connection at any time, so a pooled exchange that dies before the first
  // response byte is retried on a fresh dial — it never reached dispatch.
  UniqueFd pooled = TakePooled();
  if (pooled.valid()) {
    bool saw_bytes = false;
    bool reused_cancel = cancel != nullptr && cancel->canceled();
    auto result = Exchange(&pooled, request_bytes, timeout_ms, cancel,
                           &saw_bytes);
    if (result.ok()) {
      result->reused_connection = true;
      return result;
    }
    if (saw_bytes || reused_cancel || (cancel != nullptr && cancel->canceled())) {
      return result;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    ++stale_retries_;
  }

  Status last = Status::Internal("unreachable");
  for (int attempt = 0; attempt < options_.max_connect_attempts; ++attempt) {
    if (cancel != nullptr && cancel->canceled()) {
      return Status::DeadlineExceeded("call canceled");
    }
    int connect_timeout = std::min(options_.connect_timeout_ms, timeout_ms);
    auto conn = server::ConnectTcpTimeout(host_, port_, connect_timeout);
    if (!conn.ok()) {
      last = conn.status();
      continue;  // bounded retry on connect failure only
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++connects_;
    }
    bool saw_bytes = false;
    auto result = Exchange(&*conn, request_bytes, timeout_ms, cancel,
                           &saw_bytes);
    if (result.ok()) return result;
    // A fresh connection that failed is not retried: the request may have
    // reached the server (saw_bytes aside, the write went out).
    return result.status();
  }
  return last;
}

}  // namespace xfrag::router
