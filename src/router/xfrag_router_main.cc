// xfrag_router — scatter-gather front tier over a sharded xfragd cluster.
//
//   usage: xfrag_router --shard-map <map.json> [options]
//
//   options:
//     --shard-map FILE       shard topology (see docs/SERVING.md)  [required]
//     --host H               bind address          (default 127.0.0.1)
//     --port N               TCP port              (default 8377, 0 = ephemeral)
//     --workers N            concurrent client requests      (default 8)
//     --queue N              admission queue beyond workers  (default 64)
//     --shard-deadline-ms N  per-shard budget when the request has no
//                            deadline_ms of its own          (default 30000)
//     --connect-timeout-ms N backend connect timeout         (default 1000)
//     --no-hedging           disable hedged requests
//     --hedge-delay-ms N     hedge delay before p95 data exists (default 50)
//     --health-interval-ms N background /healthz period (default 1000, 0=off)
//     --no-bound-exchange    disable two-phase distributed top-k (ablation)
//     --probe-documents N    documents per shard in the top-k probe phase
//                            (default 1)
//     --batch-max-items N    per-request /query_batch item cap (default 256)
//     --version              print build info and exit
//
//   $ xfrag_router --shard-map cluster.json &
//   xfrag_router listening on 127.0.0.1:8377 (3 shards, 120 documents)
//
// SIGINT/SIGTERM triggers a graceful drain, exactly like xfragd.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "common/version.h"
#include "router/router.h"
#include "router/shard_map.h"

namespace {

volatile std::sig_atomic_t g_shutdown_requested = 0;

void HandleSignal(int) { g_shutdown_requested = 1; }

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --shard-map <map.json> [options]\n"
      "  --host H | --port N | --workers N | --queue N\n"
      "  --shard-deadline-ms MS | --connect-timeout-ms MS\n"
      "  --no-hedging | --hedge-delay-ms MS | --health-interval-ms MS\n"
      "  --no-bound-exchange | --probe-documents N | --batch-max-items N\n"
      "  --version\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string map_path;
  xfrag::router::RouterOptions options;
  options.port = 8377;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--version") {
      std::printf("%s (router protocol revision %d)\n",
                  xfrag::BuildInfo("xfrag_router").c_str(),
                  xfrag::kRouterProtocolRevision);
      return 0;
    } else if (arg == "--shard-map" && i + 1 < argc) {
      map_path = argv[++i];
    } else if (arg == "--host" && i + 1 < argc) {
      options.host = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      options.port = static_cast<uint16_t>(std::atoi(argv[++i]));
    } else if (arg == "--workers" && i + 1 < argc) {
      options.workers = std::atoi(argv[++i]);
      if (options.workers < 1) {
        std::fprintf(stderr, "--workers requires a count >= 1\n");
        return 2;
      }
    } else if (arg == "--queue" && i + 1 < argc) {
      options.queue_capacity = std::atoi(argv[++i]);
    } else if (arg == "--shard-deadline-ms" && i + 1 < argc) {
      options.default_shard_deadline_ms = std::atoi(argv[++i]);
    } else if (arg == "--connect-timeout-ms" && i + 1 < argc) {
      options.backend.connect_timeout_ms = std::atoi(argv[++i]);
    } else if (arg == "--no-hedging") {
      options.enable_hedging = false;
    } else if (arg == "--hedge-delay-ms" && i + 1 < argc) {
      options.hedge_default_delay_ms = std::atoi(argv[++i]);
    } else if (arg == "--health-interval-ms" && i + 1 < argc) {
      options.health_check_interval_ms = std::atoi(argv[++i]);
    } else if (arg == "--no-bound-exchange") {
      options.enable_bound_exchange = false;
    } else if (arg == "--batch-max-items" && i + 1 < argc) {
      options.batch_max_items = static_cast<size_t>(std::atol(argv[++i]));
    } else if (arg == "--probe-documents" && i + 1 < argc) {
      options.probe_documents = std::atoi(argv[++i]);
      if (options.probe_documents < 1) {
        std::fprintf(stderr, "--probe-documents requires a count >= 1\n");
        return 2;
      }
    } else {
      return Usage(argv[0]);
    }
  }
  if (map_path.empty()) return Usage(argv[0]);

  std::ifstream in(map_path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "xfrag_router: cannot open %s\n", map_path.c_str());
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto map = xfrag::router::ParseShardMap(buffer.str());
  if (!map.ok()) {
    std::fprintf(stderr, "xfrag_router: %s: %s\n", map_path.c_str(),
                 map.status().ToString().c_str());
    return 1;
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGPIPE, SIG_IGN);

  xfrag::router::Router router(std::move(*map), options);
  auto started = router.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "xfrag_router: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("xfrag_router listening on %s:%u (%zu shard%s, %zu documents)\n",
              options.host.c_str(), router.port(),
              router.shard_map().shards.size(),
              router.shard_map().shards.size() == 1 ? "" : "s",
              router.shard_map().total_documents);
  std::fflush(stdout);

  while (g_shutdown_requested == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::printf("xfrag_router: draining %d in-flight request(s)...\n",
              router.InFlight());
  std::fflush(stdout);
  router.Shutdown();
  std::printf("xfrag_router: served %llu request(s), bye\n",
              static_cast<unsigned long long>(
                  router.stats().TotalRequests()));
  return 0;
}
