#include "router/router.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <utility>

#include "common/json.h"
#include "common/strings.h"
#include "common/timer.h"
#include "common/version.h"
#include "router/merge.h"
#include "server/stats.h"

namespace xfrag::router {

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::string_view kJsonType = "application/json";

server::HttpServerOptions ToHttpOptions(const RouterOptions& options) {
  server::HttpServerOptions http;
  http.host = options.host;
  http.port = options.port;
  http.workers = options.workers;
  http.queue_capacity = options.queue_capacity;
  http.request_timeout_ms = options.request_timeout_ms;
  http.max_body_bytes = options.max_body_bytes;
  http.keep_alive = options.keep_alive;
  http.keep_alive_idle_timeout_ms = options.keep_alive_idle_timeout_ms;
  http.max_requests_per_connection = options.max_requests_per_connection;
  return http;
}

/// The structured error shape shared with QueryService (service.cc): the
/// router's own errors look exactly like a shard's.
json::Value ErrorJson(const Status& status) {
  json::Value body = json::Value::Object();
  body.Set("error", status.message());
  body.Set("code", std::string(StatusCodeName(status.code())));
  return body;
}

json::Value MissingShardsJson(const std::vector<size_t>& missing) {
  json::Value out = json::Value::Array();
  for (size_t index : missing) out.Append(static_cast<uint64_t>(index));
  return out;
}

}  // namespace

uint64_t Router::ShardState::P95Micros() const {
  std::lock_guard<std::mutex> lock(mutex);
  return latency.PercentileUpperBoundMicros(95);
}

uint64_t Router::ShardState::LatencyCount() const {
  std::lock_guard<std::mutex> lock(mutex);
  return latency.count();
}

/// Shared between the gather coordinator and its attempt tasks. Each shard
/// has a primary attempt and at most one hedge; the first attempt to come
/// back with a parsed HTTP response resolves the shard and cancels its
/// sibling. A shard with every attempt failed resolves as an error. The
/// coordinator may stop waiting (deadline) while attempts still run —
/// hence the shared_ptr lifetime.
struct Router::GatherState {
  struct PerShard {
    int attempts_running = 0;
    bool done = false;
    ShardOutcome outcome;
    std::shared_ptr<CallCancel> primary;
    std::shared_ptr<CallCancel> hedge;
    bool hedge_won = false;
  };

  std::mutex mutex;
  std::condition_variable cv;
  size_t outstanding = 0;
  std::vector<PerShard> shards;
};

Router::Router(ShardMap map, RouterOptions options)
    : map_(std::move(map)),
      options_(std::move(options)),
      http_(*this, ToHttpOptions(options_)) {
  shards_.reserve(map_.shards.size());
  for (const ShardInfo& info : map_.shards) {
    auto state = std::make_unique<ShardState>();
    state->info = info;
    state->client = std::make_unique<BackendClient>(info.host, info.port,
                                                    options_.backend);
    shards_.push_back(std::move(state));
  }
  // Sized so every worker can have all its shard legs plus a hedge in
  // flight without queuing behind another request's fan-out.
  size_t fanout = static_cast<size_t>(std::max(1, options_.workers)) *
                      (shards_.size() + 1) +
                  1;
  fanout_pool_ = std::make_unique<ThreadPool>(
      static_cast<unsigned>(std::clamp<size_t>(fanout, 2, 128)));
}

Router::~Router() { Shutdown(); }

Status Router::Start() {
  XFRAG_RETURN_NOT_OK(http_.Start());
  if (options_.health_check_interval_ms > 0) {
    health_thread_ = std::thread([this] { HealthLoop(); });
  }
  started_.store(true);
  return Status::OK();
}

void Router::Shutdown() {
  if (!started_.exchange(false)) return;
  {
    std::lock_guard<std::mutex> lock(health_mutex_);
    health_stop_ = true;
  }
  health_cv_.notify_all();
  if (health_thread_.joinable()) health_thread_.join();
  http_.Shutdown();
}

size_t Router::HealthyShards() const {
  size_t healthy = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    if (shard->healthy) ++healthy;
  }
  return healthy;
}

void Router::HealthLoop() {
  while (true) {
    {
      std::unique_lock<std::mutex> lock(health_mutex_);
      health_cv_.wait_for(
          lock,
          std::chrono::milliseconds(options_.health_check_interval_ms),
          [this] { return health_stop_; });
      if (health_stop_) return;
    }
    for (const auto& shard : shards_) {
      std::string probe = shard->client->BuildRequest("GET", "/healthz", "");
      auto result = shard->client->Call(
          probe, options_.health_check_timeout_ms, nullptr);
      bool up = result.ok() && result->status == 200;
      std::lock_guard<std::mutex> lock(shard->mutex);
      if (up != shard->healthy) {
        shard->healthy = up;
        if (up) {
          ++shard->mark_ups;
        } else {
          ++shard->mark_downs;
        }
      }
    }
  }
}

int Router::HedgeDelayMs(int shard_deadline_ms) const {
  uint64_t max_p95_us = 0;
  uint64_t min_samples = std::numeric_limits<uint64_t>::max();
  for (const auto& shard : shards_) {
    max_p95_us = std::max(max_p95_us, shard->P95Micros());
    min_samples = std::min(min_samples, shard->LatencyCount());
  }
  int delay = min_samples < options_.hedge_warmup_samples
                  ? options_.hedge_default_delay_ms
                  : static_cast<int>(max_p95_us / 1000) + 1;
  delay = std::max(delay, options_.hedge_min_delay_ms);
  return std::min(delay, std::max(1, shard_deadline_ms / 2));
}

std::vector<Router::ShardOutcome> Router::ScatterGather(
    const std::string& forward_body, int shard_deadline_ms) {
  const size_t n = shards_.size();
  auto state = std::make_shared<GatherState>();
  state->shards.resize(n);
  state->outstanding = n;

  auto launch = [this, state, shard_deadline_ms](
                    size_t i, const std::string& request,
                    std::shared_ptr<CallCancel> cancel, bool is_hedge) {
    fanout_pool_->Post([this, state, i, request, cancel, is_hedge,
                        shard_deadline_ms] {
      Timer timer;
      auto result = shards_[i]->client->Call(request, shard_deadline_ms,
                                             cancel);
      {
        std::lock_guard<std::mutex> shard_lock(shards_[i]->mutex);
        ++shards_[i]->requests;
        if (result.ok()) {
          shards_[i]->latency.Record(
              static_cast<uint64_t>(timer.ElapsedMicros()));
        } else {
          ++shards_[i]->failures;
        }
      }
      std::lock_guard<std::mutex> lock(state->mutex);
      GatherState::PerShard& per = state->shards[i];
      --per.attempts_running;
      if (per.done) return;  // sibling already resolved the shard
      if (result.ok()) {
        per.done = true;
        per.outcome.resolved = true;
        per.outcome.http_status = result->status;
        per.outcome.body = std::move(result->body);
        per.hedge_won = is_hedge;
        // The loser's socket is shut down, not closed: its attempt still
        // owns the fd and fails out promptly instead of waiting for data.
        if (is_hedge && per.primary != nullptr) per.primary->Cancel();
        if (!is_hedge && per.hedge != nullptr) per.hedge->Cancel();
        --state->outstanding;
        state->cv.notify_all();
      } else {
        per.outcome.error = result.status();
        if (per.attempts_running == 0) {
          per.done = true;
          --state->outstanding;
          state->cv.notify_all();
        }
      }
    });
  };

  std::vector<std::string> requests;
  requests.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    requests.push_back(
        shards_[i]->client->BuildRequest("POST", "/query", forward_body));
  }
  {
    std::lock_guard<std::mutex> lock(state->mutex);
    for (size_t i = 0; i < n; ++i) {
      state->shards[i].primary = std::make_shared<CallCancel>();
      state->shards[i].attempts_running = 1;
    }
  }
  for (size_t i = 0; i < n; ++i) {
    launch(i, requests[i], state->shards[i].primary, /*is_hedge=*/false);
  }

  const auto start = Clock::now();
  const auto deadline_tp =
      start + std::chrono::milliseconds(shard_deadline_ms +
                                        options_.deadline_grace_ms);
  const auto hedge_tp =
      start + std::chrono::milliseconds(HedgeDelayMs(shard_deadline_ms));
  bool hedged = !options_.enable_hedging || n == 0;

  std::unique_lock<std::mutex> lock(state->mutex);
  while (state->outstanding > 0) {
    auto wake = hedged ? deadline_tp : std::min(deadline_tp, hedge_tp);
    bool all_done = state->cv.wait_until(
        lock, wake, [&] { return state->outstanding == 0; });
    if (all_done) break;
    auto now = Clock::now();
    if (!hedged && now >= hedge_tp) {
      hedged = true;
      // One hedge per request, aimed at the slowest straggler: of the
      // shards still outstanding, the one with the worst observed p95.
      size_t straggler = n;
      uint64_t worst_p95 = 0;
      for (size_t i = 0; i < n; ++i) {
        if (state->shards[i].done) continue;
        uint64_t p95 = shards_[i]->P95Micros();
        if (straggler == n || p95 > worst_p95) {
          straggler = i;
          worst_p95 = p95;
        }
      }
      if (straggler < n) {
        GatherState::PerShard& per = state->shards[straggler];
        per.hedge = std::make_shared<CallCancel>();
        ++per.attempts_running;
        hedges_launched_.fetch_add(1, std::memory_order_relaxed);
        launch(straggler, requests[straggler], per.hedge, /*is_hedge=*/true);
      }
      continue;
    }
    if (now >= deadline_tp) break;
  }

  // Harvest under the lock: stragglers are resolved as deadline-missing and
  // their attempts canceled; any late completion sees done and discards.
  std::vector<ShardOutcome> outcomes(n);
  for (size_t i = 0; i < n; ++i) {
    GatherState::PerShard& per = state->shards[i];
    if (!per.done) {
      if (per.primary != nullptr) per.primary->Cancel();
      if (per.hedge != nullptr) per.hedge->Cancel();
      if (per.outcome.error.ok()) {
        per.outcome.error = Status::DeadlineExceeded(StrFormat(
            "shard %s did not answer within %d ms",
            shards_[i]->info.Endpoint().c_str(), shard_deadline_ms));
      }
      per.done = true;
      --state->outstanding;
    }
    if (per.outcome.resolved && per.hedge_won) {
      hedges_won_.fetch_add(1, std::memory_order_relaxed);
    }
    outcomes[i] = per.outcome;
  }
  return outcomes;
}

std::string Router::HandleQuery(const std::string& request_body,
                                int* status_out) {
  Timer timer;
  size_t error_offset = 0;
  auto root = json::Parse(request_body, &error_offset);
  if (!root.ok()) {
    json::Value body = ErrorJson(root.status());
    body.Set("offset", static_cast<uint64_t>(error_offset));
    *status_out = 400;
    return body.Dump();
  }

  bool require_complete = false;
  MergePlan plan;
  int shard_deadline_ms = options_.default_shard_deadline_ms;
  if (root->is_object()) {
    // require_complete is router-protocol only: validate, consume, and
    // strip it before forwarding (a shard would reject the unknown field).
    if (const json::Value* rc = root->Find("require_complete")) {
      if (!rc->is_bool()) {
        *status_out = 400;
        return ErrorJson(Status::InvalidArgument(
                             "\"require_complete\" must be a boolean"))
            .Dump();
      }
      require_complete = rc->AsBool();
      root->Remove("require_complete");
    }
    // Best-effort extraction of the fields the merge needs; requests the
    // shards would reject keep the defaults (the 4xx is forwarded anyway).
    if (const json::Value* v = root->Find("top_k");
        v != nullptr && v->is_integral() && v->AsInt() >= 0) {
      plan.top_k = v->AsInt();
    }
    if (const json::Value* v = root->Find("rank");
        v != nullptr && v->is_bool()) {
      plan.rank = v->AsBool();
    }
    if (const json::Value* v = root->Find("max_answers");
        v != nullptr && v->is_integral() && v->AsInt() >= 0) {
      plan.max_answers = v->AsInt();
    }
    if (const json::Value* v = root->Find("deadline_ms");
        v != nullptr && v->is_number() && v->AsDouble() > 0) {
      shard_deadline_ms =
          std::max(1, static_cast<int>(std::ceil(v->AsDouble())));
    }
  }

  std::vector<ShardOutcome> outcomes =
      ScatterGather(root->Dump(), shard_deadline_ms);

  std::vector<ShardBody> bodies;
  std::vector<size_t> missing;
  for (size_t i = 0; i < outcomes.size(); ++i) {
    ShardOutcome& outcome = outcomes[i];
    if (outcome.resolved && outcome.http_status == 200) {
      auto parsed = json::Parse(outcome.body);
      if (parsed.ok() && parsed->is_object()) {
        bodies.push_back(ShardBody{i, shards_[i]->info.doc_begin,
                                   std::move(*parsed)});
      } else {
        missing.push_back(i);
      }
    } else if (outcome.resolved && outcome.http_status >= 400 &&
               outcome.http_status < 500) {
      // Validation errors are deterministic across shards (identical
      // request, identical decoder) — the first one speaks for the corpus.
      *status_out = outcome.http_status;
      return std::move(outcome.body);
    } else {
      // 5xx, shard-side 504, transport error, or gather deadline.
      missing.push_back(i);
    }
  }

  if (bodies.empty() || (require_complete && !missing.empty())) {
    json::Value body = ErrorJson(Status::DeadlineExceeded(
        bodies.empty() ? "no shard answered"
                       : "incomplete result refused (require_complete)"));
    body.Set("missing_shards", MissingShardsJson(missing));
    *status_out = 504;
    return body.Dump();
  }

  auto merged = MergeQueryBodies(std::move(bodies), plan,
                                 map_.total_documents, missing);
  if (!merged.ok()) {
    *status_out = 502;
    return ErrorJson(Status::Internal("merge failed: " +
                                      merged.status().message()))
        .Dump();
  }
  if (!missing.empty()) {
    partials_served_.fetch_add(1, std::memory_order_relaxed);
  }
  merged->Set("elapsed_ms", timer.ElapsedMillis());
  *status_out = 200;
  return merged->Dump();
}

json::Value Router::RouterMetricsJson() const {
  json::Value hedges = json::Value::Object();
  hedges.Set("launched", hedges_launched_.load(std::memory_order_relaxed));
  hedges.Set("won", hedges_won_.load(std::memory_order_relaxed));

  json::Value shards = json::Value::Array();
  for (const auto& shard : shards_) {
    json::Value entry = json::Value::Object();
    entry.Set("endpoint", shard->info.Endpoint());
    json::Value documents = json::Value::Object();
    documents.Set("begin", static_cast<uint64_t>(shard->info.doc_begin));
    documents.Set("count", static_cast<uint64_t>(shard->info.doc_count));
    entry.Set("documents", std::move(documents));
    entry.Set("weight", shard->info.weight);
    {
      std::lock_guard<std::mutex> lock(shard->mutex);
      entry.Set("healthy", shard->healthy);
      entry.Set("requests", shard->requests);
      entry.Set("failures", shard->failures);
      entry.Set("mark_downs", shard->mark_downs);
      entry.Set("mark_ups", shard->mark_ups);
      entry.Set("latency_us",
                server::StatsRegistry::LatencyToJson(shard->latency));
    }
    BackendClient::PoolStats pool = shard->client->Stats();
    json::Value pool_json = json::Value::Object();
    pool_json.Set("connects", pool.connects);
    pool_json.Set("reuses", pool.reuses);
    pool_json.Set("stale_retries", pool.stale_retries);
    pool_json.Set("pooled", static_cast<uint64_t>(pool.pooled));
    entry.Set("pool", std::move(pool_json));
    shards.Append(std::move(entry));
  }

  json::Value out = json::Value::Object();
  out.Set("hedges", std::move(hedges));
  out.Set("partials_served",
          partials_served_.load(std::memory_order_relaxed));
  out.Set("shards", std::move(shards));
  return out;
}

std::string Router::Dispatch(const server::HttpRequest& request,
                             bool keep_alive, int* status_out,
                             algebra::OpMetrics* metrics_out,
                             bool* has_metrics_out) {
  (void)metrics_out;
  (void)has_metrics_out;
  const std::string& target = request.target;
  if (target == "/query") {
    if (request.method != "POST") {
      *status_out = 405;
      return server::RenderHttpResponse(
          405, kJsonType,
          "{\"error\":\"use POST for /query\",\"status\":405}",
          "Allow: POST\r\n", keep_alive);
    }
    std::string body = HandleQuery(request.body, status_out);
    return server::RenderHttpResponse(*status_out, kJsonType, body, {},
                                      keep_alive);
  }
  if (target == "/healthz" || target == "/metrics" || target == "/version") {
    if (request.method != "GET") {
      *status_out = 405;
      return server::RenderHttpResponse(
          405, kJsonType,
          "{\"error\":\"use GET for this endpoint\",\"status\":405}",
          "Allow: GET\r\n", keep_alive);
    }
    json::Value body;
    if (target == "/healthz") {
      body = json::Value::Object();
      body.Set("status", "ok");
      body.Set("shards", static_cast<uint64_t>(shards_.size()));
      body.Set("healthy_shards", static_cast<uint64_t>(HealthyShards()));
      body.Set("documents", static_cast<uint64_t>(map_.total_documents));
    } else if (target == "/version") {
      body = json::Value::Object();
      body.Set("version", kVersion);
      body.Set("build", BuildInfo("xfrag_router"));
      body.Set("router_protocol_revision",
               static_cast<int64_t>(kRouterProtocolRevision));
    } else {
      body = http_.stats().ToJson();
      body.Set("in_flight", static_cast<int64_t>(InFlight()));
      body.Set("router", RouterMetricsJson());
    }
    *status_out = 200;
    return server::RenderHttpResponse(200, kJsonType, body.Dump(), {},
                                      keep_alive);
  }
  *status_out = 404;
  return server::RenderHttpResponse(
      404, kJsonType, "{\"error\":\"no such endpoint\",\"status\":404}", {},
      keep_alive);
}

}  // namespace xfrag::router
