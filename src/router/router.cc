#include "router/router.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <random>
#include <set>
#include <string_view>
#include <utility>

#include "common/json.h"
#include "common/strings.h"
#include "common/timer.h"
#include "common/version.h"
#include "router/merge.h"
#include "server/stats.h"

namespace xfrag::router {

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::string_view kJsonType = "application/json";

server::HttpServerOptions ToHttpOptions(const RouterOptions& options) {
  server::HttpServerOptions http;
  http.host = options.host;
  http.port = options.port;
  http.workers = options.workers;
  http.queue_capacity = options.queue_capacity;
  http.request_timeout_ms = options.request_timeout_ms;
  http.max_body_bytes = options.max_body_bytes;
  http.keep_alive = options.keep_alive;
  http.keep_alive_idle_timeout_ms = options.keep_alive_idle_timeout_ms;
  http.max_requests_per_connection = options.max_requests_per_connection;
  http.keep_alive_linger_ms = options.keep_alive_linger_ms;
  http.keep_alive_linger_burst = options.keep_alive_linger_burst;
  return http;
}

/// The structured error shape shared with QueryService (service.cc): the
/// router's own errors look exactly like a shard's.
json::Value ErrorJson(const Status& status) {
  json::Value body = json::Value::Object();
  body.Set("error", status.message());
  body.Set("code", std::string(StatusCodeName(status.code())));
  return body;
}

json::Value MissingShardsJson(const std::vector<size_t>& missing) {
  json::Value out = json::Value::Array();
  for (size_t index : missing) out.Append(static_cast<uint64_t>(index));
  return out;
}

/// The global k-th-score threshold. Feeding it every answer score seen so
/// far (probe answers, completed refine bodies), its floor — the smallest of
/// the k best — is sound by construction: k real, distinct answers score at
/// or above it (shards hold disjoint documents, and each shard's list is
/// already deduplicated), so a shard may prune strictly-below candidates
/// without losing any global top-k answer. Coordinator-thread only.
class ThresholdTracker {
 public:
  explicit ThresholdTracker(size_t k) : k_(k) {}

  void Add(double score) {
    if (k_ == 0) return;
    best_.insert(score);
    if (best_.size() > k_) best_.erase(best_.begin());
  }

  bool HasFloor() const { return k_ > 0 && best_.size() >= k_; }
  double Floor() const { return *best_.begin(); }

 private:
  size_t k_;
  std::multiset<double> best_;
};

/// Feeds every answer score of a /query body into the tracker. Bodies may
/// truncate answers below k ("max_answers") — that only starves the tracker,
/// never unsounds it, since a floor needs k *collected* scores.
void AddAnswerScores(const json::Value& body, ThresholdTracker* tracker) {
  const json::Value* answers = body.Find("answers");
  if (answers == nullptr || !answers->is_array()) return;
  for (const json::Value& answer : answers->items()) {
    if (!answer.is_object()) continue;
    const json::Value* score = answer.Find("score");
    if (score != nullptr && score->is_number()) {
      tracker->Add(score->AsDouble());
    }
  }
}

}  // namespace

uint64_t Router::ShardState::P95Micros() const {
  std::lock_guard<std::mutex> lock(mutex);
  return latency.PercentileUpperBoundMicros(95);
}

uint64_t Router::ShardState::LatencyCount() const {
  std::lock_guard<std::mutex> lock(mutex);
  return latency.count();
}

/// Shared between the gather coordinator and its attempt tasks. Each shard
/// has a primary attempt and at most one hedge; the first attempt to come
/// back with a parsed HTTP response resolves the shard and cancels its
/// sibling. A shard with every attempt failed resolves as an error. The
/// coordinator may stop waiting (deadline) while attempts still run —
/// hence the shared_ptr lifetime.
struct Router::GatherState {
  struct PerShard {
    int attempts_running = 0;
    bool done = false;
    ShardOutcome outcome;
    std::shared_ptr<CallCancel> primary;
    std::shared_ptr<CallCancel> hedge;
    bool hedge_won = false;
  };

  std::mutex mutex;
  std::condition_variable cv;
  size_t outstanding = 0;
  std::vector<PerShard> shards;
  /// Shards that resolved with HTTP 200, in arrival order — the coordinator
  /// drains this to fire the response hook without missing a resolution.
  std::vector<size_t> resolve_order;
};

Router::Router(ShardMap map, RouterOptions options)
    : map_(std::move(map)),
      options_(std::move(options)),
      http_(*this, ToHttpOptions(options_)) {
  shards_.reserve(map_.shards.size());
  for (const ShardInfo& info : map_.shards) {
    auto state = std::make_unique<ShardState>();
    state->info = info;
    state->client = std::make_unique<BackendClient>(info.host, info.port,
                                                    options_.backend);
    shards_.push_back(std::move(state));
  }
  // Sized so every worker can have all its shard legs plus a hedge and a
  // round of threshold-update tasks in flight without queuing behind
  // another request's fan-out.
  size_t fanout = static_cast<size_t>(std::max(1, options_.workers)) *
                      (shards_.size() + 2) +
                  1;
  fanout_pool_ = std::make_unique<ThreadPool>(
      static_cast<unsigned>(std::clamp<size_t>(fanout, 2, 128)));
  // A per-instance tag keeps query ids distinct across routers sharing the
  // same shard fleet — a collision would merge two queries' floors in the
  // shard-side registry, and another query's floor is not sound for this
  // one.
  std::random_device rd;
  query_tag_ = StrFormat("%08x%08x", rd(), rd());
}

Router::~Router() { Shutdown(); }

Status Router::Start() {
  XFRAG_RETURN_NOT_OK(http_.Start());
  if (options_.health_check_interval_ms > 0) {
    health_thread_ = std::thread([this] { HealthLoop(); });
  }
  started_.store(true);
  return Status::OK();
}

void Router::Shutdown() {
  if (!started_.exchange(false)) return;
  {
    std::lock_guard<std::mutex> lock(health_mutex_);
    health_stop_ = true;
  }
  health_cv_.notify_all();
  if (health_thread_.joinable()) health_thread_.join();
  http_.Shutdown();
}

size_t Router::HealthyShards() const {
  size_t healthy = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    if (shard->healthy) ++healthy;
  }
  return healthy;
}

void Router::HealthLoop() {
  while (true) {
    {
      std::unique_lock<std::mutex> lock(health_mutex_);
      health_cv_.wait_for(
          lock,
          std::chrono::milliseconds(options_.health_check_interval_ms),
          [this] { return health_stop_; });
      if (health_stop_) return;
    }
    for (const auto& shard : shards_) {
      std::string probe = shard->client->BuildRequest("GET", "/healthz", "");
      auto result = shard->client->Call(
          probe, options_.health_check_timeout_ms, nullptr);
      bool up = result.ok() && result->status == 200;
      std::lock_guard<std::mutex> lock(shard->mutex);
      if (up != shard->healthy) {
        shard->healthy = up;
        if (up) {
          ++shard->mark_ups;
        } else {
          ++shard->mark_downs;
        }
      }
    }
  }
}

int Router::HedgeDelayMs(int shard_deadline_ms) const {
  uint64_t max_p95_us = 0;
  uint64_t min_samples = std::numeric_limits<uint64_t>::max();
  for (const auto& shard : shards_) {
    max_p95_us = std::max(max_p95_us, shard->P95Micros());
    min_samples = std::min(min_samples, shard->LatencyCount());
  }
  int delay = min_samples < options_.hedge_warmup_samples
                  ? options_.hedge_default_delay_ms
                  : static_cast<int>(max_p95_us / 1000) + 1;
  delay = std::max(delay, options_.hedge_min_delay_ms);
  return std::min(delay, std::max(1, shard_deadline_ms / 2));
}

std::vector<Router::ShardOutcome> Router::ScatterGather(
    const std::string& forward_body, int shard_deadline_ms,
    const ResponseHook& on_response, const std::string& target) {
  return ScatterGather(
      std::vector<std::string>(shards_.size(), forward_body),
      shard_deadline_ms, on_response, target);
}

std::vector<Router::ShardOutcome> Router::ScatterGather(
    const std::vector<std::string>& forward_bodies, int shard_deadline_ms,
    const ResponseHook& on_response, const std::string& target) {
  const size_t n = shards_.size();
  auto state = std::make_shared<GatherState>();
  state->shards.resize(n);
  state->outstanding = n;

  auto launch = [this, state, shard_deadline_ms](
                    size_t i, const std::string& request,
                    std::shared_ptr<CallCancel> cancel, bool is_hedge) {
    fanout_pool_->Post([this, state, i, request, cancel, is_hedge,
                        shard_deadline_ms] {
      Timer timer;
      auto result = shards_[i]->client->Call(request, shard_deadline_ms,
                                             cancel);
      {
        std::lock_guard<std::mutex> shard_lock(shards_[i]->mutex);
        ++shards_[i]->requests;
        if (result.ok()) {
          shards_[i]->latency.Record(
              static_cast<uint64_t>(timer.ElapsedMicros()));
        } else {
          ++shards_[i]->failures;
        }
      }
      std::lock_guard<std::mutex> lock(state->mutex);
      GatherState::PerShard& per = state->shards[i];
      --per.attempts_running;
      if (per.done) return;  // sibling already resolved the shard
      if (result.ok()) {
        per.done = true;
        per.outcome.resolved = true;
        per.outcome.http_status = result->status;
        per.outcome.body = std::move(result->body);
        if (result->status == 200) state->resolve_order.push_back(i);
        per.hedge_won = is_hedge;
        // The loser's socket is shut down, not closed: its attempt still
        // owns the fd and fails out promptly instead of waiting for data.
        if (is_hedge && per.primary != nullptr) per.primary->Cancel();
        if (!is_hedge && per.hedge != nullptr) per.hedge->Cancel();
        --state->outstanding;
        state->cv.notify_all();
      } else {
        per.outcome.error = result.status();
        if (per.attempts_running == 0) {
          per.done = true;
          --state->outstanding;
          state->cv.notify_all();
        }
      }
    });
  };

  std::vector<std::string> requests;
  requests.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    requests.push_back(
        shards_[i]->client->BuildRequest("POST", target, forward_bodies[i]));
  }
  {
    std::lock_guard<std::mutex> lock(state->mutex);
    for (size_t i = 0; i < n; ++i) {
      state->shards[i].primary = std::make_shared<CallCancel>();
      state->shards[i].attempts_running = 1;
    }
  }
  for (size_t i = 0; i < n; ++i) {
    launch(i, requests[i], state->shards[i].primary, /*is_hedge=*/false);
  }

  const auto start = Clock::now();
  const auto deadline_tp =
      start + std::chrono::milliseconds(shard_deadline_ms +
                                        options_.deadline_grace_ms);
  const auto hedge_tp =
      start + std::chrono::milliseconds(HedgeDelayMs(shard_deadline_ms));
  bool hedged = !options_.enable_hedging || n == 0;

  std::unique_lock<std::mutex> lock(state->mutex);
  // Fires the response hook for every 200 body that has arrived since the
  // last drain. The hook runs unlocked (it may parse bodies and post update
  // tasks); resolve_order only ever grows, so re-checking its size after
  // relocking never skips or repeats a shard.
  size_t hook_drained = 0;
  auto drain_hook = [&] {
    while (on_response && hook_drained < state->resolve_order.size()) {
      size_t shard = state->resolve_order[hook_drained++];
      std::string body = state->shards[shard].outcome.body;
      std::vector<size_t> running;
      for (size_t j = 0; j < state->shards.size(); ++j) {
        if (!state->shards[j].done) running.push_back(j);
      }
      lock.unlock();
      on_response(shard, body, running);
      lock.lock();
    }
  };
  while (state->outstanding > 0) {
    auto wake = hedged ? deadline_tp : std::min(deadline_tp, hedge_tp);
    state->cv.wait_until(lock, wake, [&] {
      return state->outstanding == 0 ||
             (on_response != nullptr &&
              hook_drained < state->resolve_order.size());
    });
    drain_hook();
    if (state->outstanding == 0) break;
    auto now = Clock::now();
    if (!hedged && now >= hedge_tp) {
      hedged = true;
      // One hedge per request, aimed at the slowest straggler: of the
      // shards still outstanding, the one with the worst observed p95.
      size_t straggler = n;
      uint64_t worst_p95 = 0;
      for (size_t i = 0; i < n; ++i) {
        if (state->shards[i].done) continue;
        uint64_t p95 = shards_[i]->P95Micros();
        if (straggler == n || p95 > worst_p95) {
          straggler = i;
          worst_p95 = p95;
        }
      }
      if (straggler < n) {
        GatherState::PerShard& per = state->shards[straggler];
        per.hedge = std::make_shared<CallCancel>();
        ++per.attempts_running;
        hedges_launched_.fetch_add(1, std::memory_order_relaxed);
        launch(straggler, requests[straggler], per.hedge, /*is_hedge=*/true);
      }
      continue;
    }
    if (now >= deadline_tp) break;
  }

  // Harvest under the lock: stragglers are resolved as deadline-missing and
  // their attempts canceled; any late completion sees done and discards.
  std::vector<ShardOutcome> outcomes(n);
  for (size_t i = 0; i < n; ++i) {
    GatherState::PerShard& per = state->shards[i];
    if (!per.done) {
      if (per.primary != nullptr) per.primary->Cancel();
      if (per.hedge != nullptr) per.hedge->Cancel();
      if (per.outcome.error.ok()) {
        per.outcome.error = Status::DeadlineExceeded(StrFormat(
            "shard %s did not answer within %d ms",
            shards_[i]->info.Endpoint().c_str(), shard_deadline_ms));
      }
      per.done = true;
      --state->outstanding;
    }
    if (per.outcome.resolved && per.hedge_won) {
      hedges_won_.fetch_add(1, std::memory_order_relaxed);
    }
    outcomes[i] = per.outcome;
  }
  return outcomes;
}

std::string Router::HandleQuery(const std::string& request_body,
                                int* status_out) {
  Timer timer;
  size_t error_offset = 0;
  auto root = json::Parse(request_body, &error_offset);
  if (!root.ok()) {
    json::Value body = ErrorJson(root.status());
    body.Set("offset", static_cast<uint64_t>(error_offset));
    *status_out = 400;
    return body.Dump();
  }

  bool require_complete = false;
  bool bound_exchange = options_.enable_bound_exchange;
  MergePlan plan;
  int shard_deadline_ms = options_.default_shard_deadline_ms;
  if (root->is_object()) {
    // require_complete is router-protocol only: validate, consume, and
    // strip it before forwarding (a shard would reject the unknown field).
    if (const json::Value* rc = root->Find("require_complete")) {
      if (!rc->is_bool()) {
        *status_out = 400;
        return ErrorJson(Status::InvalidArgument(
                             "\"require_complete\" must be a boolean"))
            .Dump();
      }
      require_complete = rc->AsBool();
      root->Remove("require_complete");
    }
    // bound_exchange is router-protocol too: a per-request override of the
    // two-phase top-k machinery (ablation / debugging).
    if (const json::Value* be = root->Find("bound_exchange")) {
      if (!be->is_bool()) {
        *status_out = 400;
        return ErrorJson(Status::InvalidArgument(
                             "\"bound_exchange\" must be a boolean"))
            .Dump();
      }
      bound_exchange = be->AsBool();
      root->Remove("bound_exchange");
    }
    // The shard-side distributed top-k fields are internal to the
    // router↔shard protocol; a client must not inject floors (an unsound
    // floor would silently drop answers) or collide with router query ids.
    for (std::string_view internal :
         {"score_floor", "probe_documents", "skip_documents", "query_id"}) {
      if (root->Find(internal) != nullptr) {
        *status_out = 400;
        return ErrorJson(Status::InvalidArgument(StrFormat(
                             "\"%.*s\" is internal to the router-shard "
                             "protocol and not accepted from clients",
                             static_cast<int>(internal.size()),
                             internal.data())))
            .Dump();
      }
    }
    // Best-effort extraction of the fields the merge needs; requests the
    // shards would reject keep the defaults (the 4xx is forwarded anyway).
    if (const json::Value* v = root->Find("top_k");
        v != nullptr && v->is_integral() && v->AsInt() >= 0) {
      plan.top_k = v->AsInt();
    }
    if (const json::Value* v = root->Find("rank");
        v != nullptr && v->is_bool()) {
      plan.rank = v->AsBool();
    }
    if (const json::Value* v = root->Find("max_answers");
        v != nullptr && v->is_integral() && v->AsInt() >= 0) {
      plan.max_answers = v->AsInt();
    }
    if (const json::Value* v = root->Find("deadline_ms");
        v != nullptr && v->is_number() && v->AsDouble() > 0) {
      shard_deadline_ms =
          std::max(1, static_cast<int>(std::ceil(v->AsDouble())));
    }
  }

  // Two-phase distributed top-k (docs/SERVING.md): probe → global k-th
  // score → refine with the floor pushed down, plus mid-query raises as
  // fast shards finish. k == 0 and single-shard deployments gain nothing
  // from a floor, so they stay single-phase.
  const bool two_phase = bound_exchange && root->is_object() &&
                         plan.top_k >= 1 && shards_.size() > 1;
  std::string query_id;
  ThresholdTracker tracker(
      two_phase ? static_cast<size_t>(plan.top_k) : 0);
  double best_floor_sent = -std::numeric_limits<double>::infinity();
  // Probe reuse: a shard's successful probe body is kept and merged into
  // the final response, and that shard's refine request resumes after the
  // probed documents ("skip_documents") instead of re-evaluating them — the
  // probe's work is never paid twice. Exact because the probe is the shard's
  // true top-k over its first documents, the resume is the (floored) top-k
  // over the rest, and the k-way merge of disjoint-document top-k lists is
  // the global top-k.
  struct ProbeReuse {
    bool use = false;
    uint64_t evaluated = 0;
    json::Value body;
  };
  std::vector<ProbeReuse> probe_reuse(shards_.size());

  if (two_phase) {
    Timer probe_timer;
    // The probe evaluates only each shard's first documents — cheap by
    // construction, so it keeps the client's rendering options (its answers
    // are served, not discarded). Only "max_answers" is stripped: the floor
    // needs all k probe scores, and the merge re-truncates.
    json::Value probe = *root;
    probe.Remove("max_answers");
    probe.Set("probe_documents",
              static_cast<int64_t>(std::max(1, options_.probe_documents)));
    std::vector<ShardOutcome> probe_outcomes =
        ScatterGather(probe.Dump(), shard_deadline_ms);
    // A failed or invalid probe response only costs pruning, never
    // correctness — and a probe 4xx is *not* forwarded: the probe body
    // differs from the client's, so only the refine phase (which carries
    // every client field) may speak for validation.
    for (size_t i = 0; i < probe_outcomes.size(); ++i) {
      const ShardOutcome& outcome = probe_outcomes[i];
      if (!outcome.resolved || outcome.http_status != 200) continue;
      auto parsed = json::Parse(outcome.body);
      if (parsed.ok() && parsed->is_object()) {
        AddAnswerScores(*parsed, &tracker);
        const json::Value* evaluated = parsed->Find("documents_evaluated");
        if (evaluated != nullptr && evaluated->is_integral() &&
            evaluated->AsInt() >= 1) {
          probe_reuse[i].use = true;
          probe_reuse[i].evaluated =
              static_cast<uint64_t>(evaluated->AsInt());
          probe_reuse[i].body = std::move(*parsed);
        }
      }
    }
    {
      std::lock_guard<std::mutex> lock(phase_mutex_);
      probe_latency_.Record(
          static_cast<uint64_t>(probe_timer.ElapsedMicros()));
    }
    query_id = StrFormat(
        "xr-%s-%llu", query_tag_.c_str(),
        static_cast<unsigned long long>(
            query_id_counter_.fetch_add(1, std::memory_order_relaxed)));
    root->Set("query_id", query_id);
    if (tracker.HasFloor()) {
      best_floor_sent = tracker.Floor();
      root->Set("score_floor", best_floor_sent);
      bounds_pushed_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // As refine responses land, fold their answer scores into the tracker and
  // push any improved global k-th score to the shards still running. All on
  // the coordinator thread — the tracker needs no lock.
  ResponseHook hook;
  if (two_phase) {
    hook = [this, &tracker, &query_id, &best_floor_sent](
               size_t, const std::string& body_text,
               const std::vector<size_t>& running) {
      if (running.empty()) return;
      auto parsed = json::Parse(body_text);
      if (!parsed.ok() || !parsed->is_object()) return;
      AddAnswerScores(*parsed, &tracker);
      if (!tracker.HasFloor()) return;
      double floor = tracker.Floor();
      if (floor <= best_floor_sent) return;
      best_floor_sent = floor;
      SendThresholdUpdates(running, query_id, floor);
    };
  }

  // Refine bodies are per shard: a shard whose probe is being reused gets
  // its own resume point; the others get the plain request.
  std::vector<std::string> refine_bodies;
  refine_bodies.reserve(shards_.size());
  {
    const std::string plain = root->Dump();
    for (size_t i = 0; i < shards_.size(); ++i) {
      if (probe_reuse[i].use) {
        root->Set("skip_documents",
                  static_cast<int64_t>(probe_reuse[i].evaluated));
        refine_bodies.push_back(root->Dump());
        root->Remove("skip_documents");
      } else {
        refine_bodies.push_back(plain);
      }
    }
  }

  Timer refine_timer;
  std::vector<ShardOutcome> outcomes =
      ScatterGather(refine_bodies, shard_deadline_ms, hook);
  if (two_phase) {
    std::lock_guard<std::mutex> lock(phase_mutex_);
    refine_latency_.Record(
        static_cast<uint64_t>(refine_timer.ElapsedMicros()));
  }

  std::vector<ShardBody> bodies;
  std::vector<size_t> missing;
  int forwarded_status = 0;
  std::string forwarded_body;
  auto classify = [&](std::vector<ShardOutcome>& outs) {
    bodies.clear();
    missing.clear();
    forwarded_status = 0;
    for (size_t i = 0; i < outs.size(); ++i) {
      ShardOutcome& outcome = outs[i];
      if (outcome.resolved && outcome.http_status == 200) {
        auto parsed = json::Parse(outcome.body);
        if (parsed.ok() && parsed->is_object()) {
          bodies.push_back(ShardBody{i, shards_[i]->info.doc_begin,
                                     std::move(*parsed)});
        } else {
          missing.push_back(i);
        }
      } else if (outcome.resolved && outcome.http_status >= 400 &&
                 outcome.http_status < 500) {
        // Validation errors are deterministic across shards (identical
        // request, identical decoder) — the first one speaks for the corpus.
        forwarded_status = outcome.http_status;
        forwarded_body = std::move(outcome.body);
        return;
      } else {
        // 5xx, shard-side 504, transport error, or gather deadline.
        missing.push_back(i);
      }
    }
  };
  classify(outcomes);
  if (forwarded_status != 0) {
    *status_out = forwarded_status;
    return forwarded_body;
  }

  // Degraded-mode exactness: the floor pushed at refine (and any mid-query
  // raise) is justified by answers that may have lived on a shard that just
  // went missing — survivors pruned against witnesses nobody merged would
  // be silently wrong. Re-scatter the plain single-phase request so every
  // surviving shard's output is self-justified, then merge that.
  if (two_phase && !missing.empty() && !require_complete && !bodies.empty()) {
    bound_exchange_fallbacks_.fetch_add(1, std::memory_order_relaxed);
    root->Remove("score_floor");
    root->Remove("query_id");
    // The fallback bodies are complete single-phase evaluations, so every
    // probe body must be discarded: merging one next to a full body for the
    // same shard would duplicate the probed documents' answers.
    for (ProbeReuse& reuse : probe_reuse) reuse.use = false;
    outcomes = ScatterGather(root->Dump(), shard_deadline_ms);
    classify(outcomes);
    if (forwarded_status != 0) {
      *status_out = forwarded_status;
      return forwarded_body;
    }
  }

  if (bodies.empty() || (require_complete && !missing.empty())) {
    json::Value body = ErrorJson(Status::DeadlineExceeded(
        bodies.empty() ? "no shard answered"
                       : "incomplete result refused (require_complete)"));
    body.Set("missing_shards", MissingShardsJson(missing));
    *status_out = 504;
    return body.Dump();
  }

  // Interleave each reused probe body ahead of its shard's resume body: the
  // two partition the shard's documents (probe first, in document order), so
  // the merge treats them as two mini-shards sharing one doc_base.
  if (two_phase) {
    std::vector<ShardBody> with_probes;
    with_probes.reserve(bodies.size() * 2);
    for (ShardBody& body : bodies) {
      ProbeReuse& reuse = probe_reuse[body.shard_index];
      if (reuse.use) {
        probe_answers_reused_.fetch_add(1, std::memory_order_relaxed);
        with_probes.push_back(ShardBody{body.shard_index, body.doc_base,
                                        std::move(reuse.body)});
      }
      with_probes.push_back(std::move(body));
    }
    bodies = std::move(with_probes);
  }

  auto merged = MergeQueryBodies(std::move(bodies), plan,
                                 map_.total_documents, missing);
  if (!merged.ok()) {
    *status_out = 502;
    return ErrorJson(Status::Internal("merge failed: " +
                                      merged.status().message()))
        .Dump();
  }
  if (!missing.empty()) {
    partials_served_.fetch_add(1, std::memory_order_relaxed);
  }
  if (plan.top_k >= 0) {
    // Observability for the bench: how many candidate pairs the score
    // bounds (seeded floors included) rejected fleet-wide for this query.
    if (const json::Value* metrics = merged->Find("metrics")) {
      if (const json::Value* rejected =
              metrics->Find("pairs_rejected_score");
          rejected != nullptr && rejected->is_integral() &&
          rejected->AsInt() >= 0) {
        topk_pairs_rejected_.fetch_add(
            static_cast<uint64_t>(rejected->AsInt()),
            std::memory_order_relaxed);
      }
    }
  }
  merged->Set("elapsed_ms", timer.ElapsedMillis());
  *status_out = 200;
  return merged->Dump();
}

std::string Router::HandleQueryBatch(const std::string& request_body,
                                     int* status_out) {
  Timer timer;
  size_t error_offset = 0;
  auto root = json::Parse(request_body, &error_offset);
  if (!root.ok()) {
    json::Value body = ErrorJson(root.status());
    body.Set("offset", static_cast<uint64_t>(error_offset));
    *status_out = 400;
    return body.Dump();
  }
  // Envelope: a bare array of query objects, or {"queries": [...],
  // "require_complete": bool}. require_complete is batch-wide — the gather
  // has one deadline budget per shard per batch, so completeness is a
  // property of the whole scatter, applied per item at merge time.
  bool require_complete = false;
  const json::Value* queries = nullptr;
  if (root->is_array()) {
    queries = &*root;
  } else if (root->is_object()) {
    for (const auto& [key, value] : root->members()) {
      if (key == "queries") {
        if (!value.is_array()) {
          *status_out = 400;
          return ErrorJson(Status::InvalidArgument(
                               "\"queries\" must be an array of query "
                               "objects"))
              .Dump();
        }
        queries = &value;
      } else if (key == "require_complete") {
        if (!value.is_bool()) {
          *status_out = 400;
          return ErrorJson(Status::InvalidArgument(
                               "\"require_complete\" must be a boolean"))
              .Dump();
        }
        require_complete = value.AsBool();
      } else {
        *status_out = 400;
        return ErrorJson(Status::InvalidArgument(StrFormat(
                             "unknown batch field \"%s\"", key.c_str())))
            .Dump();
      }
    }
    if (queries == nullptr) {
      *status_out = 400;
      return ErrorJson(
                 Status::InvalidArgument("missing required field \"queries\""))
          .Dump();
    }
  } else {
    *status_out = 400;
    return ErrorJson(Status::InvalidArgument(
                         "batch body must be a JSON array or "
                         "{\"queries\": [...]}"))
        .Dump();
  }
  if (queries->size() == 0) {
    *status_out = 400;
    return ErrorJson(
               Status::InvalidArgument("batch must contain at least one query"))
        .Dump();
  }
  if (queries->size() > options_.batch_max_items) {
    *status_out = 400;
    return ErrorJson(Status::InvalidArgument(StrFormat(
                         "batch of %zu items exceeds the %zu-item limit",
                         queries->size(), options_.batch_max_items)))
        .Dump();
  }

  const size_t n_items = queries->size();
  struct ItemState {
    bool forwarded = false;
    size_t forward_position = 0;
    int status = 0;
    json::Value body;
    MergePlan plan;
  };
  std::vector<ItemState> items(n_items);
  json::Value forward = json::Value::Array();
  size_t forwarded_count = 0;
  int shard_deadline_ms = options_.default_shard_deadline_ms;
  for (size_t i = 0; i < n_items; ++i) {
    const json::Value& q = (*queries)[i];
    ItemState& item = items[i];
    if (!q.is_object()) {
      item.status = 400;
      item.body = ErrorJson(Status::InvalidArgument(
          "each batch item must be a JSON object"));
      continue;
    }
    // Per-item router-protocol policing mirrors /query; a bad item is a
    // per-item structured 400, never a rejection of the whole batch.
    bool rejected = false;
    for (std::string_view internal :
         {"score_floor", "probe_documents", "skip_documents", "query_id"}) {
      if (q.Find(internal) != nullptr) {
        item.status = 400;
        item.body = ErrorJson(Status::InvalidArgument(StrFormat(
            "\"%.*s\" is internal to the router-shard protocol and not "
            "accepted from clients",
            static_cast<int>(internal.size()), internal.data())));
        rejected = true;
        break;
      }
    }
    if (rejected) continue;
    // require_complete lives on the batch envelope; accepting it per item
    // would silently apply to nothing.
    if (q.Find("require_complete") != nullptr) {
      item.status = 400;
      item.body = ErrorJson(Status::InvalidArgument(
          "\"require_complete\" applies to the whole batch; set it on the "
          "batch envelope, not on an item"));
      continue;
    }
    // The batch path merges each shard's local top-k directly (exact over
    // disjoint documents), so the bound-exchange switch has nothing to
    // control here; accepting it would be a silent no-op.
    if (q.Find("bound_exchange") != nullptr) {
      item.status = 400;
      item.body = ErrorJson(Status::InvalidArgument(
          "\"bound_exchange\" is not supported on /query_batch; batch top-k "
          "merges are exact without the exchange"));
      continue;
    }
    // Best-effort extraction of the per-item merge plan; items the shards
    // would reject keep the defaults (their per-item 4xx is forwarded).
    if (const json::Value* v = q.Find("top_k");
        v != nullptr && v->is_integral() && v->AsInt() >= 0) {
      item.plan.top_k = v->AsInt();
    }
    if (const json::Value* v = q.Find("rank");
        v != nullptr && v->is_bool()) {
      item.plan.rank = v->AsBool();
    }
    if (const json::Value* v = q.Find("max_answers");
        v != nullptr && v->is_integral() && v->AsInt() >= 0) {
      item.plan.max_answers = v->AsInt();
    }
    // One deadline budget per shard per batch: wide enough for the most
    // patient item.
    if (const json::Value* v = q.Find("deadline_ms");
        v != nullptr && v->is_number() && v->AsDouble() > 0) {
      shard_deadline_ms = std::max(
          shard_deadline_ms, static_cast<int>(std::ceil(v->AsDouble())));
    }
    item.forwarded = true;
    item.forward_position = forwarded_count++;
    forward.Append(q);
  }
  batches_routed_.fetch_add(1, std::memory_order_relaxed);
  batch_items_routed_.fetch_add(n_items, std::memory_order_relaxed);

  auto render = [&]() -> std::string {
    json::Value results = json::Value::Array();
    for (ItemState& item : items) {
      json::Value entry = json::Value::Object();
      entry.Set("status", static_cast<int64_t>(item.status));
      entry.Set("body", std::move(item.body));
      results.Append(std::move(entry));
    }
    json::Value body = json::Value::Object();
    body.Set("results", std::move(results));
    body.Set("elapsed_ms", timer.ElapsedMillis());
    *status_out = 200;
    return body.Dump();
  };
  if (forwarded_count == 0) return render();

  // ONE scatter of the whole forwarded sub-batch to every shard: one
  // connection acquisition, one request/response parse, one deadline budget
  // per shard per batch. The two-phase bound exchange is skipped on purpose
  // — the per-item merge of per-shard top-k lists over disjoint documents
  // is already the exact global answer; floors only save shard-side work
  // and would cost a second scatter round-trip per batch.
  std::vector<ShardOutcome> outcomes =
      ScatterGather(forward.Dump(), shard_deadline_ms, {}, "/query_batch");

  const size_t n_shards = shards_.size();
  struct ShardBatch {
    bool ok = false;  // parsed envelope with one result per forwarded item
    json::Value parsed;
  };
  std::vector<ShardBatch> shard_batches(n_shards);
  for (size_t s = 0; s < n_shards; ++s) {
    ShardOutcome& outcome = outcomes[s];
    if (outcome.resolved && outcome.http_status == 200) {
      auto parsed = json::Parse(outcome.body);
      const json::Value* results =
          parsed.ok() && parsed->is_object() ? parsed->Find("results")
                                             : nullptr;
      if (results != nullptr && results->is_array() &&
          results->size() == forwarded_count) {
        shard_batches[s].ok = true;
        shard_batches[s].parsed = std::move(*parsed);
      }
      // A malformed 200 envelope degrades to a missing shard per item.
    } else if (outcome.resolved && outcome.http_status >= 400 &&
               outcome.http_status < 500) {
      // A batch-envelope 4xx is deterministic across shards (identical
      // envelope, identical decoder) — the first speaks for the fleet.
      *status_out = outcome.http_status;
      return std::move(outcome.body);
    }
    // Transport errors / 5xx / gather deadline: missing shard per item.
  }

  for (size_t i = 0; i < n_items; ++i) {
    ItemState& item = items[i];
    if (!item.forwarded) continue;
    const size_t p = item.forward_position;
    std::vector<ShardBody> bodies;
    std::vector<size_t> missing;
    int item_4xx_status = 0;
    json::Value item_4xx_body;
    for (size_t s = 0; s < n_shards; ++s) {
      if (!shard_batches[s].ok) {
        missing.push_back(s);
        continue;
      }
      const json::Value& result =
          (*shard_batches[s].parsed.Find("results"))[p];
      const json::Value* status =
          result.is_object() ? result.Find("status") : nullptr;
      const json::Value* body =
          result.is_object() ? result.Find("body") : nullptr;
      if (status == nullptr || !status->is_integral() || body == nullptr) {
        missing.push_back(s);
        continue;
      }
      const int64_t code = status->AsInt();
      if (code == 200 && body->is_object()) {
        bodies.push_back(
            ShardBody{s, shards_[s]->info.doc_begin, *body});
      } else if (code >= 400 && code < 500) {
        // Per-item validation errors are deterministic across shards too.
        if (item_4xx_status == 0) {
          item_4xx_status = static_cast<int>(code);
          item_4xx_body = *body;
        }
      } else {
        // Per-item 504/5xx (e.g. an expired item deadline on that shard).
        missing.push_back(s);
      }
    }
    if (item_4xx_status != 0) {
      item.status = item_4xx_status;
      item.body = std::move(item_4xx_body);
      continue;
    }
    if (bodies.empty() || (require_complete && !missing.empty())) {
      json::Value err = ErrorJson(Status::DeadlineExceeded(
          bodies.empty() ? "no shard answered"
                         : "incomplete result refused (require_complete)"));
      err.Set("missing_shards", MissingShardsJson(missing));
      item.status = 504;
      item.body = std::move(err);
      continue;
    }
    auto merged = MergeQueryBodies(std::move(bodies), item.plan,
                                   map_.total_documents, missing);
    if (!merged.ok()) {
      item.status = 502;
      item.body = ErrorJson(
          Status::Internal("merge failed: " + merged.status().message()));
      continue;
    }
    if (!missing.empty()) {
      partials_served_.fetch_add(1, std::memory_order_relaxed);
    }
    merged->Set("elapsed_ms", timer.ElapsedMillis());
    item.status = 200;
    item.body = std::move(*merged);
  }
  return render();
}

void Router::SendThresholdUpdates(const std::vector<size_t>& targets,
                                  const std::string& query_id, double floor) {
  json::Value update = json::Value::Object();
  update.Set("query_id", query_id);
  update.Set("score_floor", floor);
  const std::string body = update.Dump();
  for (size_t target : targets) {
    threshold_updates_sent_.fetch_add(1, std::memory_order_relaxed);
    std::string request =
        shards_[target]->client->BuildRequest("POST", "/threshold", body);
    // Fire and forget: a lost or late update only costs pruning. The task
    // runs on the fan-out pool (sized with headroom for it) and never
    // blocks the query's coordinator.
    fanout_pool_->Post([this, target, request] {
      Timer timer;
      auto result = shards_[target]->client->Call(
          request, options_.threshold_update_timeout_ms, nullptr);
      {
        std::lock_guard<std::mutex> lock(phase_mutex_);
        update_latency_.Record(
            static_cast<uint64_t>(timer.ElapsedMicros()));
      }
      if (!result.ok() || result->status != 200) return;
      auto parsed = json::Parse(result->body);
      if (parsed.ok() && parsed->is_object()) {
        const json::Value* updated = parsed->Find("updated");
        if (updated != nullptr && updated->is_bool() && updated->AsBool()) {
          threshold_updates_applied_.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
}

json::Value Router::RouterMetricsJson() const {
  json::Value hedges = json::Value::Object();
  hedges.Set("launched", hedges_launched_.load(std::memory_order_relaxed));
  hedges.Set("won", hedges_won_.load(std::memory_order_relaxed));

  json::Value shards = json::Value::Array();
  for (const auto& shard : shards_) {
    json::Value entry = json::Value::Object();
    entry.Set("endpoint", shard->info.Endpoint());
    json::Value documents = json::Value::Object();
    documents.Set("begin", static_cast<uint64_t>(shard->info.doc_begin));
    documents.Set("count", static_cast<uint64_t>(shard->info.doc_count));
    entry.Set("documents", std::move(documents));
    entry.Set("weight", shard->info.weight);
    {
      std::lock_guard<std::mutex> lock(shard->mutex);
      entry.Set("healthy", shard->healthy);
      entry.Set("requests", shard->requests);
      entry.Set("failures", shard->failures);
      entry.Set("mark_downs", shard->mark_downs);
      entry.Set("mark_ups", shard->mark_ups);
      entry.Set("latency_us",
                server::StatsRegistry::LatencyToJson(shard->latency));
    }
    BackendClient::PoolStats pool = shard->client->Stats();
    json::Value pool_json = json::Value::Object();
    pool_json.Set("connects", pool.connects);
    pool_json.Set("reuses", pool.reuses);
    pool_json.Set("stale_retries", pool.stale_retries);
    pool_json.Set("pooled", static_cast<uint64_t>(pool.pooled));
    entry.Set("pool", std::move(pool_json));
    shards.Append(std::move(entry));
  }

  json::Value topk = json::Value::Object();
  topk.Set("bounds_pushed",
           bounds_pushed_.load(std::memory_order_relaxed));
  topk.Set("threshold_updates_sent",
           threshold_updates_sent_.load(std::memory_order_relaxed));
  topk.Set("threshold_updates_applied",
           threshold_updates_applied_.load(std::memory_order_relaxed));
  topk.Set("fallback_rescatter",
           bound_exchange_fallbacks_.load(std::memory_order_relaxed));
  topk.Set("pairs_rejected_score",
           topk_pairs_rejected_.load(std::memory_order_relaxed));
  topk.Set("probe_reused",
           probe_answers_reused_.load(std::memory_order_relaxed));
  {
    std::lock_guard<std::mutex> lock(phase_mutex_);
    topk.Set("probe_latency_us",
             server::StatsRegistry::LatencyToJson(probe_latency_));
    topk.Set("refine_latency_us",
             server::StatsRegistry::LatencyToJson(refine_latency_));
    topk.Set("update_latency_us",
             server::StatsRegistry::LatencyToJson(update_latency_));
  }

  json::Value batch = json::Value::Object();
  batch.Set("batches", batches_routed_.load(std::memory_order_relaxed));
  batch.Set("items", batch_items_routed_.load(std::memory_order_relaxed));

  json::Value out = json::Value::Object();
  out.Set("hedges", std::move(hedges));
  out.Set("partials_served",
          partials_served_.load(std::memory_order_relaxed));
  out.Set("distributed_topk", std::move(topk));
  out.Set("batch", std::move(batch));
  out.Set("shards", std::move(shards));
  return out;
}

std::string Router::Dispatch(const server::HttpRequest& request,
                             bool keep_alive, int* status_out,
                             algebra::OpMetrics* metrics_out,
                             bool* has_metrics_out) {
  (void)metrics_out;
  (void)has_metrics_out;
  const std::string& target = request.target;
  if (target == "/query") {
    if (request.method != "POST") {
      *status_out = 405;
      return server::RenderHttpResponse(
          405, kJsonType,
          "{\"error\":\"use POST for /query\",\"status\":405}",
          "Allow: POST\r\n", keep_alive);
    }
    std::string body = HandleQuery(request.body, status_out);
    return server::RenderHttpResponse(*status_out, kJsonType, body, {},
                                      keep_alive);
  }
  if (target == "/query_batch") {
    if (request.method != "POST") {
      *status_out = 405;
      return server::RenderHttpResponse(
          405, kJsonType,
          "{\"error\":\"use POST for /query_batch\",\"status\":405}",
          "Allow: POST\r\n", keep_alive);
    }
    std::string body = HandleQueryBatch(request.body, status_out);
    return server::RenderHttpResponse(*status_out, kJsonType, body, {},
                                      keep_alive);
  }
  if (target == "/healthz" || target == "/metrics" || target == "/version") {
    if (request.method != "GET") {
      *status_out = 405;
      return server::RenderHttpResponse(
          405, kJsonType,
          "{\"error\":\"use GET for this endpoint\",\"status\":405}",
          "Allow: GET\r\n", keep_alive);
    }
    json::Value body;
    if (target == "/healthz") {
      body = json::Value::Object();
      body.Set("status", "ok");
      body.Set("shards", static_cast<uint64_t>(shards_.size()));
      body.Set("healthy_shards", static_cast<uint64_t>(HealthyShards()));
      body.Set("documents", static_cast<uint64_t>(map_.total_documents));
    } else if (target == "/version") {
      body = json::Value::Object();
      body.Set("version", kVersion);
      body.Set("build", BuildInfo("xfrag_router"));
      body.Set("router_protocol_revision",
               static_cast<int64_t>(kRouterProtocolRevision));
    } else {
      body = http_.stats().ToJson();
      body.Set("in_flight", static_cast<int64_t>(InFlight()));
      body.Set("router", RouterMetricsJson());
    }
    *status_out = 200;
    return server::RenderHttpResponse(200, kJsonType, body.Dump(), {},
                                      keep_alive);
  }
  *status_out = 404;
  return server::RenderHttpResponse(
      404, kJsonType, "{\"error\":\"no such endpoint\",\"status\":404}", {},
      keep_alive);
}

}  // namespace xfrag::router
