#include "router/merge.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/strings.h"

namespace xfrag::router {

namespace {

/// Fetches a required field, with a shard-attributed error.
StatusOr<const json::Value*> Require(const ShardBody& shard,
                                     std::string_view key,
                                     json::Value::Kind kind) {
  const json::Value* value = shard.body.Find(key);
  if (value == nullptr || value->kind() != kind) {
    return Status::InvalidArgument(
        StrFormat("shard %zu response is missing \"%.*s\"", shard.shard_index,
                  static_cast<int>(key.size()), key.data()));
  }
  return value;
}

StatusOr<uint64_t> RequireCount(const ShardBody& shard, std::string_view key) {
  XFRAG_ASSIGN_OR_RETURN(const json::Value* value,
                         Require(shard, key, json::Value::Kind::kNumber));
  if (!value->is_integral() || value->AsInt() < 0) {
    return Status::InvalidArgument(
        StrFormat("shard %zu \"%.*s\" is not a non-negative integer",
                  shard.shard_index, static_cast<int>(key.size()), key.data()));
  }
  return static_cast<uint64_t>(value->AsInt());
}

/// Rewrites a shard-local answer to global document numbering.
Status GlobalizeAnswer(json::Value* answer, size_t doc_base,
                       size_t shard_index) {
  const json::Value* index = answer->Find("document_index");
  if (index == nullptr || !index->is_integral() || index->AsInt() < 0) {
    return Status::InvalidArgument(StrFormat(
        "shard %zu answer is missing \"document_index\"", shard_index));
  }
  answer->Set("document_index",
              static_cast<uint64_t>(index->AsInt()) +
                  static_cast<uint64_t>(doc_base));
  return Status::OK();
}

/// One shard's cursor into its ranked answers array during the k-way merge.
struct RankedCursor {
  const ShardBody* shard = nullptr;
  size_t next = 0;

  double score() const {
    return (*shard->body.Find("answers"))[next].Find("score")->AsDouble();
  }
  uint64_t global_doc() const {
    const json::Value& answer = (*shard->body.Find("answers"))[next];
    return static_cast<uint64_t>(answer.Find("document_index")->AsInt()) +
           static_cast<uint64_t>(shard->doc_base);
  }
};

}  // namespace

StatusOr<json::Value> MergeQueryBodies(std::vector<ShardBody> bodies,
                                       const MergePlan& plan,
                                       size_t total_documents,
                                       const std::vector<size_t>&
                                           missing_shards) {
  if (bodies.empty()) {
    return Status::InvalidArgument("cannot merge zero shard responses");
  }
  const bool ranked_mode = plan.rank || plan.top_k >= 0;

  // Validate every body up front; sums double as validation receipts.
  uint64_t documents_evaluated = 0;
  uint64_t documents_skipped = 0;
  uint64_t answer_count = 0;
  bool want_explain = false;
  for (const ShardBody& shard : bodies) {
    XFRAG_RETURN_NOT_OK(
        Require(shard, "query", json::Value::Kind::kString).status());
    XFRAG_RETURN_NOT_OK(
        Require(shard, "answers", json::Value::Kind::kArray).status());
    XFRAG_RETURN_NOT_OK(
        Require(shard, "metrics", json::Value::Kind::kObject).status());
    XFRAG_ASSIGN_OR_RETURN(uint64_t evaluated,
                           RequireCount(shard, "documents_evaluated"));
    XFRAG_ASSIGN_OR_RETURN(uint64_t skipped,
                           RequireCount(shard, "documents_skipped"));
    XFRAG_ASSIGN_OR_RETURN(uint64_t count,
                           RequireCount(shard, "answer_count"));
    documents_evaluated += evaluated;
    documents_skipped += skipped;
    answer_count += count;
    if (shard.body.Find("explain") != nullptr) want_explain = true;
    if (ranked_mode) {
      for (const json::Value& answer : shard.body.Find("answers")->items()) {
        const json::Value* score = answer.Find("score");
        if (score == nullptr || !score->is_number()) {
          return Status::InvalidArgument(StrFormat(
              "shard %zu ranked answer is missing \"score\"",
              shard.shard_index));
        }
      }
    }
  }
  if (ranked_mode && plan.top_k >= 0) {
    answer_count = std::min(answer_count, static_cast<uint64_t>(plan.top_k));
  }
  const uint64_t emit_limit =
      plan.max_answers >= 0
          ? std::min(answer_count, static_cast<uint64_t>(plan.max_answers))
          : answer_count;
  const bool truncated = plan.max_answers >= 0 &&
                         answer_count > static_cast<uint64_t>(plan.max_answers);

  json::Value answers = json::Value::Array();
  if (ranked_mode) {
    // K-way merge on (score desc, global document asc). Ties on both keys
    // can only occur inside one body's already-ordered list (bodies cover
    // disjoint document ranges — a shard's probe and resume bodies share a
    // doc_base but split its documents), so the comparator never has to
    // reconstruct canonical fragment order.
    std::vector<RankedCursor> cursors;
    for (const ShardBody& shard : bodies) {
      cursors.push_back(RankedCursor{&shard, 0});
    }
    while (answers.size() < emit_limit) {
      RankedCursor* best = nullptr;
      for (RankedCursor& cursor : cursors) {
        if (cursor.next >= cursor.shard->body.Find("answers")->size()) {
          continue;
        }
        if (best == nullptr || cursor.score() > best->score() ||
            (cursor.score() == best->score() &&
             cursor.global_doc() < best->global_doc())) {
          best = &cursor;
        }
      }
      if (best == nullptr) break;  // shard lists exhausted early
      json::Value answer =
          (*best->shard->body.Find("answers"))[best->next];
      XFRAG_RETURN_NOT_OK(GlobalizeAnswer(&answer, best->shard->doc_base,
                                          best->shard->shard_index));
      answers.Append(std::move(answer));
      ++best->next;
    }
  } else {
    // Full mode: shard ranges are contiguous and bodies arrive sorted by
    // doc_base, so concatenation is global document order.
    for (const ShardBody& shard : bodies) {
      for (const json::Value& item : shard.body.Find("answers")->items()) {
        if (answers.size() >= emit_limit) break;
        json::Value answer = item;
        XFRAG_RETURN_NOT_OK(
            GlobalizeAnswer(&answer, shard.doc_base, shard.shard_index));
        answers.Append(std::move(answer));
      }
    }
  }

  // Field-wise metric sums, preserving the single-node key order.
  json::Value metrics = json::Value::Object();
  for (const auto& [key, value] : bodies.front().body.Find("metrics")
                                      ->members()) {
    (void)value;
    uint64_t sum = 0;
    for (const ShardBody& shard : bodies) {
      const json::Value* field = shard.body.Find("metrics")->Find(key);
      if (field != nullptr && field->is_integral() && field->AsInt() >= 0) {
        sum += static_cast<uint64_t>(field->AsInt());
      }
    }
    metrics.Set(key, sum);
  }

  // Reassemble in the exact single-node field order (service.cc).
  json::Value body = json::Value::Object();
  body.Set("query", bodies.front().body.Find("query")->AsString());
  if (ranked_mode) {
    body.Set("ranked", true);
    if (plan.top_k >= 0) body.Set("top_k", plan.top_k);
  }
  body.Set("documents", static_cast<uint64_t>(total_documents));
  body.Set("documents_evaluated", documents_evaluated);
  body.Set("documents_skipped", documents_skipped);
  body.Set("answer_count", answer_count);
  if (truncated) body.Set("truncated", true);
  body.Set("answers", std::move(answers));
  body.Set("metrics", std::move(metrics));
  if (want_explain) {
    json::Value explains = json::Value::Array();
    for (const ShardBody& shard : bodies) {
      const json::Value* explain = shard.body.Find("explain");
      if (explain == nullptr || !explain->is_array()) continue;
      for (const json::Value& entry : explain->items()) {
        explains.Append(entry);
      }
    }
    body.Set("explain", std::move(explains));
  }
  if (!missing_shards.empty()) {
    json::Value missing = json::Value::Array();
    for (size_t index : missing_shards) {
      missing.Append(static_cast<uint64_t>(index));
    }
    json::Value partial = json::Value::Object();
    partial.Set("missing_shards", std::move(missing));
    body.Set("partial", std::move(partial));
  }
  return body;
}

}  // namespace xfrag::router
