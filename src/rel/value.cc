#include "rel/value.h"

namespace xfrag::rel {

uint64_t Value::Hash() const {
  uint64_t h;
  if (type() == ValueType::kInt64) {
    h = static_cast<uint64_t>(AsInt64()) * 0x9e3779b97f4a7c15ULL;
  } else {
    h = 0xcbf29ce484222325ULL;
    for (char c : AsString()) {
      h ^= static_cast<unsigned char>(c);
      h *= 0x100000001b3ULL;
    }
  }
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return h;
}

std::string Value::ToString() const {
  if (type() == ValueType::kInt64) return std::to_string(AsInt64());
  return "'" + AsString() + "'";
}

}  // namespace xfrag::rel
