#include "rel/engine.h"

#include <algorithm>

#include "common/strings.h"

namespace xfrag::rel {

using algebra::Fragment;
using algebra::FragmentSet;
using doc::NodeId;

StatusOr<RelationalEngine> RelationalEngine::Create(
    const doc::Document& document, const text::InvertedIndex& index) {
  auto shredded = Shred(document, index);
  if (!shredded.ok()) return shredded.status();
  return RelationalEngine(std::move(shredded).value());
}

StatusOr<RelationalEngine::NodeRow> RelationalEngine::FetchNode(int64_t id) {
  ++metrics_.node_fetches;
  OperatorPtr scan = IndexScan(*shredded_.node, "id", Value(id));
  auto rows = Collect(scan.get());
  if (!rows.ok()) return rows.status();
  if (rows->size() != 1) {
    return Status::Internal(
        StrFormat("node table has %zu rows for id %lld", rows->size(),
                  static_cast<long long>(id)));
  }
  const Row& row = (*rows)[0];
  return NodeRow{row[1].AsInt64(), row[2].AsInt64()};
}

StatusOr<std::vector<NodeId>> RelationalEngine::FetchPostings(
    const std::string& term) {
  ++metrics_.kw_probes;
  OperatorPtr scan =
      Project(IndexScan(*shredded_.kw, "term", Value(term)), {"node"});
  auto rows = Collect(scan.get());
  if (!rows.ok()) return rows.status();
  std::vector<NodeId> out;
  out.reserve(rows->size());
  for (const Row& row : *rows) {
    out.push_back(static_cast<NodeId>(row[0].AsInt64()));
  }
  std::sort(out.begin(), out.end());
  return out;
}

StatusOr<Fragment> RelationalEngine::JoinRel(const Fragment& f1,
                                             const Fragment& f2) {
  ++metrics_.fragment_joins;
  if (f1.ContainsFragment(f2)) return f1;
  if (f2.ContainsFragment(f1)) return f2;
  // Walk the two roots up to their LCA, fetching (parent, depth) rows
  // through the relational engine only.
  int64_t a = f1.root();
  int64_t b = f2.root();
  std::vector<NodeId> path;
  auto a_row = FetchNode(a);
  if (!a_row.ok()) return a_row.status();
  auto b_row = FetchNode(b);
  if (!b_row.ok()) return b_row.status();
  int64_t depth_a = a_row->depth;
  int64_t depth_b = b_row->depth;
  int64_t parent_a = a_row->parent;
  int64_t parent_b = b_row->parent;
  path.push_back(static_cast<NodeId>(a));
  path.push_back(static_cast<NodeId>(b));
  while (depth_a > depth_b) {
    a = parent_a;
    path.push_back(static_cast<NodeId>(a));
    auto row = FetchNode(a);
    if (!row.ok()) return row.status();
    parent_a = row->parent;
    --depth_a;
  }
  while (depth_b > depth_a) {
    b = parent_b;
    path.push_back(static_cast<NodeId>(b));
    auto row = FetchNode(b);
    if (!row.ok()) return row.status();
    parent_b = row->parent;
    --depth_b;
  }
  while (a != b) {
    a = parent_a;
    b = parent_b;
    path.push_back(static_cast<NodeId>(a));
    path.push_back(static_cast<NodeId>(b));
    auto row_a = FetchNode(a);
    if (!row_a.ok()) return row_a.status();
    auto row_b = FetchNode(b);
    if (!row_b.ok()) return row_b.status();
    parent_a = row_a->parent;
    parent_b = row_b->parent;
  }
  std::vector<NodeId> nodes = f1.nodes();
  nodes.insert(nodes.end(), f2.nodes().begin(), f2.nodes().end());
  nodes.insert(nodes.end(), path.begin(), path.end());
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  return Fragment::FromSortedUnchecked(std::move(nodes));
}

StatusOr<bool> RelationalEngine::MatchesRel(const Fragment& f,
                                            const RelFilter& filter) {
  if (filter.size_at_most && f.size() > *filter.size_at_most) return false;
  if (filter.span_at_most &&
      f.nodes().back() - f.nodes().front() > *filter.span_at_most) {
    return false;
  }
  if (filter.height_at_most) {
    auto root_row = FetchNode(f.root());
    if (!root_row.ok()) return root_row.status();
    int64_t max_depth = root_row->depth;
    for (NodeId n : f.nodes()) {
      auto row = FetchNode(n);
      if (!row.ok()) return row.status();
      max_depth = std::max(max_depth, row->depth);
    }
    if (max_depth - root_row->depth >
        static_cast<int64_t>(*filter.height_at_most)) {
      return false;
    }
  }
  return true;
}

StatusOr<FragmentSet> RelationalEngine::ReduceRel(const FragmentSet& set) {
  const size_t n = set.size();
  std::vector<bool> eliminated(n, false);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      auto joined = JoinRel(set[i], set[j]);
      if (!joined.ok()) return joined.status();
      for (size_t t = 0; t < n; ++t) {
        if (t == i || t == j || eliminated[t]) continue;
        if (joined->ContainsFragment(set[t])) eliminated[t] = true;
      }
    }
  }
  FragmentSet out;
  for (size_t t = 0; t < n; ++t) {
    if (!eliminated[t]) out.Insert(set[t]);
  }
  return out;
}

StatusOr<FragmentSet> RelationalEngine::FixedPointRel(
    const FragmentSet& base, const RelFilter& filter,
    const RelEvalOptions& options) {
  FragmentSet current = base;
  if (options.push_down) {
    FragmentSet selected;
    for (const Fragment& f : current) {
      auto ok = MatchesRel(f, filter);
      if (!ok.ok()) return ok.status();
      if (*ok) selected.Insert(f);
    }
    current = std::move(selected);
  }
  FragmentSet seed = current;

  // Theorem-1 variant: k − 1 unchecked pairwise self-joins over the
  // unfiltered base (sound only without per-iteration filtering).
  if (!options.push_down && options.use_reduced_fixed_point) {
    if (seed.size() <= 1) return seed;
    auto reduced = ReduceRel(seed);
    if (!reduced.ok()) return reduced.status();
    size_t k = std::max<size_t>(reduced->size(), 1);
    for (size_t i = 1; i < k; ++i) {
      FragmentSet next;
      for (const Fragment& f1 : current) {
        for (const Fragment& f2 : seed) {
          auto joined = JoinRel(f1, f2);
          if (!joined.ok()) return joined.status();
          next.Insert(std::move(*joined));
        }
      }
      current = std::move(next);
    }
    return current;
  }

  while (true) {
    FragmentSet next = current;
    for (const Fragment& f1 : current) {
      for (const Fragment& f2 : seed) {
        auto joined = JoinRel(f1, f2);
        if (!joined.ok()) return joined.status();
        if (options.push_down) {
          auto ok = MatchesRel(*joined, filter);
          if (!ok.ok()) return ok.status();
          if (!*ok) continue;
        }
        next.Insert(std::move(*joined));
      }
    }
    if (next.size() == current.size()) return next;
    current = std::move(next);
  }
}

StatusOr<FragmentSet> RelationalEngine::Evaluate(
    const std::vector<std::string>& terms, const RelFilter& filter,
    const RelEvalOptions& options) {
  metrics_ = RelMetrics();
  if (terms.empty()) {
    return Status::InvalidArgument("query must contain at least one term");
  }
  // Base selections via kw-index probes.
  std::vector<FragmentSet> bases;
  for (const std::string& term : terms) {
    auto postings = FetchPostings(AsciiToLower(term));
    if (!postings.ok()) return postings.status();
    FragmentSet base;
    for (NodeId n : *postings) base.Insert(Fragment::Single(n));
    if (base.empty()) return FragmentSet();  // Conjunctive semantics.
    bases.push_back(std::move(base));
  }

  // Fixed points, then the pairwise-join chain (Theorem 2 generalized).
  std::vector<FragmentSet> fixed_points;
  for (const FragmentSet& base : bases) {
    auto fp = FixedPointRel(base, filter, options);
    if (!fp.ok()) return fp.status();
    fixed_points.push_back(std::move(*fp));
  }
  FragmentSet acc = fixed_points[0];
  for (size_t i = 1; i < fixed_points.size(); ++i) {
    FragmentSet joined;
    for (const Fragment& f1 : acc) {
      for (const Fragment& f2 : fixed_points[i]) {
        auto j = JoinRel(f1, f2);
        if (!j.ok()) return j.status();
        if (options.push_down) {
          auto ok = MatchesRel(*j, filter);
          if (!ok.ok()) return ok.status();
          if (!*ok) continue;
        }
        joined.Insert(std::move(*j));
      }
    }
    acc = std::move(joined);
  }

  // Final selection (no-op when pushed down, but keeps the two paths
  // equivalent even for future non-anti-monotonic members of RelFilter).
  FragmentSet answers;
  for (const Fragment& f : acc) {
    auto ok = MatchesRel(f, filter);
    if (!ok.ok()) return ok.status();
    if (*ok) answers.Insert(f);
  }
  return answers;
}

}  // namespace xfrag::rel
