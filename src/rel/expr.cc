#include "rel/expr.h"

#include "common/logging.h"

namespace xfrag::rel {

namespace expr {

namespace {

std::string_view OpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

bool ApplyOp(const Value& left, CompareOp op, const Value& right) {
  switch (op) {
    case CompareOp::kEq:
      return left == right;
    case CompareOp::kNe:
      return left != right;
    case CompareOp::kLt:
      return left < right;
    case CompareOp::kLe:
      return left <= right;
    case CompareOp::kGt:
      return left > right;
    case CompareOp::kGe:
      return left >= right;
  }
  return false;
}

class CompareExpr final : public Expr {
 public:
  CompareExpr(std::string column, CompareOp op, Value literal)
      : column_(std::move(column)), op_(op), literal_(std::move(literal)) {}

  Status Bind(const Schema& schema) const override {
    auto index = schema.IndexOf(column_);
    if (!index.ok()) return index.status();
    column_index_ = index.value();
    return Status::OK();
  }

  bool EvaluateBool(const Row& row) const override {
    XFRAG_DCHECK(column_index_ != kUnbound);
    return ApplyOp(row[column_index_], op_, literal_);
  }

  std::string ToString() const override {
    return column_ + std::string(OpName(op_)) + literal_.ToString();
  }

 private:
  static constexpr size_t kUnbound = static_cast<size_t>(-1);
  std::string column_;
  CompareOp op_;
  Value literal_;
  mutable size_t column_index_ = kUnbound;
};

class CompareColumnsExpr final : public Expr {
 public:
  CompareColumnsExpr(std::string left, CompareOp op, std::string right)
      : left_(std::move(left)), op_(op), right_(std::move(right)) {}

  Status Bind(const Schema& schema) const override {
    auto l = schema.IndexOf(left_);
    if (!l.ok()) return l.status();
    auto r = schema.IndexOf(right_);
    if (!r.ok()) return r.status();
    left_index_ = l.value();
    right_index_ = r.value();
    return Status::OK();
  }

  bool EvaluateBool(const Row& row) const override {
    return ApplyOp(row[left_index_], op_, row[right_index_]);
  }

  std::string ToString() const override {
    return left_ + std::string(OpName(op_)) + right_;
  }

 private:
  std::string left_;
  CompareOp op_;
  std::string right_;
  mutable size_t left_index_ = 0;
  mutable size_t right_index_ = 0;
};

class AndExpr final : public Expr {
 public:
  AndExpr(ExprPtr left, ExprPtr right)
      : left_(std::move(left)), right_(std::move(right)) {}
  Status Bind(const Schema& schema) const override {
    XFRAG_RETURN_NOT_OK(left_->Bind(schema));
    return right_->Bind(schema);
  }
  bool EvaluateBool(const Row& row) const override {
    return left_->EvaluateBool(row) && right_->EvaluateBool(row);
  }
  std::string ToString() const override {
    return "(" + left_->ToString() + " AND " + right_->ToString() + ")";
  }

 private:
  ExprPtr left_;
  ExprPtr right_;
};

class OrExpr final : public Expr {
 public:
  OrExpr(ExprPtr left, ExprPtr right)
      : left_(std::move(left)), right_(std::move(right)) {}
  Status Bind(const Schema& schema) const override {
    XFRAG_RETURN_NOT_OK(left_->Bind(schema));
    return right_->Bind(schema);
  }
  bool EvaluateBool(const Row& row) const override {
    return left_->EvaluateBool(row) || right_->EvaluateBool(row);
  }
  std::string ToString() const override {
    return "(" + left_->ToString() + " OR " + right_->ToString() + ")";
  }

 private:
  ExprPtr left_;
  ExprPtr right_;
};

class NotExpr final : public Expr {
 public:
  explicit NotExpr(ExprPtr inner) : inner_(std::move(inner)) {}
  Status Bind(const Schema& schema) const override {
    return inner_->Bind(schema);
  }
  bool EvaluateBool(const Row& row) const override {
    return !inner_->EvaluateBool(row);
  }
  std::string ToString() const override {
    return "NOT " + inner_->ToString();
  }

 private:
  ExprPtr inner_;
};

class TrueExpr final : public Expr {
 public:
  Status Bind(const Schema&) const override { return Status::OK(); }
  bool EvaluateBool(const Row&) const override { return true; }
  std::string ToString() const override { return "TRUE"; }
};

}  // namespace

ExprPtr Compare(std::string column, CompareOp op, Value literal) {
  return std::make_shared<CompareExpr>(std::move(column), op,
                                       std::move(literal));
}

ExprPtr CompareColumns(std::string left, CompareOp op, std::string right) {
  return std::make_shared<CompareColumnsExpr>(std::move(left), op,
                                              std::move(right));
}

ExprPtr And(ExprPtr left, ExprPtr right) {
  return std::make_shared<AndExpr>(std::move(left), std::move(right));
}

ExprPtr Or(ExprPtr left, ExprPtr right) {
  return std::make_shared<OrExpr>(std::move(left), std::move(right));
}

ExprPtr Not(ExprPtr inner) { return std::make_shared<NotExpr>(std::move(inner)); }

ExprPtr True() {
  static const ExprPtr instance = std::make_shared<TrueExpr>();
  return instance;
}

}  // namespace expr

}  // namespace xfrag::rel
