// Shredding of a doc::Document into relations, following the mapping the
// paper's companion work [13] describes for a relational implementation:
//
//   node(id INT64, parent INT64, depth INT64, subtree INT64, tag STRING)
//   kw(term STRING, node INT64)
//
// `parent` is -1 for the root; `subtree` is the pre-order subtree size, so
// descendant tests become range predicates (id <= x < id + subtree).

#ifndef XFRAG_REL_SHREDDER_H_
#define XFRAG_REL_SHREDDER_H_

#include <memory>

#include "doc/document.h"
#include "rel/table.h"
#include "text/inverted_index.h"

namespace xfrag::rel {

/// The shredded form of one document.
struct ShreddedDocument {
  std::unique_ptr<Table> node;
  std::unique_ptr<Table> kw;
};

/// \brief Shreds `document` (+ its keyword index) into relations, with hash
/// indexes on node.id and kw.term.
StatusOr<ShreddedDocument> Shred(const doc::Document& document,
                                 const text::InvertedIndex& index);

}  // namespace xfrag::rel

#endif  // XFRAG_REL_SHREDDER_H_
