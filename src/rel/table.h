// Schema and row-store table with optional hash indexes.

#ifndef XFRAG_REL_TABLE_H_
#define XFRAG_REL_TABLE_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "rel/value.h"

namespace xfrag::rel {

/// One column definition.
struct Column {
  std::string name;
  ValueType type;
};

/// \brief An ordered list of named, typed columns.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  size_t column_count() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of column `name`, or an error when absent.
  StatusOr<size_t> IndexOf(std::string_view name) const;

  /// Concatenation of two schemas (for join outputs); duplicate names get a
  /// "right." prefix on the right side.
  static Schema Concat(const Schema& left, const Schema& right);

  /// "(id INT64, tag STRING)".
  std::string ToString() const;

 private:
  std::vector<Column> columns_;
};

/// \brief A row-store table with optional per-column hash indexes.
class Table {
 public:
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t row_count() const { return rows_.size(); }
  const Row& row(size_t i) const { return rows_[i]; }
  const std::vector<Row>& rows() const { return rows_; }

  /// \brief Appends a row; validates arity and column types.
  Status Insert(Row row);

  /// \brief Builds (or rebuilds) a hash index on column `column_name`.
  Status CreateIndex(std::string_view column_name);

  /// True iff an index exists on `column_name`.
  bool HasIndex(std::string_view column_name) const;

  /// \brief Row indexes whose `column_name` equals `key` (hash probe with
  /// equality verification). Requires an index on that column.
  std::vector<size_t> IndexLookup(std::string_view column_name,
                                  const Value& key) const;

 private:
  struct HashIndex {
    size_t column;
    std::unordered_map<uint64_t, std::vector<size_t>> buckets;
  };

  const HashIndex* FindIndex(std::string_view column_name) const;

  std::string name_;
  Schema schema_;
  std::vector<Row> rows_;
  std::vector<HashIndex> indexes_;
  std::vector<size_t> empty_;
};

}  // namespace xfrag::rel

#endif  // XFRAG_REL_TABLE_H_
