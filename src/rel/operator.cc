#include "rel/operator.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"

namespace xfrag::rel {

namespace {

class SeqScanOp final : public Operator {
 public:
  explicit SeqScanOp(const Table& table) : table_(table) {}
  const Schema& schema() const override { return table_.schema(); }
  Status Open() override {
    cursor_ = 0;
    return Status::OK();
  }
  std::optional<Row> Next() override {
    if (cursor_ >= table_.row_count()) return std::nullopt;
    return table_.row(cursor_++);
  }
  void Close() override {}

 private:
  const Table& table_;
  size_t cursor_ = 0;
};

class IndexScanOp final : public Operator {
 public:
  IndexScanOp(const Table& table, std::string column, Value key)
      : table_(table), column_(std::move(column)), key_(std::move(key)) {}
  const Schema& schema() const override { return table_.schema(); }
  Status Open() override {
    if (!table_.HasIndex(column_)) {
      return Status::InvalidArgument("no index on column '" + column_ +
                                     "' of table '" + table_.name() + "'");
    }
    matches_ = table_.IndexLookup(column_, key_);
    cursor_ = 0;
    return Status::OK();
  }
  std::optional<Row> Next() override {
    if (cursor_ >= matches_.size()) return std::nullopt;
    return table_.row(matches_[cursor_++]);
  }
  void Close() override { matches_.clear(); }

 private:
  const Table& table_;
  std::string column_;
  Value key_;
  std::vector<size_t> matches_;
  size_t cursor_ = 0;
};

class FilterOp final : public Operator {
 public:
  FilterOp(OperatorPtr child, ExprPtr predicate)
      : child_(std::move(child)), predicate_(std::move(predicate)) {}
  const Schema& schema() const override { return child_->schema(); }
  Status Open() override {
    XFRAG_RETURN_NOT_OK(child_->Open());
    return predicate_->Bind(child_->schema());
  }
  std::optional<Row> Next() override {
    while (true) {
      std::optional<Row> row = child_->Next();
      if (!row.has_value()) return std::nullopt;
      if (predicate_->EvaluateBool(*row)) return row;
    }
  }
  void Close() override { child_->Close(); }

 private:
  OperatorPtr child_;
  ExprPtr predicate_;
};

class ProjectOp final : public Operator {
 public:
  ProjectOp(OperatorPtr child, std::vector<std::string> columns)
      : child_(std::move(child)), columns_(std::move(columns)) {}
  const Schema& schema() const override { return output_schema_; }
  Status Open() override {
    XFRAG_RETURN_NOT_OK(child_->Open());
    indexes_.clear();
    std::vector<Column> out_columns;
    for (const std::string& name : columns_) {
      auto index = child_->schema().IndexOf(name);
      if (!index.ok()) return index.status();
      indexes_.push_back(index.value());
      out_columns.push_back(child_->schema().column(index.value()));
    }
    output_schema_ = Schema(std::move(out_columns));
    return Status::OK();
  }
  std::optional<Row> Next() override {
    std::optional<Row> row = child_->Next();
    if (!row.has_value()) return std::nullopt;
    Row out;
    out.reserve(indexes_.size());
    for (size_t index : indexes_) out.push_back((*row)[index]);
    return out;
  }
  void Close() override { child_->Close(); }

 private:
  OperatorPtr child_;
  std::vector<std::string> columns_;
  std::vector<size_t> indexes_;
  Schema output_schema_;
};

class HashJoinOp final : public Operator {
 public:
  HashJoinOp(OperatorPtr left, OperatorPtr right, std::string left_key,
             std::string right_key)
      : left_(std::move(left)),
        right_(std::move(right)),
        left_key_(std::move(left_key)),
        right_key_(std::move(right_key)) {}

  const Schema& schema() const override { return output_schema_; }

  Status Open() override {
    XFRAG_RETURN_NOT_OK(left_->Open());
    XFRAG_RETURN_NOT_OK(right_->Open());
    output_schema_ = Schema::Concat(left_->schema(), right_->schema());
    auto left_index = left_->schema().IndexOf(left_key_);
    if (!left_index.ok()) return left_index.status();
    left_key_index_ = left_index.value();
    auto right_index = right_->schema().IndexOf(right_key_);
    if (!right_index.ok()) return right_index.status();
    right_key_index_ = right_index.value();

    // Build side: right input.
    build_.clear();
    while (true) {
      std::optional<Row> row = right_->Next();
      if (!row.has_value()) break;
      build_[(*row)[right_key_index_].Hash()].push_back(std::move(*row));
    }
    pending_.clear();
    pending_cursor_ = 0;
    return Status::OK();
  }

  std::optional<Row> Next() override {
    while (true) {
      if (pending_cursor_ < pending_.size()) return pending_[pending_cursor_++];
      std::optional<Row> left_row = left_->Next();
      if (!left_row.has_value()) return std::nullopt;
      pending_.clear();
      pending_cursor_ = 0;
      auto it = build_.find((*left_row)[left_key_index_].Hash());
      if (it == build_.end()) continue;
      for (const Row& right_row : it->second) {
        if (right_row[right_key_index_] != (*left_row)[left_key_index_]) {
          continue;  // Hash collision.
        }
        Row joined = *left_row;
        joined.insert(joined.end(), right_row.begin(), right_row.end());
        pending_.push_back(std::move(joined));
      }
    }
  }

  void Close() override {
    left_->Close();
    right_->Close();
    build_.clear();
    pending_.clear();
  }

 private:
  OperatorPtr left_;
  OperatorPtr right_;
  std::string left_key_;
  std::string right_key_;
  size_t left_key_index_ = 0;
  size_t right_key_index_ = 0;
  Schema output_schema_;
  std::unordered_map<uint64_t, std::vector<Row>> build_;
  std::vector<Row> pending_;
  size_t pending_cursor_ = 0;
};

class SortOp final : public Operator {
 public:
  SortOp(OperatorPtr child, std::vector<std::string> columns)
      : child_(std::move(child)), columns_(std::move(columns)) {}
  const Schema& schema() const override { return child_->schema(); }
  Status Open() override {
    XFRAG_RETURN_NOT_OK(child_->Open());
    std::vector<size_t> key_indexes;
    for (const std::string& name : columns_) {
      auto index = child_->schema().IndexOf(name);
      if (!index.ok()) return index.status();
      key_indexes.push_back(index.value());
    }
    rows_.clear();
    while (true) {
      std::optional<Row> row = child_->Next();
      if (!row.has_value()) break;
      rows_.push_back(std::move(*row));
    }
    std::sort(rows_.begin(), rows_.end(),
              [&key_indexes](const Row& a, const Row& b) {
                for (size_t k : key_indexes) {
                  if (a[k] < b[k]) return true;
                  if (b[k] < a[k]) return false;
                }
                return false;
              });
    cursor_ = 0;
    return Status::OK();
  }
  std::optional<Row> Next() override {
    if (cursor_ >= rows_.size()) return std::nullopt;
    return rows_[cursor_++];
  }
  void Close() override {
    child_->Close();
    rows_.clear();
  }

 private:
  OperatorPtr child_;
  std::vector<std::string> columns_;
  std::vector<Row> rows_;
  size_t cursor_ = 0;
};

}  // namespace

OperatorPtr SeqScan(const Table& table) {
  return std::make_unique<SeqScanOp>(table);
}

OperatorPtr IndexScan(const Table& table, std::string column, Value key) {
  return std::make_unique<IndexScanOp>(table, std::move(column),
                                       std::move(key));
}

OperatorPtr Filter(OperatorPtr child, ExprPtr predicate) {
  return std::make_unique<FilterOp>(std::move(child), std::move(predicate));
}

OperatorPtr Project(OperatorPtr child, std::vector<std::string> columns) {
  return std::make_unique<ProjectOp>(std::move(child), std::move(columns));
}

OperatorPtr HashJoin(OperatorPtr left, OperatorPtr right, std::string left_key,
                     std::string right_key) {
  return std::make_unique<HashJoinOp>(std::move(left), std::move(right),
                                      std::move(left_key),
                                      std::move(right_key));
}

OperatorPtr Sort(OperatorPtr child, std::vector<std::string> columns) {
  return std::make_unique<SortOp>(std::move(child), std::move(columns));
}

StatusOr<std::vector<Row>> Collect(Operator* op) {
  XFRAG_RETURN_NOT_OK(op->Open());
  std::vector<Row> out;
  while (true) {
    std::optional<Row> row = op->Next();
    if (!row.has_value()) break;
    out.push_back(std::move(*row));
  }
  op->Close();
  return out;
}

}  // namespace xfrag::rel
