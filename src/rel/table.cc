#include "rel/table.h"

#include "common/logging.h"
#include "common/strings.h"

namespace xfrag::rel {

StatusOr<size_t> Schema::IndexOf(std::string_view name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return Status::NotFound("no column named '" + std::string(name) + "'");
}

Schema Schema::Concat(const Schema& left, const Schema& right) {
  std::vector<Column> columns = left.columns();
  for (const Column& column : right.columns()) {
    bool duplicate = false;
    for (const Column& existing : left.columns()) {
      if (existing.name == column.name) {
        duplicate = true;
        break;
      }
    }
    columns.push_back(
        {duplicate ? "right." + column.name : column.name, column.type});
  }
  return Schema(std::move(columns));
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += columns_[i].type == ValueType::kInt64 ? " INT64" : " STRING";
  }
  out += ")";
  return out;
}

Status Table::Insert(Row row) {
  if (row.size() != schema_.column_count()) {
    return Status::InvalidArgument(
        StrFormat("row arity %zu does not match schema arity %zu", row.size(),
                  schema_.column_count()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].type() != schema_.column(i).type) {
      return Status::InvalidArgument(
          "type mismatch in column '" + schema_.column(i).name + "'");
    }
  }
  for (HashIndex& index : indexes_) {
    index.buckets[row[index.column].Hash()].push_back(rows_.size());
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

Status Table::CreateIndex(std::string_view column_name) {
  auto column = schema_.IndexOf(column_name);
  if (!column.ok()) return column.status();
  // Rebuild if already present.
  for (HashIndex& index : indexes_) {
    if (index.column == column.value()) {
      index.buckets.clear();
      for (size_t r = 0; r < rows_.size(); ++r) {
        index.buckets[rows_[r][index.column].Hash()].push_back(r);
      }
      return Status::OK();
    }
  }
  HashIndex index;
  index.column = column.value();
  for (size_t r = 0; r < rows_.size(); ++r) {
    index.buckets[rows_[r][index.column].Hash()].push_back(r);
  }
  indexes_.push_back(std::move(index));
  return Status::OK();
}

const Table::HashIndex* Table::FindIndex(std::string_view column_name) const {
  auto column = schema_.IndexOf(column_name);
  if (!column.ok()) return nullptr;
  for (const HashIndex& index : indexes_) {
    if (index.column == column.value()) return &index;
  }
  return nullptr;
}

bool Table::HasIndex(std::string_view column_name) const {
  return FindIndex(column_name) != nullptr;
}

std::vector<size_t> Table::IndexLookup(std::string_view column_name,
                                       const Value& key) const {
  const HashIndex* index = FindIndex(column_name);
  XFRAG_CHECK(index != nullptr);
  auto it = index->buckets.find(key.Hash());
  if (it == index->buckets.end()) return {};
  std::vector<size_t> out;
  for (size_t r : it->second) {
    if (rows_[r][index->column] == key) out.push_back(r);
  }
  return out;
}

}  // namespace xfrag::rel
