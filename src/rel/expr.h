// Scalar expressions over rows: column references, literals, comparisons,
// and boolean connectives. Used by the Filter and HashJoin operators.

#ifndef XFRAG_REL_EXPR_H_
#define XFRAG_REL_EXPR_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "rel/table.h"

namespace xfrag::rel {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// \brief An immutable scalar expression.
///
/// Expressions are built unbound (column references by name) and bound to a
/// schema once before evaluation; binding resolves names to positions so the
/// per-row evaluation path does no string work.
class Expr {
 public:
  virtual ~Expr() = default;

  /// Resolves column references against `schema`. Must be called (on the
  /// root) before Evaluate; returns an error for unknown columns.
  virtual Status Bind(const Schema& schema) const = 0;

  /// Evaluates to a boolean (predicates). Requires a successful Bind.
  virtual bool EvaluateBool(const Row& row) const = 0;

  /// Display form.
  virtual std::string ToString() const = 0;
};

/// Comparison operators.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

namespace expr {

/// column <op> literal.
ExprPtr Compare(std::string column, CompareOp op, Value literal);
/// column1 <op> column2.
ExprPtr CompareColumns(std::string left, CompareOp op, std::string right);
/// Boolean connectives.
ExprPtr And(ExprPtr left, ExprPtr right);
ExprPtr Or(ExprPtr left, ExprPtr right);
ExprPtr Not(ExprPtr inner);
/// Constant truth.
ExprPtr True();

}  // namespace expr

}  // namespace xfrag::rel

#endif  // XFRAG_REL_EXPR_H_
