// Volcano-style physical operators over the row-store tables: sequential
// scan, index scan, filter, projection, hash join, and sort.

#ifndef XFRAG_REL_OPERATOR_H_
#define XFRAG_REL_OPERATOR_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "rel/expr.h"
#include "rel/table.h"

namespace xfrag::rel {

/// \brief Iterator-model operator: Open / Next / Close.
class Operator {
 public:
  virtual ~Operator() = default;

  /// Output schema; valid after construction.
  virtual const Schema& schema() const = 0;

  /// Prepares the operator (binds expressions, builds hash tables).
  virtual Status Open() = 0;

  /// Returns the next row, or nullopt when exhausted.
  virtual std::optional<Row> Next() = 0;

  /// Releases resources; the operator may be re-Opened afterwards.
  virtual void Close() = 0;
};

using OperatorPtr = std::unique_ptr<Operator>;

/// Full scan of `table` (which must outlive the operator).
OperatorPtr SeqScan(const Table& table);

/// Index-assisted scan: rows of `table` whose `column` equals `key`.
OperatorPtr IndexScan(const Table& table, std::string column, Value key);

/// Rows of `child` satisfying `predicate`.
OperatorPtr Filter(OperatorPtr child, ExprPtr predicate);

/// Column subset/reorder of `child` by name.
OperatorPtr Project(OperatorPtr child, std::vector<std::string> columns);

/// Hash equi-join of the children on left.`left_key` = right.`right_key`.
/// The right input is built into the hash table (should be the smaller one).
OperatorPtr HashJoin(OperatorPtr left, OperatorPtr right, std::string left_key,
                     std::string right_key);

/// Sorts `child` ascending by the named columns.
OperatorPtr Sort(OperatorPtr child, std::vector<std::string> columns);

/// \brief Drains `op` into a vector (Open → Next* → Close).
StatusOr<std::vector<Row>> Collect(Operator* op);

}  // namespace xfrag::rel

#endif  // XFRAG_REL_OPERATOR_H_
