#include "rel/shredder.h"

#include <algorithm>

namespace xfrag::rel {

StatusOr<ShreddedDocument> Shred(const doc::Document& document,
                                 const text::InvertedIndex& index) {
  ShreddedDocument out;
  out.node = std::make_unique<Table>(
      "node", Schema({{"id", ValueType::kInt64},
                      {"parent", ValueType::kInt64},
                      {"depth", ValueType::kInt64},
                      {"subtree", ValueType::kInt64},
                      {"tag", ValueType::kString}}));
  for (doc::NodeId n = 0; n < document.size(); ++n) {
    int64_t parent = document.parent(n) == doc::kNoNode
                         ? -1
                         : static_cast<int64_t>(document.parent(n));
    XFRAG_RETURN_NOT_OK(out.node->Insert(
        {Value(static_cast<int64_t>(n)), Value(parent),
         Value(static_cast<int64_t>(document.depth(n))),
         Value(static_cast<int64_t>(document.subtree_size(n))),
         Value(std::string(document.tag(n)))}));
  }
  XFRAG_RETURN_NOT_OK(out.node->CreateIndex("id"));

  out.kw = std::make_unique<Table>(
      "kw",
      Schema({{"term", ValueType::kString}, {"node", ValueType::kInt64}}));
  std::vector<std::string> terms = index.Terms();
  std::sort(terms.begin(), terms.end());  // Deterministic row order.
  for (const std::string& term : terms) {
    for (doc::NodeId n : index.Lookup(term)) {
      XFRAG_RETURN_NOT_OK(
          out.kw->Insert({Value(term), Value(static_cast<int64_t>(n))}));
    }
  }
  XFRAG_RETURN_NOT_OK(out.kw->CreateIndex("term"));
  return out;
}

}  // namespace xfrag::rel
