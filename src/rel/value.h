// Value, type, and row primitives for the miniature relational engine the
// document shredder targets (paper §5/[13]: "the model can be easily
// implemented on top of an existing relational database").

#ifndef XFRAG_REL_VALUE_H_
#define XFRAG_REL_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace xfrag::rel {

/// Column data types.
enum class ValueType {
  kInt64,
  kString,
};

/// \brief A single relational value (int64 or string).
class Value {
 public:
  Value() : data_(int64_t{0}) {}
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}

  ValueType type() const {
    return std::holds_alternative<int64_t>(data_) ? ValueType::kInt64
                                                  : ValueType::kString;
  }

  int64_t AsInt64() const { return std::get<int64_t>(data_); }
  const std::string& AsString() const { return std::get<std::string>(data_); }

  bool operator==(const Value& other) const { return data_ == other.data_; }
  bool operator!=(const Value& other) const { return data_ != other.data_; }
  bool operator<(const Value& other) const { return data_ < other.data_; }
  bool operator<=(const Value& other) const { return data_ <= other.data_; }
  bool operator>(const Value& other) const { return data_ > other.data_; }
  bool operator>=(const Value& other) const { return data_ >= other.data_; }

  /// Hash for join/index keys.
  uint64_t Hash() const;

  /// Display form ("42", "'abc'").
  std::string ToString() const;

 private:
  std::variant<int64_t, std::string> data_;
};

/// A tuple of values.
using Row = std::vector<Value>;

}  // namespace xfrag::rel

#endif  // XFRAG_REL_VALUE_H_
