// Relational evaluation of the fragment algebra, per the paper's claim that
// "the model can be easily implemented on top of an existing relational
// database" (§7, citing [13]). All structural accesses — posting lookups,
// parent-chain walks for fragment joins, depth fetches for filters — go
// through the relational operators over the shredded tables; the native
// doc::Document is never touched after shredding. Integration tests check
// answer equality against the native engine.

#ifndef XFRAG_REL_ENGINE_H_
#define XFRAG_REL_ENGINE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "algebra/fragment_set.h"
#include "rel/operator.h"
#include "rel/shredder.h"

namespace xfrag::rel {

/// Structural filter with anti-monotonic members only (the push-down-safe
/// subset of the native filter library, expressed relationally).
struct RelFilter {
  std::optional<uint32_t> size_at_most;
  std::optional<uint32_t> height_at_most;
  std::optional<uint32_t> span_at_most;

  bool IsTrivial() const {
    return !size_at_most && !height_at_most && !span_at_most;
  }
};

/// Evaluation options.
struct RelEvalOptions {
  /// Apply the filter inside every join iteration (Theorem 3 push-down)
  /// rather than only on the final result.
  bool push_down = true;
  /// Compute unfiltered fixed points via the Theorem-1 reduced iteration
  /// count (a relational ⊖ pass) instead of convergence checking. Only
  /// used when push_down is false (the filtered closure needs checking).
  bool use_reduced_fixed_point = false;
};

/// Work counters (row fetches approximate page accesses a DBMS would do).
struct RelMetrics {
  uint64_t node_fetches = 0;
  uint64_t kw_probes = 0;
  uint64_t fragment_joins = 0;
};

/// \brief Fragment-algebra evaluator over shredded relations.
class RelationalEngine {
 public:
  /// \brief Shreds `document` + `index` and builds the engine.
  static StatusOr<RelationalEngine> Create(const doc::Document& document,
                                           const text::InvertedIndex& index);

  /// \brief Evaluates the conjunctive keyword query `terms` with `filter`:
  /// σ_filter(F1 ⋈* ... ⋈* Fm), fixed points via convergence checking.
  StatusOr<algebra::FragmentSet> Evaluate(
      const std::vector<std::string>& terms, const RelFilter& filter,
      const RelEvalOptions& options = {});

  /// Work counters of the last Evaluate call.
  const RelMetrics& metrics() const { return metrics_; }

  /// Access to the shredded tables (for the examples and tests).
  const Table& node_table() const { return *shredded_.node; }
  const Table& kw_table() const { return *shredded_.kw; }

 private:
  explicit RelationalEngine(ShreddedDocument shredded)
      : shredded_(std::move(shredded)) {}

  struct NodeRow {
    int64_t parent;
    int64_t depth;
  };

  /// Fetches (parent, depth) of `id` through an index scan on node.id.
  StatusOr<NodeRow> FetchNode(int64_t id);

  /// Posting list of `term` through an index scan on kw.term.
  StatusOr<std::vector<doc::NodeId>> FetchPostings(const std::string& term);

  /// Fragment join via relational parent-chain walks.
  StatusOr<algebra::Fragment> JoinRel(const algebra::Fragment& f1,
                                      const algebra::Fragment& f2);

  /// Filter evaluation using relational depth fetches.
  StatusOr<bool> MatchesRel(const algebra::Fragment& f,
                            const RelFilter& filter);

  StatusOr<algebra::FragmentSet> FixedPointRel(
      const algebra::FragmentSet& base, const RelFilter& filter,
      const RelEvalOptions& options);

  /// ⊖ via relational joins only (Definition 10).
  StatusOr<algebra::FragmentSet> ReduceRel(const algebra::FragmentSet& set);

  ShreddedDocument shredded_;
  RelMetrics metrics_;
};

}  // namespace xfrag::rel

#endif  // XFRAG_REL_ENGINE_H_
