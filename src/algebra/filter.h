// Selection predicates — the paper's "filters" (Definition 3, §3.3, §3.4).
//
// Each filter knows whether it is anti-monotonic (Definition 11:
// P(f) = true implies P(f') = true for every sub-fragment f' ⊆ f). The
// query optimizer relies on this flag for Theorem 3's selection push-down,
// so the flag is conservative: a composite filter only claims
// anti-monotonicity when the paper's closure results guarantee it
// (conjunction and disjunction preserve it; negation does not).

#ifndef XFRAG_ALGEBRA_FILTER_H_
#define XFRAG_ALGEBRA_FILTER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "algebra/fragment.h"
#include "text/inverted_index.h"

namespace xfrag::algebra {

/// Evaluation context handed to every filter.
struct FilterContext {
  /// The document the fragments belong to. Never null.
  const Document* document = nullptr;
  /// Keyword index; may be null for purely structural filters.
  const text::InvertedIndex* index = nullptr;
};

class Filter;
/// Filters are immutable and shared.
using FilterPtr = std::shared_ptr<const Filter>;

/// \brief O(1) structural facts about a prospective join f1 ⋈ f2, computed
/// from the operands' summary headers *before* the join is materialized
/// (ComputeJoinBounds in ops.h).
///
/// `height`, `span` and `root_depth` are exact: the joined fragment is rooted
/// at lca(r1, r2), its pre-order interval is [lca, max(max1, max2)], and no
/// connecting-path node is deeper than an operand member. `size_lower` is a
/// lower bound: the join contains each operand, that operand root's strict
/// ancestors down to the LCA, and — whenever the operand root is not the LCA
/// itself — the other root's path below the LCA too (any overlap between
/// those pieces would imply a common ancestor deeper than the LCA).
/// `roots_distance` is the exact tree distance between the two operand roots,
/// both members of the join, so it lower-bounds the join's diameter. Theorem
/// 3's anti-monotonic filters therefore reject with certainty when a bound
/// already violates their threshold.
struct JoinBounds {
  /// size(f1 ⋈ f2) ≥ size_lower.
  uint32_t size_lower = 0;
  /// Minimal pre-order member of f1 ⋈ f2 — lca(r1, r2), exactly. Together
  /// with `span` this gives the join's exact pre-order interval
  /// [min_pre, min_pre + span], which the top-k score bound intersects with
  /// per-term posting lists (see docs/ALGEBRA.md "Top-k and score bounds").
  uint32_t min_pre = 0;
  /// height(f1 ⋈ f2), exactly.
  uint32_t height = 0;
  /// Pre-order span of f1 ⋈ f2, exactly.
  uint32_t span = 0;
  /// depth(root(f1 ⋈ f2)) = depth(lca(r1, r2)), exactly.
  uint32_t root_depth = 0;
  /// distance(r1, r2) — a lower bound on the join's diameter.
  uint32_t roots_distance = 0;
};

/// \brief Abstract selection predicate over fragments.
class Filter {
 public:
  virtual ~Filter() = default;

  /// True iff `fragment` satisfies the predicate.
  virtual bool Matches(const Fragment& fragment,
                       const FilterContext& context) const = 0;

  /// True iff the filter is anti-monotonic (Definition 11). Conservative:
  /// false means "not guaranteed", not "provably monotone".
  virtual bool anti_monotonic() const = 0;

  /// \brief True when the filter can prove, from the summary bounds alone,
  /// that the join those bounds describe cannot satisfy it.
  ///
  /// Sound, never complete: `true` guarantees Matches(f1 ⋈ f2) is false
  /// (so the join kernels may skip materializing the join entirely), while
  /// `false` only means "cannot tell from O(1) facts". The default never
  /// rejects; conjunction rejects when either operand does, disjunction only
  /// when both do.
  virtual bool RejectsJoinBounds(const JoinBounds& bounds,
                                 const FilterContext& context) const {
    (void)bounds;
    (void)context;
    return false;
  }

  /// \brief True when the predicate commutes with subtree translation: for
  /// fragments f, f' at the same offsets inside isomorphic, equally-deep
  /// copies of one subtree (same tags, texts, and shape — a subtree
  /// equivalence class of doc/subtree_classes.h), Matches(f) == Matches(f')
  /// and RejectsJoinBounds agrees on their pairs' bounds.
  ///
  /// This licenses DAG-compressed evaluation (docs/ALGEBRA.md): a filter
  /// verdict computed for one occurrence is replayed for every other. Every
  /// built-in filter qualifies — they depend only on fragment shape, member
  /// depths, content, and keyword containment, all preserved by the
  /// isomorphism — so the default is true; a custom filter that reads
  /// absolute pre-order positions (beyond what depth/shape determine) must
  /// override this to false, and composites must not claim invariance
  /// unless every child does.
  virtual bool TranslationInvariant() const { return true; }

  /// Human-readable form, e.g. "size<=3 & height<=2".
  virtual std::string ToString() const = 0;

  /// \brief Appends this filter's top-level conjuncts to `out`.
  ///
  /// The default appends `this`; conjunctions recurse, letting the optimizer
  /// split a filter into its anti-monotonic part and a residue.
  virtual void CollectConjuncts(std::vector<FilterPtr>* out,
                                const FilterPtr& self) const;
};

namespace filters {

/// Filter that accepts every fragment. Anti-monotonic (vacuously).
FilterPtr True();

/// size(f) <= beta (§3.3.1). Anti-monotonic.
FilterPtr SizeAtMost(uint32_t beta);

/// height(f) <= h (§3.3.2). Anti-monotonic.
FilterPtr HeightAtMost(uint32_t h);

/// Pre-order span of f <= w — the paper's horizontal "width" (§3.3.2).
/// Anti-monotonic.
FilterPtr SpanAtMost(uint32_t w);

/// size(f) >= beta — the paper's first non-anti-monotonic example (§3.4:
/// "fragments consisting of nodes whose number is greater than a certain
/// value").
FilterPtr SizeAtLeast(uint32_t beta);

/// Maximum tree distance (edges) between any two nodes of f is <= d. §3.3.2
/// motivates distance between nodes as a proximity measure; the maximum over
/// a subset can only shrink, so this is anti-monotonic. Evaluated in O(|f|)
/// as the diameter of the induced subtree.
FilterPtr DistanceAtMost(uint32_t d);

/// Every node of f has a tag in `allowed`. Anti-monotonic (node subsets keep
/// the property) — an example of a structural vocabulary filter ("only
/// sections and paragraphs").
FilterPtr TagsWithin(std::vector<std::string> allowed);

/// The fragment root's depth in the document is >= d ("answers no shallower
/// than a subsection"). Anti-monotonic: every member of a fragment — hence
/// every sub-fragment's root — is a descendant-or-self of its root, so root
/// depth can only grow when shrinking a fragment.
FilterPtr RootDepthAtLeast(uint32_t d);

/// The fragment root's depth is <= d. NOT anti-monotonic (the mirror image:
/// sub-fragments are rooted deeper, so a passing fragment can have failing
/// sub-fragments).
FilterPtr RootDepthAtMost(uint32_t d);

/// The paper's "equal depth filter" (§3.4, Figure 7): every node of f
/// containing `term1` lies at the same depth (relative to the fragment root)
/// as every node containing `term2`. Requires an index in the context.
/// NOT anti-monotonic — Figure 7's counterexample is reproduced in the tests.
FilterPtr EqualDepth(std::string term1, std::string term2);

/// Some node of f contains `term` (k ∈ keywords(n) for some n ∈ f). This is
/// the paper's 'keyword = k' selection when applied to single-node fragments.
/// Monotone rather than anti-monotonic, hence not push-down-safe.
FilterPtr ContainsKeyword(std::string term);

/// The fragment root's tag equals `tag`. Not anti-monotonic (sub-fragments
/// have different roots).
FilterPtr RootTagIs(std::string tag);

/// Conjunction; anti-monotonic iff both operands are (paper §3.3).
FilterPtr And(FilterPtr a, FilterPtr b);

/// Disjunction; anti-monotonic iff both operands are (paper §3.3).
FilterPtr Or(FilterPtr a, FilterPtr b);

/// Negation; never claims anti-monotonicity (paper §3.3 excludes it).
FilterPtr Not(FilterPtr inner);

/// Conjunction of all `conjuncts` (True() when empty).
FilterPtr AndAll(const std::vector<FilterPtr>& conjuncts);

}  // namespace filters

/// \brief Splits `filter` into its anti-monotonic top-level conjuncts and the
/// rest. `anti_monotonic` receives True() when no conjunct qualifies, and
/// likewise for `residue`; (anti ∧ residue) ≡ filter.
void SplitAntiMonotonic(const FilterPtr& filter, FilterPtr* anti_monotonic,
                        FilterPtr* residue);

}  // namespace xfrag::algebra

#endif  // XFRAG_ALGEBRA_FILTER_H_
