// Parallel variants of the hot-path algebra operators (ops.h), built on
// ThreadPool's deterministic chunked fan-out and FragmentPool interning.
//
// Contract: every function here returns a FragmentSet that is *bit-identical*
// to its serial counterpart — same members, same insertion order — and
// accumulates *exactly* the same OpMetrics counters, for every thread count.
// This holds because:
//  * the |F1|·|F2| join pairs are enumerated in the same flattened order as
//    the serial double loop, statically partitioned into contiguous chunks;
//  * each chunk produces into its own output slot and its own OpMetrics;
//  * chunks are merged at the barrier in chunk order, so first-occurrence
//    deduplication sees fragments in the serial order and per-worker counters
//    sum to the serial totals (no racy shared counters anywhere).
// The property suite (tests/algebra/parallel_equivalence_test.cc) enforces
// the contract against the serial oracle across seeds × thread counts, and
// `ctest -L parallel` runs it under TSan (see XFRAG_SANITIZE).
//
// Passing a null pool runs the serial kernel — callers can wire a single
// code path and let configuration choose.

#ifndef XFRAG_ALGEBRA_OPS_PARALLEL_H_
#define XFRAG_ALGEBRA_OPS_PARALLEL_H_

#include "algebra/filter.h"
#include "algebra/fragment_set.h"
#include "algebra/ops.h"
#include "common/thread_pool.h"

namespace xfrag::algebra {

using xfrag::ThreadPool;

/// \brief Definition 5 in parallel: { f1 ⋈ f2 }, deduplicated, bit-identical
/// to PairwiseJoin.
FragmentSet PairwiseJoinParallel(const Document& document,
                                 const FragmentSet& set1,
                                 const FragmentSet& set2, ThreadPool* pool,
                                 OpMetrics* metrics = nullptr);

/// \brief Push-down pairwise join in parallel, bit-identical to
/// PairwiseJoinFiltered.
///
/// `dag` enables the class-aware path (see ops.h): each chunk keeps its own
/// outcome cache over the pairs it owns, so results and logical counters stay
/// bit-identical to the serial kernel while the dag counters (classes_total,
/// class_pairs_considered, answers_multiplied_out) become schedule-dependent.
FragmentSet PairwiseJoinFilteredParallel(
    const Document& document, const FragmentSet& set1, const FragmentSet& set2,
    const FilterPtr& filter, const FilterContext& context, ThreadPool* pool,
    OpMetrics* metrics = nullptr, const doc::SubtreeClassIndex* dag = nullptr);

/// \brief Score-bounded top-k pairwise join fanned out over the pool
/// (PairwiseJoinTopK's pooled form).
///
/// Each worker owns a private TopKCollector of the same capacity and prunes
/// against its own heap — sound, because a pair that cannot beat a *partial*
/// heap's minimum cannot beat the final one either — and the per-chunk
/// survivors are re-offered into `collector` at the barrier in chunk order.
/// The retained top-k (fragments *and* scores) is bit-identical to the serial
/// kernel for every thread count; the pruning counters
/// (pairs_rejected_score, and consequently fragment_joins/filter_evals under
/// pruning) are schedule-dependent, unlike the unbounded kernels above.
/// `scorer` and `accept` are shared across workers and must be thread-safe.
void PairwiseJoinTopKParallel(const Document& document, const FragmentSet& set1,
                              const FragmentSet& set2, const FilterPtr& filter,
                              const FilterContext& context,
                              const JoinScorer& scorer,
                              const FragmentPredicate& accept,
                              TopKCollector* collector, ThreadPool* pool,
                              OpMetrics* metrics = nullptr,
                              const CancelToken* cancel = nullptr,
                              const doc::SubtreeClassIndex* dag = nullptr);

/// \brief Definition 10 in parallel: chunks the outer pair loop and OR-merges
/// per-worker elimination bitmaps at the barrier. Bit-identical to Reduce.
FragmentSet ReduceParallel(const Document& document, const FragmentSet& set,
                           ThreadPool* pool, OpMetrics* metrics = nullptr);

/// \brief §3.1.1 fixed point with the pairwise join of every iteration fanned
/// out over the pool. The working set lives in a FragmentPool (hash-consed),
/// so growing it per iteration moves 32-bit refs instead of copying node
/// vectors. Bit-identical to FixedPointNaive.
///
/// Like the serial variants, a tripped `cancel` token stops the iteration
/// loop (checked at iteration granularity, on the driving thread) and the
/// partial working set is returned; callers re-check the token.
FragmentSet FixedPointNaiveParallel(const Document& document,
                                    const FragmentSet& set, ThreadPool* pool,
                                    OpMetrics* metrics = nullptr,
                                    const CancelToken* cancel = nullptr);

/// \brief Theorem-1 fixed point (k−1 unchecked self-joins) with parallel
/// reduce and joins. Bit-identical to FixedPointReduced.
FragmentSet FixedPointReducedParallel(const Document& document,
                                      const FragmentSet& set, ThreadPool* pool,
                                      OpMetrics* metrics = nullptr,
                                      const CancelToken* cancel = nullptr);

/// \brief Theorem-3 filtered fixed point with the filter evaluated inside the
/// workers. Bit-identical to FixedPointFiltered.
FragmentSet FixedPointFilteredParallel(const Document& document,
                                       const FragmentSet& set,
                                       const FilterPtr& filter,
                                       const FilterContext& context,
                                       ThreadPool* pool,
                                       OpMetrics* metrics = nullptr,
                                       const CancelToken* cancel = nullptr,
                                       const doc::SubtreeClassIndex* dag = nullptr);

}  // namespace xfrag::algebra

#endif  // XFRAG_ALGEBRA_OPS_PARALLEL_H_
