#include "algebra/filter.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"

namespace xfrag::algebra {

void Filter::CollectConjuncts(std::vector<FilterPtr>* out,
                              const FilterPtr& self) const {
  XFRAG_DCHECK(self.get() == this);
  out->push_back(self);
}

namespace filters {

namespace {

class TrueFilter final : public Filter {
 public:
  bool Matches(const Fragment&, const FilterContext&) const override {
    return true;
  }
  bool anti_monotonic() const override { return true; }
  std::string ToString() const override { return "true"; }
};

class SizeAtMostFilter final : public Filter {
 public:
  explicit SizeAtMostFilter(uint32_t beta) : beta_(beta) {}
  bool Matches(const Fragment& f, const FilterContext&) const override {
    return f.size() <= beta_;
  }
  bool anti_monotonic() const override { return true; }
  bool RejectsJoinBounds(const JoinBounds& bounds,
                         const FilterContext&) const override {
    return bounds.size_lower > beta_;
  }
  std::string ToString() const override {
    return StrFormat("size<=%u", beta_);
  }

 private:
  uint32_t beta_;
};

class HeightAtMostFilter final : public Filter {
 public:
  explicit HeightAtMostFilter(uint32_t h) : h_(h) {}
  bool Matches(const Fragment& f, const FilterContext& ctx) const override {
    return FragmentHeight(f, *ctx.document) <= h_;
  }
  bool anti_monotonic() const override { return true; }
  bool RejectsJoinBounds(const JoinBounds& bounds,
                         const FilterContext&) const override {
    return bounds.height > h_;
  }
  std::string ToString() const override {
    return StrFormat("height<=%u", h_);
  }

 private:
  uint32_t h_;
};

class SpanAtMostFilter final : public Filter {
 public:
  explicit SpanAtMostFilter(uint32_t w) : w_(w) {}
  bool Matches(const Fragment& f, const FilterContext&) const override {
    return FragmentSpan(f) <= w_;
  }
  bool anti_monotonic() const override { return true; }
  bool RejectsJoinBounds(const JoinBounds& bounds,
                         const FilterContext&) const override {
    return bounds.span > w_;
  }
  std::string ToString() const override {
    return StrFormat("span<=%u", w_);
  }

 private:
  uint32_t w_;
};

class SizeAtLeastFilter final : public Filter {
 public:
  explicit SizeAtLeastFilter(uint32_t beta) : beta_(beta) {}
  bool Matches(const Fragment& f, const FilterContext&) const override {
    return f.size() >= beta_;
  }
  bool anti_monotonic() const override { return false; }
  std::string ToString() const override {
    return StrFormat("size>=%u", beta_);
  }

 private:
  uint32_t beta_;
};

class DistanceAtMostFilter final : public Filter {
 public:
  explicit DistanceAtMostFilter(uint32_t d) : d_(d) {}
  bool Matches(const Fragment& f, const FilterContext& ctx) const override {
    // The diameter of the induced subtree: two BFS/DFS passes are overkill
    // for fragments of this size; compute directly as the two deepest
    // leaf-depths per branch below the root. Equivalent O(|f|) formulation:
    // diameter = max over members of (depth(a) + depth(b) - 2*depth(lca)),
    // maximized by the classic "farthest node twice" method.
    const Document& d = *ctx.document;
    if (f.size() <= 1) return true;
    // Farthest member from the root.
    NodeId far1 = f.root();
    uint32_t best = 0;
    for (NodeId n : f.nodes()) {
      uint32_t dist = d.depth(n) - d.depth(f.root());
      if (dist > best) {
        best = dist;
        far1 = n;
      }
    }
    // Farthest member from far1 — the diameter endpoint.
    uint32_t diameter = 0;
    for (NodeId n : f.nodes()) {
      diameter = std::max(diameter, d.Distance(far1, n));
    }
    return diameter <= d_;
  }
  bool anti_monotonic() const override { return true; }
  bool RejectsJoinBounds(const JoinBounds& bounds,
                         const FilterContext&) const override {
    // The joined root and the deepest joined member are `bounds.height`
    // edges apart, and the two operand roots `bounds.roots_distance` apart —
    // either already exceeding d proves the diameter does.
    return bounds.height > d_ || bounds.roots_distance > d_;
  }
  std::string ToString() const override {
    return StrFormat("distance<=%u", d_);
  }

 private:
  uint32_t d_;
};

class TagsWithinFilter final : public Filter {
 public:
  explicit TagsWithinFilter(std::vector<std::string> allowed)
      : allowed_(std::move(allowed)) {
    std::sort(allowed_.begin(), allowed_.end());
  }
  bool Matches(const Fragment& f, const FilterContext& ctx) const override {
    for (NodeId n : f.nodes()) {
      if (!std::binary_search(allowed_.begin(), allowed_.end(),
                              ctx.document->tag(n))) {
        return false;
      }
    }
    return true;
  }
  bool anti_monotonic() const override { return true; }
  std::string ToString() const override {
    std::string out = "tags_within(";
    for (size_t i = 0; i < allowed_.size(); ++i) {
      if (i > 0) out += ",";
      out += allowed_[i];
    }
    return out + ")";
  }

 private:
  std::vector<std::string> allowed_;
};

class RootDepthAtLeastFilter final : public Filter {
 public:
  explicit RootDepthAtLeastFilter(uint32_t d) : d_(d) {}
  bool Matches(const Fragment& f, const FilterContext& ctx) const override {
    return ctx.document->depth(f.root()) >= d_;
  }
  bool anti_monotonic() const override { return true; }
  bool RejectsJoinBounds(const JoinBounds& bounds,
                         const FilterContext&) const override {
    return bounds.root_depth < d_;
  }
  std::string ToString() const override {
    return StrFormat("root_depth>=%u", d_);
  }

 private:
  uint32_t d_;
};

class RootDepthAtMostFilter final : public Filter {
 public:
  explicit RootDepthAtMostFilter(uint32_t d) : d_(d) {}
  bool Matches(const Fragment& f, const FilterContext& ctx) const override {
    return ctx.document->depth(f.root()) <= d_;
  }
  bool anti_monotonic() const override { return false; }
  std::string ToString() const override {
    return StrFormat("root_depth<=%u", d_);
  }

 private:
  uint32_t d_;
};

class EqualDepthFilter final : public Filter {
 public:
  EqualDepthFilter(std::string term1, std::string term2)
      : term1_(std::move(term1)), term2_(std::move(term2)) {}

  bool Matches(const Fragment& f, const FilterContext& ctx) const override {
    XFRAG_CHECK(ctx.index != nullptr);
    const Document& document = *ctx.document;
    uint32_t root_depth = document.depth(f.root());
    // Depths (relative to the fragment root) of members containing each term.
    // The filter requires all term1-nodes and all term2-nodes to share one
    // common depth.
    int64_t depth1 = -1, depth2 = -1;
    bool uniform = true;
    for (NodeId n : f.nodes()) {
      uint32_t d = document.depth(n) - root_depth;
      if (ctx.index->Contains(term1_, n)) {
        if (depth1 >= 0 && depth1 != d) uniform = false;
        depth1 = d;
      }
      if (ctx.index->Contains(term2_, n)) {
        if (depth2 >= 0 && depth2 != d) uniform = false;
        depth2 = d;
      }
    }
    return uniform && depth1 >= 0 && depth2 >= 0 && depth1 == depth2;
  }
  bool anti_monotonic() const override { return false; }
  std::string ToString() const override {
    return "equal_depth(" + term1_ + "," + term2_ + ")";
  }

 private:
  std::string term1_;
  std::string term2_;
};

class ContainsKeywordFilter final : public Filter {
 public:
  explicit ContainsKeywordFilter(std::string term) : term_(std::move(term)) {}
  bool Matches(const Fragment& f, const FilterContext& ctx) const override {
    XFRAG_CHECK(ctx.index != nullptr);
    // Iterate over the smaller side: posting list vs fragment.
    const auto& postings = ctx.index->Lookup(term_);
    if (postings.size() < f.size()) {
      for (NodeId n : postings) {
        if (f.ContainsNode(n)) return true;
      }
      return false;
    }
    for (NodeId n : f.nodes()) {
      if (ctx.index->Contains(term_, n)) return true;
    }
    return false;
  }
  bool anti_monotonic() const override { return false; }
  std::string ToString() const override { return "keyword=" + term_; }

 private:
  std::string term_;
};

class RootTagIsFilter final : public Filter {
 public:
  explicit RootTagIsFilter(std::string tag) : tag_(std::move(tag)) {}
  bool Matches(const Fragment& f, const FilterContext& ctx) const override {
    return ctx.document->tag(f.root()) == tag_;
  }
  bool anti_monotonic() const override { return false; }
  std::string ToString() const override { return "root_tag=" + tag_; }

 private:
  std::string tag_;
};

class AndFilter final : public Filter {
 public:
  AndFilter(FilterPtr a, FilterPtr b) : a_(std::move(a)), b_(std::move(b)) {}
  bool Matches(const Fragment& f, const FilterContext& ctx) const override {
    return a_->Matches(f, ctx) && b_->Matches(f, ctx);
  }
  bool anti_monotonic() const override {
    return a_->anti_monotonic() && b_->anti_monotonic();
  }
  bool RejectsJoinBounds(const JoinBounds& bounds,
                         const FilterContext& ctx) const override {
    return a_->RejectsJoinBounds(bounds, ctx) ||
           b_->RejectsJoinBounds(bounds, ctx);
  }
  bool TranslationInvariant() const override {
    return a_->TranslationInvariant() && b_->TranslationInvariant();
  }
  std::string ToString() const override {
    return "(" + a_->ToString() + " & " + b_->ToString() + ")";
  }
  void CollectConjuncts(std::vector<FilterPtr>* out,
                        const FilterPtr& self) const override {
    XFRAG_DCHECK(self.get() == this);
    (void)self;
    a_->CollectConjuncts(out, a_);
    b_->CollectConjuncts(out, b_);
  }

 private:
  FilterPtr a_;
  FilterPtr b_;
};

class OrFilter final : public Filter {
 public:
  OrFilter(FilterPtr a, FilterPtr b) : a_(std::move(a)), b_(std::move(b)) {}
  bool Matches(const Fragment& f, const FilterContext& ctx) const override {
    return a_->Matches(f, ctx) || b_->Matches(f, ctx);
  }
  bool anti_monotonic() const override {
    return a_->anti_monotonic() && b_->anti_monotonic();
  }
  bool RejectsJoinBounds(const JoinBounds& bounds,
                         const FilterContext& ctx) const override {
    // Sound only when BOTH branches prove rejection.
    return a_->RejectsJoinBounds(bounds, ctx) &&
           b_->RejectsJoinBounds(bounds, ctx);
  }
  bool TranslationInvariant() const override {
    return a_->TranslationInvariant() && b_->TranslationInvariant();
  }
  std::string ToString() const override {
    return "(" + a_->ToString() + " | " + b_->ToString() + ")";
  }

 private:
  FilterPtr a_;
  FilterPtr b_;
};

class NotFilter final : public Filter {
 public:
  explicit NotFilter(FilterPtr inner) : inner_(std::move(inner)) {}
  bool Matches(const Fragment& f, const FilterContext& ctx) const override {
    return !inner_->Matches(f, ctx);
  }
  bool anti_monotonic() const override { return false; }
  bool TranslationInvariant() const override {
    return inner_->TranslationInvariant();
  }
  std::string ToString() const override {
    return "!" + inner_->ToString();
  }

 private:
  FilterPtr inner_;
};

}  // namespace

FilterPtr True() {
  static const FilterPtr instance = std::make_shared<TrueFilter>();
  return instance;
}

FilterPtr SizeAtMost(uint32_t beta) {
  return std::make_shared<SizeAtMostFilter>(beta);
}

FilterPtr HeightAtMost(uint32_t h) {
  return std::make_shared<HeightAtMostFilter>(h);
}

FilterPtr SpanAtMost(uint32_t w) {
  return std::make_shared<SpanAtMostFilter>(w);
}

FilterPtr SizeAtLeast(uint32_t beta) {
  return std::make_shared<SizeAtLeastFilter>(beta);
}

FilterPtr DistanceAtMost(uint32_t d) {
  return std::make_shared<DistanceAtMostFilter>(d);
}

FilterPtr TagsWithin(std::vector<std::string> allowed) {
  return std::make_shared<TagsWithinFilter>(std::move(allowed));
}

FilterPtr RootDepthAtLeast(uint32_t d) {
  return std::make_shared<RootDepthAtLeastFilter>(d);
}

FilterPtr RootDepthAtMost(uint32_t d) {
  return std::make_shared<RootDepthAtMostFilter>(d);
}

FilterPtr EqualDepth(std::string term1, std::string term2) {
  return std::make_shared<EqualDepthFilter>(std::move(term1),
                                            std::move(term2));
}

FilterPtr ContainsKeyword(std::string term) {
  return std::make_shared<ContainsKeywordFilter>(std::move(term));
}

FilterPtr RootTagIs(std::string tag) {
  return std::make_shared<RootTagIsFilter>(std::move(tag));
}

FilterPtr And(FilterPtr a, FilterPtr b) {
  return std::make_shared<AndFilter>(std::move(a), std::move(b));
}

FilterPtr Or(FilterPtr a, FilterPtr b) {
  return std::make_shared<OrFilter>(std::move(a), std::move(b));
}

FilterPtr Not(FilterPtr inner) {
  return std::make_shared<NotFilter>(std::move(inner));
}

FilterPtr AndAll(const std::vector<FilterPtr>& conjuncts) {
  if (conjuncts.empty()) return True();
  FilterPtr acc = conjuncts[0];
  for (size_t i = 1; i < conjuncts.size(); ++i) {
    acc = And(acc, conjuncts[i]);
  }
  return acc;
}

}  // namespace filters

void SplitAntiMonotonic(const FilterPtr& filter, FilterPtr* anti_monotonic,
                        FilterPtr* residue) {
  std::vector<FilterPtr> conjuncts;
  filter->CollectConjuncts(&conjuncts, filter);
  std::vector<FilterPtr> anti, rest;
  for (const auto& conjunct : conjuncts) {
    if (conjunct->anti_monotonic()) {
      anti.push_back(conjunct);
    } else {
      rest.push_back(conjunct);
    }
  }
  *anti_monotonic = filters::AndAll(anti);
  *residue = filters::AndAll(rest);
}

}  // namespace xfrag::algebra
