#include "algebra/fragment_set.h"

#include <algorithm>

namespace xfrag::algebra {

bool FragmentSet::Insert(Fragment fragment) {
  uint64_t hash = fragment.Hash();
  auto it = by_hash_.find(hash);
  if (it != by_hash_.end()) {
    for (size_t index : it->second) {
      if (fragments_[index] == fragment) return false;
    }
  }
  by_hash_[hash].push_back(fragments_.size());
  fragments_.push_back(std::move(fragment));
  return true;
}

bool FragmentSet::Contains(const Fragment& fragment) const {
  auto it = by_hash_.find(fragment.Hash());
  if (it == by_hash_.end()) return false;
  for (size_t index : it->second) {
    if (fragments_[index] == fragment) return true;
  }
  return false;
}

bool FragmentSet::SetEquals(const FragmentSet& other) const {
  if (size() != other.size()) return false;
  for (const auto& f : fragments_) {
    if (!other.Contains(f)) return false;
  }
  return true;
}

FragmentSet FragmentSet::Union(const FragmentSet& other) const {
  FragmentSet out = *this;
  for (const auto& f : other) out.Insert(f);
  return out;
}

std::vector<Fragment> FragmentSet::Sorted() const {
  std::vector<Fragment> out = fragments_;
  std::sort(out.begin(), out.end());
  return out;
}

std::string FragmentSet::ToString() const {
  std::string out = "{";
  std::vector<Fragment> sorted = Sorted();
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) out += ", ";
    out += sorted[i].ToString();
  }
  out += "}";
  return out;
}

}  // namespace xfrag::algebra
