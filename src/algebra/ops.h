// The algebra's operators (paper §2.2, §3.1):
//
//   Join            f1 ⋈ f2       Definition 4 (minimal containing fragment)
//   PairwiseJoin    F1 ⋈ F2       Definition 5
//   PowersetJoin    F1 ⋈* F2      Definition 6 (brute-force subset form and
//                                  the Theorem-2 fixed-point form)
//   FixedPoint      F⁺            Definition 9 (naive §3.1.1 and the
//                                  Theorem-1 reduced-count variant §3.1.2)
//   Reduce          ⊖(F)          Definition 10
//   Select          σ_P(F)        Definition 3
//
// Each operator optionally reports work done through OpMetrics, which the
// bench harness uses to show *why* one strategy beats another (join counts,
// filter rejections) independently of wall-clock noise.

#ifndef XFRAG_ALGEBRA_OPS_H_
#define XFRAG_ALGEBRA_OPS_H_

#include <cstdint>
#include <functional>
#include <utility>

#include "algebra/filter.h"
#include "algebra/fragment_set.h"
#include "algebra/topk.h"
#include "common/cancel.h"
#include "common/status.h"

namespace xfrag::doc {
class SubtreeClassIndex;
}  // namespace xfrag::doc

namespace xfrag::algebra {

/// Work counters accumulated by the operators.
///
/// The first five counters measure *logical* algebra work — the joins and
/// filter evaluations the definitions mandate — and are invariant under the
/// summary prefilters: a pair rejected from its O(1) summary bounds still
/// counts as one (rejected) filtered join, so these counters match the
/// unoptimized kernels exactly, for every thread count. The prefilter
/// counters below them measure *physical* work avoided.
struct OpMetrics {
  /// Number of binary fragment-join evaluations.
  uint64_t fragment_joins = 0;
  /// Number of filter evaluations.
  uint64_t filter_evals = 0;
  /// Fragments rejected by a pushed-down filter before further joins.
  uint64_t filter_rejections = 0;
  /// Pairwise-join iterations executed by fixed-point computations.
  uint64_t fixed_point_iterations = 0;
  /// Fragments produced (pre-dedup) across all join operators.
  uint64_t fragments_produced = 0;

  /// Candidate pairs enumerated by the filtered join kernels (each pair is
  /// either prefilter-rejected, filter-rejected, or kept).
  uint64_t pairs_considered = 0;
  /// Pairs rejected in O(1) from the operands' summary bounds — no node
  /// vector was merged and no filter ran. Deterministic per input.
  uint64_t pairs_rejected_summary = 0;
  /// Subsumption tests (std::includes) that ⊖'s interval/size candidate
  /// index proved unnecessary. Schedule-dependent (see Reduce): excluded
  /// from operator== because parallel elimination order differs.
  uint64_t subsume_checks_skipped = 0;
  /// Pairs rejected in O(1) by the top-k score upper bound (PairwiseJoinTopK):
  /// ubound(f1 ⋈ f2) could not beat the current k-th best score, so neither
  /// the join nor its score was computed. Schedule-dependent like
  /// subsume_checks_skipped (each worker prunes against its own heap), hence
  /// excluded from operator==; the *results* stay bit-identical regardless.
  uint64_t pairs_rejected_score = 0;

  // DAG-compressed evaluation counters (docs/ALGEBRA.md, "DAG-compressed
  // evaluation"). Physical like the two above — they measure work *shared*
  // by the class-aware path, which replays the exact logical counter deltas
  // of the evaluation it avoided, so every logical counter stays invariant
  // with DAG compression on or off. Excluded from operator== because cache
  // population is schedule-dependent (per-worker caches in the parallel
  // kernels) and zero with compression off.
  /// Distinct subtree equivalence classes (fragment local forms at the
  /// kernel level, document root classes at the collection level) the
  /// class-aware path interned.
  uint64_t classes_total = 0;
  /// Candidate evaluations (join pairs, or unary selection checks) answered
  /// from a cached class-level outcome instead of being evaluated.
  uint64_t class_pairs_considered = 0;
  /// Concrete answers materialized by re-basing a cached class-level
  /// survivor onto another occurrence of its subtree class.
  uint64_t answers_multiplied_out = 0;

  void Reset() { *this = OpMetrics(); }

  /// Adds `other`'s counters into this one — how the parallel kernels fold
  /// per-worker metrics together at the barrier, and how the collection
  /// engine aggregates per-document metrics.
  void Merge(const OpMetrics& other) {
    fragment_joins += other.fragment_joins;
    filter_evals += other.filter_evals;
    filter_rejections += other.filter_rejections;
    fixed_point_iterations += other.fixed_point_iterations;
    fragments_produced += other.fragments_produced;
    pairs_considered += other.pairs_considered;
    pairs_rejected_summary += other.pairs_rejected_summary;
    subsume_checks_skipped += other.subsume_checks_skipped;
    pairs_rejected_score += other.pairs_rejected_score;
    classes_total += other.classes_total;
    class_pairs_considered += other.class_pairs_considered;
    answers_multiplied_out += other.answers_multiplied_out;
  }

  /// Compares every deterministic counter. `subsume_checks_skipped` and
  /// `pairs_rejected_score` are deliberately excluded: how many checks the ⊖
  /// index skips — and how many pairs the top-k bound prunes — depends on how
  /// far elimination (or the heap) had progressed, which differs between the
  /// serial pass and per-worker chunks without affecting any result.
  bool operator==(const OpMetrics& other) const {
    return fragment_joins == other.fragment_joins &&
           filter_evals == other.filter_evals &&
           filter_rejections == other.filter_rejections &&
           fixed_point_iterations == other.fixed_point_iterations &&
           fragments_produced == other.fragments_produced &&
           pairs_considered == other.pairs_considered &&
           pairs_rejected_summary == other.pairs_rejected_summary;
  }
};

/// \brief Reusable scratch buffers for the join kernels.
///
/// One arena per worker (or per serial kernel invocation) lets every join
/// reuse the same grown-once vectors for path extraction and merging instead
/// of allocating fresh ones per pair. The produced fragment still owns a
/// fresh exact-size node vector.
struct JoinArena {
  /// Operand nodes merged (sorted, possibly with cross-operand duplicates).
  std::vector<NodeId> merged;
  /// Connecting-path nodes, sorted ascending.
  std::vector<NodeId> paths;
};

/// \brief Definition 4: the minimal fragment of `document` containing both
/// `f1` and `f2`.
///
/// For connected inputs rooted at r1 and r2 this is
/// f1 ∪ f2 ∪ path(r1, lca(r1,r2)) ∪ path(r2, lca(r1,r2)): every connecting
/// path between two disjoint subtrees passes through both roots and their
/// LCA, and minimal containing node sets in a tree are unique.
///
/// Uses a thread-local JoinArena; the kernels pass an explicit one via
/// JoinWithArena.
Fragment Join(const Document& document, const Fragment& f1, const Fragment& f2,
              OpMetrics* metrics = nullptr);

/// \brief Join with caller-owned scratch buffers (the kernels' form).
Fragment JoinWithArena(const Document& document, const Fragment& f1,
                       const Fragment& f2, JoinArena* arena,
                       OpMetrics* metrics = nullptr);

/// \brief O(1) bounds on f1 ⋈ f2 from the operands' summary headers (one LCA
/// lookup plus arithmetic). See JoinBounds for the exactness guarantees.
JoinBounds ComputeJoinBounds(const Document& document,
                             const FragmentSummary& s1,
                             const FragmentSummary& s2);

/// \brief Process-wide switch for the summary prefilters (default on).
///
/// Exists for ablation benches and equivalence tests: results are identical
/// either way, only the physical work (and the prefilter counters) change.
/// Not intended to be toggled while kernels are running.
void SetSummaryPrefilterEnabled(bool enabled);
bool SummaryPrefilterEnabled();

/// \brief Process-wide switch for DAG-compressed (class-aware) evaluation
/// (default on).
///
/// Mirrors SetSummaryPrefilterEnabled: an ablation switch for benches and
/// equivalence tests. Results and every logical OpMetrics counter are
/// identical either way; only the wall clock and the dag counters change.
/// The switch additionally gates the collection/serving-level document
/// deduplication (collection_engine.cc, service.cc). Not intended to be
/// toggled while kernels are running.
void SetDagCompressionEnabled(bool enabled);
bool DagCompressionEnabled();

/// \brief One member of ⊖'s interval/size candidate index (see Reduce).
struct ReduceEntry {
  NodeId min = 0;
  NodeId max = 0;
  uint32_t size = 0;
  /// Position of the member within the original FragmentSet.
  uint32_t index = 0;
};

/// \brief Members of `set` ordered by (min_pre, index) — the read-only
/// candidate index shared by Reduce and ReduceParallel. f ⊆ g requires
/// [min_f, max_f] ⊆ [min_g, max_g] and |f| ≤ |g|, so a joined fragment's
/// subsumption candidates form a contiguous window of this index.
std::vector<ReduceEntry> BuildReduceIndex(const FragmentSet& set);

/// \brief Half-open window [lo, hi) of `by_min` entries whose min lies in
/// [min_pre, max_pre].
std::pair<size_t, size_t> ReduceWindow(const std::vector<ReduceEntry>& by_min,
                                       NodeId min_pre, NodeId max_pre);

/// \brief Definition 5: { f1 ⋈ f2 | f1 ∈ set1, f2 ∈ set2 }, deduplicated.
FragmentSet PairwiseJoin(const Document& document, const FragmentSet& set1,
                         const FragmentSet& set2, OpMetrics* metrics = nullptr);

/// \brief Pairwise join with an anti-monotonic filter applied to every
/// produced fragment — the push-down building block (Theorem 3). Fragments
/// failing `filter` are dropped immediately.
///
/// `dag` (optional, here and on Select / FixedPointFiltered /
/// PairwiseJoinTopK) enables the class-aware path: candidate pairs living in
/// duplicated subtrees are evaluated once per local-form pair and replayed —
/// with exact logical counter deltas and translated survivors — for every
/// other occurrence (algebra/dag_cache.h). Results and logical counters are
/// identical with or without it; pass the document's SubtreeClassIndex only
/// when every predicate involved is translation-invariant
/// (Filter::TranslationInvariant — the kernels re-check the pushed filter
/// themselves, opaque predicates are the caller's responsibility).
FragmentSet PairwiseJoinFiltered(const Document& document,
                                 const FragmentSet& set1,
                                 const FragmentSet& set2,
                                 const FilterPtr& filter,
                                 const FilterContext& context,
                                 OpMetrics* metrics = nullptr,
                                 const doc::SubtreeClassIndex* dag = nullptr);

/// \brief Definition 3: members of `set` satisfying `filter`.
FragmentSet Select(const FragmentSet& set, const FilterPtr& filter,
                   const FilterContext& context, OpMetrics* metrics = nullptr,
                   const doc::SubtreeClassIndex* dag = nullptr);

/// Extra acceptance predicate applied to a materialized join before it is
/// scored. The executor passes the residual (non-pushed) selection and the
/// answer-mode condition here so the collector only ever holds true final
/// answers — a prerequisite for the score bound to prune soundly. An empty
/// function accepts everything. Must be thread-safe for the parallel kernel.
using FragmentPredicate = std::function<bool(const Fragment&)>;

/// \brief Bootstraps a top-k collector's score floor from a few
/// high-evidence candidate pairs before the full pair loop runs.
///
/// Ranks each operand set by its standalone evidence reach (the scorer's
/// evidence summary with no partner, penalized by the fragment's own size),
/// joins the top max(8, k) fragments of one side with the top of the other
/// through the kernels' exact pair path (summary prefilter, filter, `accept`,
/// duplicate rejection), and — when that yields k distinct true answers —
/// seeds `collector` with their k-th best score. Sound: the witnesses are
/// genuine answers of this very enumeration and the main loop offers them
/// again, so the floor's promise (k distinct answers at or above it) holds
/// and the collector's final content is unchanged; the warmup only lets the
/// bounds bite from the first row instead of after k accidental acceptances.
/// Costs at most max(8, k)² joins; skipped when k is 0 or above 64 (a
/// scratch that size rarely fills, and large-k floors rarely bite anyway).
/// Warmup work is deliberately invisible in OpMetrics: the main loop
/// re-counts every pair it visits, so the counters stay deterministic and
/// identical between the serial and parallel kernels.
///
/// `sums*`/`ev*` are the operand summaries and evidence vectors the calling
/// kernel already computed (parallel order: sums1[i] describes set1[i]).
void WarmupTopKFloor(const Document& document, const FragmentSet& set1,
                     const FragmentSet& set2,
                     const std::vector<FragmentSummary>& sums1,
                     const std::vector<FragmentSummary>& sums2,
                     const std::vector<std::vector<double>>& ev1,
                     const std::vector<std::vector<double>>& ev2,
                     const FilterPtr& filter, const FilterContext& context,
                     const JoinScorer& scorer, const FragmentPredicate& accept,
                     TopKCollector* collector);

/// \brief Score-bounded pairwise join — the top-k early-termination kernel.
///
/// Enumerates the |set1|·|set2| candidate pairs in the serial double-loop
/// order; each pair is (a) rejected in O(1) when the pushed `filter`'s
/// summary prefilter proves the join cannot match, (b) rejected in O(1) when
/// scorer.UpperBound(bounds) is *strictly* below the current k-th best score
/// in `collector` (counted as pairs_rejected_score), or (c) materialized,
/// filtered, run through `accept`, scored exactly, and offered to the
/// collector. `filter` must be non-null (use filters::True() for none).
///
/// The collector afterwards holds exactly the k best answers of the
/// unbounded evaluation under (score desc, canonical fragment order asc) —
/// see docs/ALGEBRA.md for the soundness argument. Unlike the unbounded
/// kernels, the logical OpMetrics counters here measure the work *actually
/// performed* (pruned pairs never join or filter), so they are intentionally
/// not comparable with PairwiseJoinFiltered's.
///
/// `cancel` is polled periodically; a tripped token returns early with a
/// partial collector, and callers that must not observe partial results
/// (the query executor) re-check the token after the call.
void PairwiseJoinTopK(const Document& document, const FragmentSet& set1,
                      const FragmentSet& set2, const FilterPtr& filter,
                      const FilterContext& context, const JoinScorer& scorer,
                      const FragmentPredicate& accept, TopKCollector* collector,
                      OpMetrics* metrics = nullptr,
                      const CancelToken* cancel = nullptr,
                      const doc::SubtreeClassIndex* dag = nullptr);

/// \brief Hard ceiling on PowersetJoinOptions::max_set_size.
///
/// The cross loop joins 2^|set1| × 2^|set2| subset pairs, so at 12 the worst
/// case is 4096 × 4096 ≈ 1.7·10⁷ fragment joins — bounded seconds. One step
/// to 13 quadruples that, and the pre-fix default of 20 would admit ~10¹²
/// joins (years). Limits above the ceiling are rejected as InvalidArgument.
inline constexpr size_t kMaxPowersetSetSize = 12;

/// Options for brute-force powerset join.
struct PowersetJoinOptions {
  /// Upper bound on |set1| and |set2|; 2^|set| subsets are enumerated per
  /// side, so this guards against runaway exponential work. Must not exceed
  /// kMaxPowersetSetSize.
  size_t max_set_size = kMaxPowersetSetSize;
  /// Optional cooperative cancellation, checked periodically inside the
  /// subset enumeration; a tripped token aborts with DeadlineExceeded.
  const CancelToken* cancel = nullptr;
};

/// \brief Definition 6, literally: fragment join over every pair of non-empty
/// subsets (F1', F2'). Exponential; the oracle for tests and the paper's
/// "brute-force evaluation" strategy (§4.1).
StatusOr<FragmentSet> PowersetJoinBruteForce(
    const Document& document, const FragmentSet& set1, const FragmentSet& set2,
    const PowersetJoinOptions& options = {}, OpMetrics* metrics = nullptr);

/// \brief Definition 10: the reduced set ⊖(F).
///
/// Drops every fragment f for which two *other distinct* members f', f''
/// exist with f ⊆ f' ⋈ f''. (The paper's Definition 10 literally defines the
/// eliminated set; the prose and the Figure-4 example make the complement the
/// intended result — see DESIGN.md.)
FragmentSet Reduce(const Document& document, const FragmentSet& set,
                   OpMetrics* metrics = nullptr);

/// \brief Definition 9 via §3.1.1: iterate F ← F ∪ (F ⋈ F) with fixed-point
/// checking until no new fragment appears.
///
/// All fixed-point variants poll `cancel` once per iteration: a tripped token
/// stops the loop and returns the working set *as accumulated so far* — a
/// subset of the true closure, never garbage. Callers that must not observe a
/// partial result (the query executor) re-check the token after the call.
FragmentSet FixedPointNaive(const Document& document, const FragmentSet& set,
                            OpMetrics* metrics = nullptr,
                            const CancelToken* cancel = nullptr);

/// \brief Definition 9 via Theorem 1: compute k = |⊖(F)| first, then run
/// exactly k−1 unchecked pairwise self-joins (⋈_k(F) = ⋈_n(F) = F⁺).
FragmentSet FixedPointReduced(const Document& document, const FragmentSet& set,
                              OpMetrics* metrics = nullptr,
                              const CancelToken* cancel = nullptr);

/// \brief Fixed point with an anti-monotonic filter pushed inside every
/// iteration (Theorem 3 applied to the expansion in §3.3): equals
/// σ_Pa(F⁺) when `filter` is anti-monotonic.
FragmentSet FixedPointFiltered(const Document& document, const FragmentSet& set,
                               const FilterPtr& filter,
                               const FilterContext& context,
                               OpMetrics* metrics = nullptr,
                               const CancelToken* cancel = nullptr,
                               const doc::SubtreeClassIndex* dag = nullptr);

/// \brief Theorem 2: F1 ⋈* F2 = F1⁺ ⋈ F2⁺, using the Theorem-1 fixed point.
FragmentSet PowersetJoinViaFixedPoint(const Document& document,
                                      const FragmentSet& set1,
                                      const FragmentSet& set2,
                                      OpMetrics* metrics = nullptr,
                                      const CancelToken* cancel = nullptr);

}  // namespace xfrag::algebra

#endif  // XFRAG_ALGEBRA_OPS_H_
