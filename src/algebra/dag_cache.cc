#include "algebra/dag_cache.h"

#include "algebra/ops.h"

namespace xfrag::algebra {

namespace {

inline size_t HashCombine(size_t seed, size_t value) {
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace

size_t DagFormTable::FormKeyHash::operator()(const FormKey& k) const {
  size_t h = HashCombine(k.anchor_class, k.anchor_depth);
  for (NodeId n : k.rel_nodes) h = HashCombine(h, n);
  return h;
}

uint32_t DagFormTable::Intern(const Fragment& f, NodeId* anchor_out) {
  const NodeId anchor = dag_.dup_anchor(f.root());
  if (anchor == doc::kNoNode) return kNoLocalForm;
  FormKey key;
  key.anchor_class = dag_.class_of(anchor);
  key.anchor_depth = document_.depth(anchor);
  key.rel_nodes.reserve(f.size());
  // Every member lies in the subtree of the fragment root, hence of the
  // anchor, so the offsets are non-negative and order-preserving.
  for (NodeId n : f.nodes()) key.rel_nodes.push_back(n - anchor);
  *anchor_out = anchor;
  auto it = ids_.find(key);
  if (it != ids_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(ids_.size());
  ids_.emplace(std::move(key), id);
  return id;
}

void DagFormTable::InternSet(const FragmentSet& set,
                             std::vector<uint32_t>* forms,
                             std::vector<NodeId>* anchors) {
  forms->resize(set.size());
  anchors->assign(set.size(), doc::kNoNode);
  for (size_t i = 0; i < set.size(); ++i) {
    (*forms)[i] = Intern(set[i], &(*anchors)[i]);
  }
}

Fragment TranslateOutcome(const DagPairOutcome& outcome, NodeId anchor,
                          uint32_t anchor_depth) {
  std::vector<NodeId> nodes;
  nodes.reserve(outcome.rel_nodes.size());
  for (NodeId rel : outcome.rel_nodes) nodes.push_back(anchor + rel);
  return Fragment::FromSortedUnchecked(std::move(nodes),
                                       outcome.rel_max_depth + anchor_depth);
}

bool DagUsable(const doc::SubtreeClassIndex* dag, const FilterPtr& filter) {
  return dag != nullptr && DagCompressionEnabled() && dag->has_duplication() &&
         (filter == nullptr || filter->TranslationInvariant());
}

}  // namespace xfrag::algebra
