// The paper's Definition 2: a document fragment is a subset of document nodes
// whose induced subgraph is a rooted (connected) tree. Fragments are the value
// type of the whole algebra; they are immutable and canonical (sorted
// pre-order ids), so equality and hashing are structural.
//
// Every fragment carries a constant-size *summary header*: its size, root,
// pre-order interval [min,max], maximum member depth, and a 64-bit structural
// hash computed exactly once at construction. The summary is what makes the
// hot kernels cheap: joins can be rejected in O(1) against an anti-monotonic
// filter before any node vector is touched (ops.h), subsumption checks in
// ⊖(F) are prefiltered by interval containment, and set/pool deduplication
// reuses the cached hash instead of rescanning nodes.

#ifndef XFRAG_ALGEBRA_FRAGMENT_H_
#define XFRAG_ALGEBRA_FRAGMENT_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "doc/document.h"

namespace xfrag::algebra {

using doc::Document;
using doc::NodeId;

/// \brief The constant-size structural summary of a fragment.
///
/// All fields are derivable from the member node ids plus the document;
/// `min_pre` equals `root` because node ids are pre-order ranks and the root
/// is the minimal member. `max_depth` is the absolute document depth of the
/// deepest member, so height(f) = max_depth − root_depth.
struct FragmentSummary {
  uint32_t size = 0;
  NodeId root = 0;
  NodeId min_pre = 0;
  NodeId max_pre = 0;
  uint32_t root_depth = 0;
  uint32_t max_depth = 0;
};

/// \brief An immutable, canonical document fragment.
///
/// Invariants: node ids are sorted ascending and unique; the induced subgraph
/// is connected. Because ids are pre-order ranks, the fragment's root (the
/// unique member that is an ancestor-or-self of all members) is always the
/// first id.
class Fragment {
 public:
  /// \brief Validates connectivity and builds a fragment.
  ///
  /// Returns InvalidArgument when `nodes` is empty, contains an id out of
  /// range, or induces a disconnected subgraph. The summary header (including
  /// max depth) is fully populated.
  static StatusOr<Fragment> Create(const Document& document,
                                   std::vector<NodeId> nodes);

  /// \brief Single-node fragment (the paper calls these simply "nodes").
  ///
  /// Max depth is left unknown (no document in scope); Summary() recovers it
  /// in O(1) from the document when needed.
  static Fragment Single(NodeId node) {
    return Fragment(std::vector<NodeId>{node});
  }

  /// \brief Builds from nodes already known to be sorted, unique, and
  /// connected (used by the join kernels). Not validated in release builds.
  static Fragment FromSortedUnchecked(std::vector<NodeId> nodes) {
    return Fragment(std::move(nodes));
  }

  /// \brief Like FromSortedUnchecked, but records the known maximum member
  /// depth so the summary is O(1) complete — the join kernels derive it from
  /// their inputs' summaries without rescanning the produced nodes.
  static Fragment FromSortedUnchecked(std::vector<NodeId> nodes,
                                      uint32_t max_depth) {
    Fragment f(std::move(nodes));
    f.max_depth_ = max_depth;
    return f;
  }

  /// Sorted member node ids.
  const std::vector<NodeId>& nodes() const { return nodes_; }

  /// Number of nodes — the paper's size(f) (§3.3.1).
  size_t size() const { return nodes_.size(); }

  /// The fragment's root node (the minimal pre-order member).
  NodeId root() const { return nodes_.front(); }

  /// Smallest / largest member pre-order id — the fragment's interval.
  NodeId min_pre() const { return nodes_.front(); }
  NodeId max_pre() const { return nodes_.back(); }

  /// True when the max-depth summary field was recorded at construction.
  bool has_max_depth() const { return max_depth_ != kUnknownMaxDepth; }

  /// \brief Absolute document depth of the deepest member.
  ///
  /// O(1) when recorded at construction (Create and the join kernels) or the
  /// fragment is a single node; otherwise one O(|f|) scan.
  uint32_t MaxDepth(const Document& document) const {
    if (max_depth_ != kUnknownMaxDepth) return max_depth_;
    if (nodes_.size() == 1) return document.depth(nodes_.front());
    uint32_t max_depth = 0;
    for (NodeId n : nodes_) max_depth = std::max(max_depth, document.depth(n));
    return max_depth;
  }

  /// \brief The full summary header; O(1) except when MaxDepth must scan.
  FragmentSummary Summary(const Document& document) const {
    FragmentSummary s;
    s.size = static_cast<uint32_t>(nodes_.size());
    s.root = nodes_.front();
    s.min_pre = nodes_.front();
    s.max_pre = nodes_.back();
    s.root_depth = document.depth(s.root);
    s.max_depth = MaxDepth(document);
    return s;
  }

  /// True iff `node` is a member.
  bool ContainsNode(NodeId node) const {
    return std::binary_search(nodes_.begin(), nodes_.end(), node);
  }

  /// True iff every node of `other` is a member (f' ⊆ f).
  bool ContainsFragment(const Fragment& other) const {
    return std::includes(nodes_.begin(), nodes_.end(), other.nodes_.begin(),
                         other.nodes_.end());
  }

  /// Structural equality.
  bool operator==(const Fragment& other) const {
    return hash_ == other.hash_ && nodes_ == other.nodes_;
  }
  bool operator!=(const Fragment& other) const { return !(*this == other); }

  /// Deterministic ordering (lexicographic on node ids), for stable output.
  bool operator<(const Fragment& other) const { return nodes_ < other.nodes_; }

  /// 64-bit structural hash, computed once at construction and cached —
  /// FragmentSet and FragmentPool lookups never rescan the nodes.
  uint64_t Hash() const { return hash_; }

  /// Total number of O(|f|) hash computations performed process-wide.
  /// Test hook for the "hash once at construction" guarantee.
  static uint64_t HashComputationsForTest();

  /// "⟨n16,n17,n18⟩" — the paper's fragment notation.
  std::string ToString() const;

 private:
  static constexpr uint32_t kUnknownMaxDepth = static_cast<uint32_t>(-1);

  static uint64_t ComputeHash(const std::vector<NodeId>& nodes);

  explicit Fragment(std::vector<NodeId> nodes)
      : nodes_(std::move(nodes)), hash_(ComputeHash(nodes_)) {}

  std::vector<NodeId> nodes_;
  uint64_t hash_ = 0;
  uint32_t max_depth_ = kUnknownMaxDepth;
};

/// \brief Vertical distance between the fragment root and its deepest node —
/// the paper's height(f) (§3.3.2).
uint32_t FragmentHeight(const Fragment& fragment, const Document& document);

/// \brief Horizontal extent of the fragment, formalised as the pre-order span
/// `max_pre − min_pre` between the leftmost and rightmost member (§3.3.2;
/// see DESIGN.md on this substitution).
uint32_t FragmentSpan(const Fragment& fragment);

/// \brief The member nodes that are leaves of the fragment's induced tree
/// (no member is their child). Used by Definition 8's leaf condition.
std::vector<NodeId> FragmentLeaves(const Fragment& fragment,
                                   const Document& document);

}  // namespace xfrag::algebra

#endif  // XFRAG_ALGEBRA_FRAGMENT_H_
