// The paper's Definition 2: a document fragment is a subset of document nodes
// whose induced subgraph is a rooted (connected) tree. Fragments are the value
// type of the whole algebra; they are immutable and canonical (sorted
// pre-order ids), so equality and hashing are structural.

#ifndef XFRAG_ALGEBRA_FRAGMENT_H_
#define XFRAG_ALGEBRA_FRAGMENT_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "doc/document.h"

namespace xfrag::algebra {

using doc::Document;
using doc::NodeId;

/// \brief An immutable, canonical document fragment.
///
/// Invariants: node ids are sorted ascending and unique; the induced subgraph
/// is connected. Because ids are pre-order ranks, the fragment's root (the
/// unique member that is an ancestor-or-self of all members) is always the
/// first id.
class Fragment {
 public:
  /// \brief Validates connectivity and builds a fragment.
  ///
  /// Returns InvalidArgument when `nodes` is empty, contains an id out of
  /// range, or induces a disconnected subgraph.
  static StatusOr<Fragment> Create(const Document& document,
                                   std::vector<NodeId> nodes);

  /// \brief Single-node fragment (the paper calls these simply "nodes").
  static Fragment Single(NodeId node) {
    return Fragment(std::vector<NodeId>{node});
  }

  /// \brief Builds from nodes already known to be sorted, unique, and
  /// connected (used by the join kernels). Not validated in release builds.
  static Fragment FromSortedUnchecked(std::vector<NodeId> nodes) {
    return Fragment(std::move(nodes));
  }

  /// Sorted member node ids.
  const std::vector<NodeId>& nodes() const { return nodes_; }

  /// Number of nodes — the paper's size(f) (§3.3.1).
  size_t size() const { return nodes_.size(); }

  /// The fragment's root node.
  NodeId root() const { return nodes_.front(); }

  /// True iff `node` is a member.
  bool ContainsNode(NodeId node) const {
    return std::binary_search(nodes_.begin(), nodes_.end(), node);
  }

  /// True iff every node of `other` is a member (f' ⊆ f).
  bool ContainsFragment(const Fragment& other) const {
    return std::includes(nodes_.begin(), nodes_.end(), other.nodes_.begin(),
                         other.nodes_.end());
  }

  /// Structural equality.
  bool operator==(const Fragment& other) const {
    return nodes_ == other.nodes_;
  }
  bool operator!=(const Fragment& other) const { return !(*this == other); }

  /// Deterministic ordering (lexicographic on node ids), for stable output.
  bool operator<(const Fragment& other) const { return nodes_ < other.nodes_; }

  /// 64-bit structural hash.
  uint64_t Hash() const;

  /// "⟨n16,n17,n18⟩" — the paper's fragment notation.
  std::string ToString() const;

 private:
  explicit Fragment(std::vector<NodeId> nodes) : nodes_(std::move(nodes)) {}

  std::vector<NodeId> nodes_;
};

/// \brief Vertical distance between the fragment root and its deepest node —
/// the paper's height(f) (§3.3.2).
uint32_t FragmentHeight(const Fragment& fragment, const Document& document);

/// \brief Horizontal extent of the fragment, formalised as the pre-order span
/// `max_pre − min_pre` between the leftmost and rightmost member (§3.3.2;
/// see DESIGN.md on this substitution).
uint32_t FragmentSpan(const Fragment& fragment);

/// \brief The member nodes that are leaves of the fragment's induced tree
/// (no member is their child). Used by Definition 8's leaf condition.
std::vector<NodeId> FragmentLeaves(const Fragment& fragment,
                                   const Document& document);

}  // namespace xfrag::algebra

#endif  // XFRAG_ALGEBRA_FRAGMENT_H_
