#include "algebra/ops_parallel.h"

#include <algorithm>
#include <cstdint>
#include <optional>
#include <utility>

#include "algebra/dag_cache.h"
#include "algebra/fragment_pool.h"

namespace xfrag::algebra {

namespace {

// One chunk's private output: fragments in pair order, local counters, and
// the worker's reusable join scratch.
struct ChunkOut {
  std::vector<Fragment> produced;
  OpMetrics metrics;
  JoinArena arena;
};

// One chunk's private class-aware state (see algebra/dag_cache.h). Each
// worker interns forms and caches outcomes independently — lock-free, and
// sound because a cached outcome replays the evaluation exactly, so only
// the schedule-dependent dag counters differ between thread counts, never
// results or logical counters.
struct ChunkDag {
  ChunkDag(const Document& document, const doc::SubtreeClassIndex& dag)
      : forms(document, dag) {}
  DagFormTable forms;
  DagOutcomeMap outcomes;
  std::vector<uint32_t> forms_left, forms_right;
  std::vector<NodeId> anchors_left, anchors_right;

  bool PairCacheable(size_t li, size_t ri, uint64_t* key) const {
    if (forms_left[li] == kNoLocalForm || forms_right[ri] == kNoLocalForm ||
        anchors_left[li] != anchors_right[ri]) {
      return false;
    }
    *key = DagPairKey(forms_left[li], forms_right[ri]);
    return true;
  }
};

std::vector<FragmentSummary> SummarizeRefs(const FragmentPool& frags,
                                           const std::vector<FragmentRef>& refs,
                                           const Document& document) {
  std::vector<FragmentSummary> out;
  out.reserve(refs.size());
  for (FragmentRef ref : refs) out.push_back(frags.Get(ref).Summary(document));
  return out;
}

// The flattened serial pair loop restricted to [begin, end): pair p joins
// left[p / |right|] with right[p % |right|], exactly the order the serial
// double loop visits. `filter`, when non-null, drops non-matching results —
// with `prefilter` set, pairs whose summary bounds already violate the filter
// are rejected in O(1), counted exactly like the serial kernel counts them
// (so chunk-merged totals stay identical at every thread count).
void JoinPairRange(const Document& document, const FragmentPool& frags,
                   const std::vector<FragmentRef>& left,
                   const std::vector<FragmentRef>& right,
                   const std::vector<FragmentSummary>& left_sums,
                   const std::vector<FragmentSummary>& right_sums,
                   bool prefilter, const Filter* filter,
                   const FilterContext* context,
                   const doc::SubtreeClassIndex* dag, size_t begin, size_t end,
                   ChunkOut* out) {
  const size_t nr = right.size();
  out->produced.reserve(end - begin);
  std::optional<ChunkDag> cd;
  if (dag != nullptr && filter != nullptr && begin < end) {
    cd.emplace(document, *dag);
    cd->forms_left.assign(left.size(), kNoLocalForm);
    cd->anchors_left.assign(left.size(), doc::kNoNode);
    cd->forms_right.assign(nr, kNoLocalForm);
    cd->anchors_right.assign(nr, doc::kNoNode);
    // Only the rows this chunk's pair range touches need left forms.
    for (size_t li = begin / nr; li <= (end - 1) / nr; ++li) {
      cd->forms_left[li] =
          cd->forms.Intern(frags.Get(left[li]), &cd->anchors_left[li]);
    }
    for (size_t ri = 0; ri < nr; ++ri) {
      cd->forms_right[ri] =
          cd->forms.Intern(frags.Get(right[ri]), &cd->anchors_right[ri]);
    }
    out->metrics.classes_total += cd->forms.size();
  }
  for (size_t p = begin; p < end; ++p) {
    const size_t li = p / nr;
    const size_t ri = p % nr;
    uint64_t key = 0;
    bool cacheable = false;
    if (filter != nullptr) {
      ++out->metrics.pairs_considered;
      cacheable = cd.has_value() && cd->PairCacheable(li, ri, &key);
      if (cacheable) {
        auto it = cd->outcomes.find(key);
        if (it != cd->outcomes.end()) {
          // Replay: exactly the counter deltas of the serial path below.
          const DagPairOutcome& o = it->second;
          ++out->metrics.class_pairs_considered;
          ++out->metrics.fragment_joins;
          ++out->metrics.fragments_produced;
          ++out->metrics.filter_evals;
          if (o.kind == DagPairOutcome::kPrefilterRejected) {
            ++out->metrics.filter_rejections;
            ++out->metrics.pairs_rejected_summary;
          } else if (o.kind == DagPairOutcome::kFilterRejected) {
            ++out->metrics.filter_rejections;
          } else {
            ++out->metrics.answers_multiplied_out;
            const NodeId anchor = cd->anchors_left[li];
            out->produced.push_back(
                TranslateOutcome(o, anchor, document.depth(anchor)));
          }
          continue;
        }
      }
      if (prefilter &&
          filter->RejectsJoinBounds(
              ComputeJoinBounds(document, left_sums[li], right_sums[ri]),
              *context)) {
        ++out->metrics.fragment_joins;
        ++out->metrics.fragments_produced;
        ++out->metrics.filter_evals;
        ++out->metrics.filter_rejections;
        ++out->metrics.pairs_rejected_summary;
        if (cacheable) {
          cd->outcomes[key].kind = DagPairOutcome::kPrefilterRejected;
        }
        continue;
      }
    }
    const Fragment& f1 = frags.Get(left[li]);
    const Fragment& f2 = frags.Get(right[ri]);
    Fragment joined =
        JoinWithArena(document, f1, f2, &out->arena, &out->metrics);
    if (filter != nullptr) {
      ++out->metrics.filter_evals;
      if (!filter->Matches(joined, *context)) {
        ++out->metrics.filter_rejections;
        if (cacheable) {
          cd->outcomes[key].kind = DagPairOutcome::kFilterRejected;
        }
        continue;
      }
      if (cacheable) {
        DagPairOutcome& rec = cd->outcomes[key];
        rec.kind = DagPairOutcome::kSurvived;
        const NodeId anchor = cd->anchors_left[li];
        rec.rel_nodes.reserve(joined.size());
        for (NodeId n : joined.nodes()) rec.rel_nodes.push_back(n - anchor);
        rec.rel_max_depth = joined.MaxDepth(document) - document.depth(anchor);
      }
    }
    out->produced.push_back(std::move(joined));
  }
}

// Fans |left|·|right| joins out over the pool; at the barrier, interns the
// surviving fragments chunk by chunk (= serial pair order) and merges each
// chunk's counters into `metrics` explicitly. Returns refs pre-dedup, in
// serial production order. Operand summaries are computed once up front so
// every worker prefilters from the same read-only vectors.
std::vector<FragmentRef> ParallelPairJoins(
    const Document& document, FragmentPool* frags,
    const std::vector<FragmentRef>& left,
    const std::vector<FragmentRef>& right, const Filter* filter,
    const FilterContext* context, const doc::SubtreeClassIndex* dag,
    ThreadPool* pool, OpMetrics* metrics) {
  const size_t pairs = left.size() * right.size();
  const bool prefilter = filter != nullptr && SummaryPrefilterEnabled();
  std::vector<FragmentSummary> left_sums;
  std::vector<FragmentSummary> right_sums;
  if (prefilter) {
    left_sums = SummarizeRefs(*frags, left, document);
    right_sums = SummarizeRefs(*frags, right, document);
  }
  std::vector<ChunkOut> chunks(pool->parallelism());
  pool->ParallelFor(pairs, [&](unsigned chunk, size_t begin, size_t end) {
    JoinPairRange(document, *frags, left, right, left_sums, right_sums,
                  prefilter, filter, context, dag, begin, end, &chunks[chunk]);
  });
  std::vector<FragmentRef> produced;
  produced.reserve(pairs);
  for (ChunkOut& chunk : chunks) {
    if (metrics != nullptr) metrics->Merge(chunk.metrics);
    for (Fragment& f : chunk.produced) {
      produced.push_back(frags->Intern(std::move(f)));
    }
  }
  return produced;
}

FragmentRefSet Deduped(const std::vector<FragmentRef>& produced) {
  FragmentRefSet out;
  for (FragmentRef ref : produced) out.Insert(ref);
  return out;
}

}  // namespace

FragmentSet PairwiseJoinParallel(const Document& document,
                                 const FragmentSet& set1,
                                 const FragmentSet& set2, ThreadPool* pool,
                                 OpMetrics* metrics) {
  if (pool == nullptr) return PairwiseJoin(document, set1, set2, metrics);
  FragmentPool frags;
  FragmentRefSet s1 = InternSet(&frags, set1);
  FragmentRefSet s2 = InternSet(&frags, set2);
  std::vector<FragmentRef> produced =
      ParallelPairJoins(document, &frags, s1.refs(), s2.refs(),
                        /*filter=*/nullptr, /*context=*/nullptr,
                        /*dag=*/nullptr, pool, metrics);
  return Deduped(produced).Materialize(frags);
}

FragmentSet PairwiseJoinFilteredParallel(const Document& document,
                                         const FragmentSet& set1,
                                         const FragmentSet& set2,
                                         const FilterPtr& filter,
                                         const FilterContext& context,
                                         ThreadPool* pool,
                                         OpMetrics* metrics,
                                         const doc::SubtreeClassIndex* dag) {
  if (pool == nullptr) {
    return PairwiseJoinFiltered(document, set1, set2, filter, context,
                                metrics, dag);
  }
  FragmentPool frags;
  FragmentRefSet s1 = InternSet(&frags, set1);
  FragmentRefSet s2 = InternSet(&frags, set2);
  std::vector<FragmentRef> produced = ParallelPairJoins(
      document, &frags, s1.refs(), s2.refs(), filter.get(), &context,
      DagUsable(dag, filter) ? dag : nullptr, pool, metrics);
  return Deduped(produced).Materialize(frags);
}

void PairwiseJoinTopKParallel(const Document& document, const FragmentSet& set1,
                              const FragmentSet& set2, const FilterPtr& filter,
                              const FilterContext& context,
                              const JoinScorer& scorer,
                              const FragmentPredicate& accept,
                              TopKCollector* collector, ThreadPool* pool,
                              OpMetrics* metrics, const CancelToken* cancel,
                              const doc::SubtreeClassIndex* dag) {
  if (pool == nullptr) {
    PairwiseJoinTopK(document, set1, set2, filter, context, scorer, accept,
                     collector, metrics, cancel, dag);
    return;
  }
  const size_t nr = set2.size();
  const size_t pairs = set1.size() * nr;
  const bool prefilter = SummaryPrefilterEnabled();
  const doc::SubtreeClassIndex* chunk_dag = DagUsable(dag, filter) ? dag : nullptr;
  std::vector<FragmentSummary> sums1;
  std::vector<FragmentSummary> sums2;
  sums1.reserve(set1.size());
  sums2.reserve(nr);
  for (const Fragment& f : set1) sums1.push_back(f.Summary(document));
  for (const Fragment& f : set2) sums2.push_back(f.Summary(document));
  // Evidence summaries, precomputed once and shared read-only by every
  // chunk (as in the serial kernel, including the row-skip inputs).
  const bool evidence = scorer.HasEvidenceBound() && nr > 0;
  std::vector<std::vector<double>> ev1;
  std::vector<std::vector<double>> ev2;
  std::vector<double> ev2_max;
  uint32_t min_size2 = 0;
  if (evidence) {
    ev1.reserve(set1.size());
    for (const Fragment& f : set1) ev1.push_back(scorer.FragmentEvidence(f));
    ev2.reserve(nr);
    for (const Fragment& f : set2) ev2.push_back(scorer.FragmentEvidence(f));
    ev2_max = ev2[0];
    for (const std::vector<double>& e : ev2) {
      for (size_t t = 0; t < e.size(); ++t) {
        ev2_max[t] = std::max(ev2_max[t], e[t]);
      }
    }
    min_size2 = sums2[0].size;
    for (const FragmentSummary& s : sums2) {
      min_size2 = std::min(min_size2, s.size);
    }
    // Floor bootstrap before the chunks copy the output collector's floor,
    // so every worker prunes against it from its first pair (see ops.h).
    WarmupTopKFloor(document, set1, set2, sums1, sums2, ev1, ev2, filter,
                    context, scorer, accept, collector);
  }
  struct TopKChunk {
    explicit TopKChunk(size_t k) : collector(k) {}
    TopKCollector collector;
    OpMetrics metrics;
    JoinArena arena;
  };
  std::vector<TopKChunk> chunks;
  chunks.reserve(pool->parallelism());
  for (unsigned c = 0; c < pool->parallelism(); ++c) {
    chunks.emplace_back(collector->k());
    // Private collectors inherit the output collector's external floor so
    // every worker prunes against it; sound because the floor's witnesses
    // need not be offered to any particular chunk.
    chunks.back().collector.SeedFloor(collector->seeded_floor());
    chunks.back().collector.AttachLiveFloor(collector->live_floor());
  }
  pool->ParallelFor(pairs, [&](unsigned chunk, size_t begin, size_t end) {
    TopKChunk& out = chunks[chunk];
    // Per-chunk class-aware cache (see JoinPairRange): consulted only after
    // the collector-dependent score bounds, exactly like the serial kernel.
    std::optional<ChunkDag> cd;
    if (chunk_dag != nullptr && begin < end) {
      cd.emplace(document, *chunk_dag);
      cd->forms_left.assign(set1.size(), kNoLocalForm);
      cd->anchors_left.assign(set1.size(), doc::kNoNode);
      cd->forms_right.assign(nr, kNoLocalForm);
      cd->anchors_right.assign(nr, doc::kNoNode);
      for (size_t li = begin / nr; li <= (end - 1) / nr; ++li) {
        cd->forms_left[li] = cd->forms.Intern(set1[li], &cd->anchors_left[li]);
      }
      for (size_t ri = 0; ri < nr; ++ri) {
        cd->forms_right[ri] =
            cd->forms.Intern(set2[ri], &cd->anchors_right[ri]);
      }
      out.metrics.classes_total += cd->forms.size();
    }
    size_t since_poll = 0;
    size_t row_checked = std::numeric_limits<size_t>::max();
    for (size_t p = begin; p < end; ++p) {
      if (++since_poll >= 1024) {
        since_poll = 0;
        if (ShouldStop(cancel)) return;
      }
      const size_t li = p / nr;
      const size_t ri = p % nr;
      // Row-level bound, tested once per row entered (as in the serial
      // kernel): when it fails against this chunk's floor, bulk-account the
      // chunk's remaining slice of the row and jump past it.
      if (evidence && li != row_checked) {
        row_checked = li;
        if (!out.collector.CouldAccept(scorer.EvidenceUpperBoundFromSize(
                ev1[li], ev2_max, std::max(sums1[li].size, min_size2)))) {
          const size_t row_end = std::min(end, (li + 1) * nr);
          const size_t skipped = row_end - p;
          out.metrics.pairs_considered += skipped;
          out.metrics.pairs_rejected_score += skipped;
          since_poll += skipped - 1;
          if (since_poll >= 1024) {
            since_poll = 0;
            if (ShouldStop(cancel)) return;
          }
          p = row_end - 1;  // the loop increment lands on the next row
          continue;
        }
      }
      ++out.metrics.pairs_considered;
      // Pair-level evidence pre-check from sizes alone, before the LCA (as
      // in the serial kernel).
      if (evidence &&
          !out.collector.CouldAccept(scorer.EvidenceUpperBoundFromSize(
              ev1[li], ev2[ri], std::max(sums1[li].size, sums2[ri].size)))) {
        ++out.metrics.pairs_rejected_score;
        continue;
      }
      JoinBounds bounds = ComputeJoinBounds(document, sums1[li], sums2[ri]);
      uint64_t key = 0;
      const bool cacheable =
          cd.has_value() && cd->PairCacheable(li, ri, &key);
      const DagPairOutcome* hit = nullptr;
      if (cacheable) {
        auto it = cd->outcomes.find(key);
        if (it != cd->outcomes.end()) hit = &it->second;
      }
      if (hit != nullptr && hit->kind == DagPairOutcome::kPrefilterRejected) {
        ++out.metrics.class_pairs_considered;
        ++out.metrics.fragment_joins;
        ++out.metrics.fragments_produced;
        ++out.metrics.filter_evals;
        ++out.metrics.filter_rejections;
        ++out.metrics.pairs_rejected_summary;
        continue;
      }
      if (hit == nullptr && prefilter &&
          filter->RejectsJoinBounds(bounds, context)) {
        ++out.metrics.fragment_joins;
        ++out.metrics.fragments_produced;
        ++out.metrics.filter_evals;
        ++out.metrics.filter_rejections;
        ++out.metrics.pairs_rejected_summary;
        if (cacheable) {
          cd->outcomes[key].kind = DagPairOutcome::kPrefilterRejected;
        }
        continue;
      }
      // Coarsest bound first, as in the serial kernel (evidence between the
      // two interval bounds).
      if (!out.collector.CouldAccept(scorer.QuickUpperBound(bounds)) ||
          (evidence && !out.collector.CouldAccept(scorer.EvidenceUpperBound(
                           ev1[li], ev2[ri], bounds))) ||
          !out.collector.CouldAccept(scorer.UpperBound(bounds))) {
        ++out.metrics.pairs_rejected_score;
        continue;
      }
      if (hit != nullptr) {
        ++out.metrics.class_pairs_considered;
        ++out.metrics.fragment_joins;
        ++out.metrics.fragments_produced;
        ++out.metrics.filter_evals;
        if (hit->kind == DagPairOutcome::kFilterRejected) {
          ++out.metrics.filter_rejections;
          continue;
        }
        if (hit->kind == DagPairOutcome::kAcceptRejected) continue;
        ++out.metrics.answers_multiplied_out;
        const NodeId anchor = cd->anchors_left[li];
        Fragment translated =
            TranslateOutcome(*hit, anchor, document.depth(anchor));
        if (out.collector.Contains(translated)) continue;
        out.collector.Offer(std::move(translated), hit->score);
        continue;
      }
      Fragment joined = JoinWithArena(document, set1[li], set2[ri], &out.arena,
                                      &out.metrics);
      ++out.metrics.filter_evals;
      if (!filter->Matches(joined, context)) {
        ++out.metrics.filter_rejections;
        if (cacheable) {
          cd->outcomes[key].kind = DagPairOutcome::kFilterRejected;
        }
        continue;
      }
      if (accept && !accept(joined)) {
        if (cacheable) {
          cd->outcomes[key].kind = DagPairOutcome::kAcceptRejected;
        }
        continue;
      }
      if (cacheable) {
        double score = scorer.Score(joined);
        DagPairOutcome& rec = cd->outcomes[key];
        rec.kind = DagPairOutcome::kSurvived;
        const NodeId anchor = cd->anchors_left[li];
        rec.rel_nodes.reserve(joined.size());
        for (NodeId n : joined.nodes()) rec.rel_nodes.push_back(n - anchor);
        rec.rel_max_depth = joined.MaxDepth(document) - document.depth(anchor);
        rec.score = score;
        if (out.collector.Contains(joined)) continue;
        out.collector.Offer(std::move(joined), score);
        continue;
      }
      // As in the serial kernel: a retained duplicate is already scored.
      if (out.collector.Contains(joined)) continue;
      double score = scorer.Score(joined);
      out.collector.Offer(std::move(joined), score);
    }
  });
  // Barrier: re-offer each chunk's survivors. The collector's content is
  // order-independent (see topk.h), so chunk order only matters for
  // determinism of the metrics merge.
  for (TopKChunk& chunk : chunks) {
    if (metrics != nullptr) metrics->Merge(chunk.metrics);
    collector->MergeFloorAudit(chunk.collector);
    for (ScoredFragment& sf : chunk.collector.TakeSorted()) {
      collector->Offer(std::move(sf.fragment), sf.score);
    }
  }
}

FragmentSet ReduceParallel(const Document& document, const FragmentSet& set,
                           ThreadPool* pool, OpMetrics* metrics) {
  if (pool == nullptr) return Reduce(document, set, metrics);
  const size_t n = set.size();
  // Each chunk owns a slice of the outer i-loop and a private elimination
  // bitmap; bitmaps are OR-merged at the barrier. A worker may re-derive an
  // elimination another worker already found — the final bitmap (and the
  // join count, which covers all n(n−1)/2 pairs either way) is identical to
  // the serial pass. All workers share the read-only candidate index; each
  // skips subsumption tests its own interval/size window rules out (so
  // subsume_checks_skipped is per-worker-schedule dependent — see OpMetrics).
  const bool prefilter = SummaryPrefilterEnabled();
  const std::vector<ReduceEntry> by_min = BuildReduceIndex(set);
  struct ReduceChunk {
    std::vector<uint8_t> eliminated;
    size_t eliminated_count = 0;
    OpMetrics metrics;
    JoinArena arena;
  };
  std::vector<ReduceChunk> chunks(pool->parallelism());
  pool->ParallelFor(n, [&](unsigned chunk, size_t begin, size_t end) {
    ReduceChunk& out = chunks[chunk];
    out.eliminated.assign(n, 0);
    for (size_t i = begin; i < end; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        Fragment joined =
            JoinWithArena(document, set[i], set[j], &out.arena, &out.metrics);
        if (!prefilter) {
          for (size_t t = 0; t < n; ++t) {
            if (t == i || t == j || out.eliminated[t]) continue;
            if (joined.ContainsFragment(set[t])) out.eliminated[t] = 1;
          }
          continue;
        }
        size_t live_targets = (n - out.eliminated_count) -
                              (out.eliminated[i] ? 0 : 1) -
                              (out.eliminated[j] ? 0 : 1);
        size_t checks = 0;
        auto [lo, hi] =
            ReduceWindow(by_min, joined.min_pre(), joined.max_pre());
        for (size_t k = lo; k < hi; ++k) {
          const ReduceEntry& e = by_min[k];
          size_t t = e.index;
          if (t == i || t == j || out.eliminated[t]) continue;
          if (e.max > joined.max_pre() ||
              e.size > static_cast<uint32_t>(joined.size())) {
            continue;
          }
          ++checks;
          if (joined.ContainsFragment(set[t])) {
            out.eliminated[t] = 1;
            ++out.eliminated_count;
          }
        }
        out.metrics.subsume_checks_skipped += live_targets - checks;
      }
    }
  });
  std::vector<uint8_t> eliminated(n, 0);
  for (const ReduceChunk& chunk : chunks) {
    if (metrics != nullptr) metrics->Merge(chunk.metrics);
    for (size_t t = 0; t < chunk.eliminated.size(); ++t) {
      eliminated[t] |= chunk.eliminated[t];
    }
  }
  FragmentSet out;
  for (size_t t = 0; t < n; ++t) {
    if (!eliminated[t]) out.Insert(set[t]);
  }
  return out;
}

FragmentSet FixedPointNaiveParallel(const Document& document,
                                    const FragmentSet& set, ThreadPool* pool,
                                    OpMetrics* metrics,
                                    const CancelToken* cancel) {
  if (pool == nullptr) return FixedPointNaive(document, set, metrics, cancel);
  FragmentPool frags;
  FragmentRefSet base = InternSet(&frags, set);
  FragmentRefSet current = base;
  while (!ShouldStop(cancel)) {
    if (metrics != nullptr) ++metrics->fixed_point_iterations;
    std::vector<FragmentRef> produced = ParallelPairJoins(
        document, &frags, current.refs(), base.refs(), /*filter=*/nullptr,
        /*context=*/nullptr, /*dag=*/nullptr, pool, metrics);
    // The union step: O(new refs), no vector copies (the serial kernel
    // re-copies the whole working set here).
    size_t before = current.size();
    for (FragmentRef ref : produced) current.Insert(ref);
    if (current.size() == before) break;
  }
  return current.Materialize(frags);
}

FragmentSet FixedPointReducedParallel(const Document& document,
                                      const FragmentSet& set, ThreadPool* pool,
                                      OpMetrics* metrics,
                                      const CancelToken* cancel) {
  if (pool == nullptr) {
    return FixedPointReduced(document, set, metrics, cancel);
  }
  if (set.size() <= 1) return set;
  FragmentSet reduced = ReduceParallel(document, set, pool, metrics);
  size_t k = std::max<size_t>(reduced.size(), 1);
  FragmentPool frags;
  FragmentRefSet base = InternSet(&frags, set);
  FragmentRefSet current = base;
  // ⋈_k(F): k−1 unchecked pairwise self-joins (Theorem 1), each fanned out.
  for (size_t i = 1; i < k && !ShouldStop(cancel); ++i) {
    if (metrics != nullptr) ++metrics->fixed_point_iterations;
    std::vector<FragmentRef> produced = ParallelPairJoins(
        document, &frags, current.refs(), base.refs(), /*filter=*/nullptr,
        /*context=*/nullptr, /*dag=*/nullptr, pool, metrics);
    current = Deduped(produced);
  }
  return current.Materialize(frags);
}

FragmentSet FixedPointFilteredParallel(const Document& document,
                                       const FragmentSet& set,
                                       const FilterPtr& filter,
                                       const FilterContext& context,
                                       ThreadPool* pool, OpMetrics* metrics,
                                       const CancelToken* cancel,
                                       const doc::SubtreeClassIndex* dag) {
  if (pool == nullptr) {
    return FixedPointFiltered(document, set, filter, context, metrics, cancel,
                              dag);
  }
  const doc::SubtreeClassIndex* usable_dag =
      DagUsable(dag, filter) ? dag : nullptr;
  // Base selection first (cheap, |F| filter evals) stays serial so the eval
  // counters accumulate in the serial order.
  FragmentSet selected = Select(set, filter, context, metrics, usable_dag);
  FragmentPool frags;
  FragmentRefSet base = InternSet(&frags, selected);
  FragmentRefSet current = base;
  while (!ShouldStop(cancel)) {
    if (metrics != nullptr) ++metrics->fixed_point_iterations;
    std::vector<FragmentRef> produced =
        ParallelPairJoins(document, &frags, current.refs(), base.refs(),
                          filter.get(), &context, usable_dag, pool, metrics);
    size_t before = current.size();
    for (FragmentRef ref : produced) current.Insert(ref);
    if (current.size() == before) break;
  }
  return current.Materialize(frags);
}

}  // namespace xfrag::algebra
