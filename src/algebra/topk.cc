#include "algebra/topk.h"

#include <algorithm>
#include <limits>

namespace xfrag::algebra {

double JoinScorer::QuickUpperBound(const JoinBounds&) const {
  return std::numeric_limits<double>::infinity();
}

bool TopKCollector::Offer(Fragment fragment, double score) {
  if (k_ == 0) return false;
  if (score < EffectiveFloor()) {
    // The floor promises k distinct answers at or above it exist globally,
    // so this candidate cannot be among the k best. Count it only when the
    // heap alone would have retained it (conservatively ignoring possible
    // duplication against a retained entry).
    bool heap_would_retain = heap_.size() < k_;
    if (!heap_would_retain) {
      const ScoredFragment& min = store_[heap_.front()];
      heap_would_retain =
          score > min.score || (score == min.score && fragment < min.fragment);
    }
    if (heap_would_retain) {
      ++floor_rejections_;
      if (score > max_floor_rejected_) max_floor_rejected_ = score;
    }
    return false;
  }
  ScoredFragment candidate{std::move(fragment), score};
  if (full() && !OutranksScored(candidate, store_[heap_.front()])) {
    // Beaten by (or equal to) the current minimum. Covers duplicates of the
    // minimum itself: a duplicate has the identical (score, fragment) key,
    // and OutranksScored is strict.
    return false;
  }
  // Duplicate of a retained non-minimum entry?
  auto chain = members_.find(candidate.fragment.Hash());
  if (chain != members_.end()) {
    for (uint32_t slot : chain->second) {
      if (store_[slot].fragment == candidate.fragment) return false;
    }
  }
  auto heap_less = [this](uint32_t a, uint32_t b) { return HeapLess(a, b); };
  uint32_t slot;
  if (full()) {
    // Evict the minimum and reuse its slot.
    std::pop_heap(heap_.begin(), heap_.end(), heap_less);
    slot = heap_.back();
    heap_.pop_back();
    ScoredFragment& evicted = store_[slot];
    auto evicted_chain = members_.find(evicted.fragment.Hash());
    auto& slots = evicted_chain->second;
    slots.erase(std::find(slots.begin(), slots.end(), slot));
    if (slots.empty()) members_.erase(evicted_chain);
    evicted = std::move(candidate);
  } else {
    slot = static_cast<uint32_t>(store_.size());
    store_.push_back(std::move(candidate));
  }
  members_[store_[slot].fragment.Hash()].push_back(slot);
  heap_.push_back(slot);
  std::push_heap(heap_.begin(), heap_.end(), heap_less);
  return true;
}

std::vector<ScoredFragment> TopKCollector::TakeSorted() {
  std::vector<ScoredFragment> out;
  out.reserve(heap_.size());
  for (uint32_t slot : heap_) out.push_back(std::move(store_[slot]));
  std::sort(out.begin(), out.end(), OutranksScored);
  store_.clear();
  heap_.clear();
  members_.clear();
  return out;
}

}  // namespace xfrag::algebra
