// Kernel-side machinery for DAG-compressed (class-aware) evaluation.
//
// A SubtreeClassIndex (doc/subtree_classes.h) marks every node's duplication
// anchor: the highest ancestor-or-self whose subtree occurs >= 2 times in the
// document. A fragment whose root has an anchor lives entirely inside one
// occurrence of that duplicated subtree; its *local form* — (class of the
// anchor, depth of the anchor, member offsets relative to the anchor) —
// identifies the fragment up to which occurrence it lives in. Two fragments
// with equal local forms are translates of each other inside isomorphic,
// equally-deep copies of the same subtree.
//
// The join kernels exploit this: for a candidate pair whose two fragments
// share one duplication anchor, the entire evaluation outcome (summary
// prefilter verdict, the join itself, the pushed filter, the acceptance
// predicate, the exact score) is a function of the two local forms only —
// every structural primitive involved (LCA, connecting paths, depths, sizes,
// textual content, posting membership) commutes with the subtree isomorphism.
// So the kernel evaluates one representative pair per (form, form) key and
// *replays* the outcome for every other occurrence: counters advance by
// exactly the deltas the real evaluation would have produced, and surviving
// answers are multiplied out by re-basing the recorded offsets onto the
// pair's own anchor. See docs/ALGEBRA.md, "DAG-compressed evaluation".
//
// Validity requires every predicate involved to be translation-invariant
// (Filter::TranslationInvariant); callers gate on DagUsable before passing a
// SubtreeClassIndex into a kernel.

#ifndef XFRAG_ALGEBRA_DAG_CACHE_H_
#define XFRAG_ALGEBRA_DAG_CACHE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "algebra/filter.h"
#include "algebra/fragment_set.h"
#include "doc/subtree_classes.h"

namespace xfrag::algebra {

/// Sentinel: the fragment has no duplication anchor, so no class-level
/// outcome can be shared with any other fragment.
inline constexpr uint32_t kNoLocalForm = 0xFFFFFFFFu;

/// \brief Interner of fragment local forms for one (document, class index).
///
/// Not thread-safe; the serial kernels own one per invocation and the
/// parallel kernels one per worker chunk (per-chunk interning keeps the
/// kernels lock-free — only the schedule-dependent dag counters differ
/// between thread counts, never results or logical counters).
class DagFormTable {
 public:
  DagFormTable(const Document& document, const doc::SubtreeClassIndex& dag)
      : document_(document), dag_(dag) {}

  /// Local-form id of `f`, interning a new id on first sight. Returns
  /// kNoLocalForm (and leaves `*anchor_out` alone) when f's root has no
  /// duplication anchor; otherwise stores the anchor in `*anchor_out`.
  uint32_t Intern(const Fragment& f, NodeId* anchor_out);

  /// Interns every member of `set`; parallel arrays of form ids and anchors.
  void InternSet(const FragmentSet& set, std::vector<uint32_t>* forms,
                 std::vector<NodeId>* anchors);

  /// Distinct local forms interned so far.
  size_t size() const { return ids_.size(); }

 private:
  struct FormKey {
    doc::SubtreeClassId anchor_class = 0;
    uint32_t anchor_depth = 0;
    std::vector<NodeId> rel_nodes;  // member - anchor, ascending
    bool operator==(const FormKey& o) const {
      return anchor_class == o.anchor_class && anchor_depth == o.anchor_depth &&
             rel_nodes == o.rel_nodes;
    }
  };
  struct FormKeyHash {
    size_t operator()(const FormKey& k) const;
  };

  const Document& document_;
  const doc::SubtreeClassIndex& dag_;
  std::unordered_map<FormKey, uint32_t, FormKeyHash> ids_;
};

/// \brief Recorded outcome of one representative pair evaluation.
struct DagPairOutcome {
  enum Kind : uint8_t {
    /// The summary prefilter rejected the pair in O(1).
    kPrefilterRejected,
    /// The join was materialized and the pushed filter rejected it.
    kFilterRejected,
    /// (Top-k kernel) the join passed the filter but the acceptance
    /// predicate rejected it.
    kAcceptRejected,
    /// The join passed every predicate; `rel_nodes`/`rel_max_depth` hold its
    /// shape relative to the pair's anchor, `score` its exact score (top-k
    /// kernel only).
    kSurvived,
  };
  Kind kind = kSurvived;
  std::vector<NodeId> rel_nodes;
  uint32_t rel_max_depth = 0;
  double score = 0.0;
};

/// Pair-outcome cache, keyed by the two operands' local-form ids.
using DagOutcomeMap = std::unordered_map<uint64_t, DagPairOutcome>;

inline uint64_t DagPairKey(uint32_t form1, uint32_t form2) {
  return (static_cast<uint64_t>(form1) << 32) | form2;
}

/// \brief Re-bases a recorded survivor onto `anchor`.
Fragment TranslateOutcome(const DagPairOutcome& outcome, NodeId anchor,
                          uint32_t anchor_depth);

/// \brief True when the class-aware path may run: a class index is present,
/// the process-wide switch (SetDagCompressionEnabled) is on, the document
/// actually contains duplicated subtrees, and the pushed filter commutes
/// with subtree translation. Callers with additional opaque predicates (the
/// top-k acceptance lambda, the scorer) are responsible for only passing a
/// class index alongside translation-invariant ones.
bool DagUsable(const doc::SubtreeClassIndex* dag, const FilterPtr& filter);

}  // namespace xfrag::algebra

#endif  // XFRAG_ALGEBRA_DAG_CACHE_H_
