#include "algebra/fragment_pool.h"

namespace xfrag::algebra {

FragmentRef FragmentPool::Intern(Fragment fragment) {
  uint64_t hash = fragment.Hash();
  auto it = by_hash_.find(hash);
  if (it != by_hash_.end()) {
    for (FragmentRef ref : it->second) {
      if (storage_[ref] == fragment) return ref;
    }
  }
  FragmentRef ref = static_cast<FragmentRef>(storage_.size());
  by_hash_[hash].push_back(ref);
  storage_.push_back(std::move(fragment));
  return ref;
}

FragmentSet FragmentRefSet::Materialize(const FragmentPool& pool) const {
  FragmentSet out;
  for (FragmentRef ref : ordered_) out.Insert(pool.Get(ref));
  return out;
}

FragmentRefSet InternSet(FragmentPool* pool, const FragmentSet& set) {
  FragmentRefSet out;
  for (const Fragment& f : set) out.Insert(pool->Intern(f));
  return out;
}

}  // namespace xfrag::algebra
