// Hash-consing of fragments. The serial operators copy whole node-id vectors
// every time a set is unioned or deduplicated (FixedPointNaive's
// `current.Union(joined)` copies the entire working set per iteration). A
// FragmentPool interns each distinct canonical fragment exactly once and
// hands out small stable FragmentRef handles; a FragmentRefSet is then an
// ordered dedup set of 32-bit refs, so growing a fixed point moves integers,
// not vectors. The idea mirrors DAG-compression of repeated XML substructure
// (Böttcher et al.): identical fragments share one physical representation.

#ifndef XFRAG_ALGEBRA_FRAGMENT_POOL_H_
#define XFRAG_ALGEBRA_FRAGMENT_POOL_H_

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "algebra/fragment.h"
#include "algebra/fragment_set.h"

namespace xfrag::algebra {

/// Stable handle to an interned fragment (index into its FragmentPool).
using FragmentRef = uint32_t;

/// \brief An interner (hash-consing pool) for canonical fragments.
///
/// Equal fragments intern to the same ref, so ref equality is fragment
/// equality. Interned fragments have stable addresses for the pool's
/// lifetime (deque storage; nothing is ever erased). Not thread-safe: the
/// parallel kernels intern only at the single-threaded merge barrier.
class FragmentPool {
 public:
  FragmentPool() = default;

  /// \brief Returns the ref for `fragment`, interning it on first sight.
  FragmentRef Intern(Fragment fragment);

  /// The interned fragment for `ref`.
  const Fragment& Get(FragmentRef ref) const { return storage_[ref]; }

  /// Number of distinct interned fragments.
  size_t size() const { return storage_.size(); }

 private:
  std::deque<Fragment> storage_;
  // Hash → refs with that hash (collision chain kept tiny in practice).
  std::unordered_map<uint64_t, std::vector<FragmentRef>> by_hash_;
};

/// \brief An insertion-ordered deduplicating set of FragmentRefs.
///
/// All refs must come from one FragmentPool. Mirrors FragmentSet semantics
/// (first occurrence wins, deterministic iteration order) but Insert moves a
/// 32-bit integer instead of hashing and storing a node vector.
class FragmentRefSet {
 public:
  FragmentRefSet() = default;

  /// \brief Inserts `ref`; returns true when it was not yet present.
  bool Insert(FragmentRef ref) {
    if (!members_.insert(ref).second) return false;
    ordered_.push_back(ref);
    return true;
  }

  bool Contains(FragmentRef ref) const { return members_.count(ref) > 0; }

  size_t size() const { return ordered_.size(); }
  bool empty() const { return ordered_.empty(); }

  /// Refs in insertion order.
  const std::vector<FragmentRef>& refs() const { return ordered_; }
  FragmentRef operator[](size_t i) const { return ordered_[i]; }

  /// \brief Copies the referenced fragments into a FragmentSet, preserving
  /// insertion order — the single materialization copy at an operator's
  /// output boundary.
  FragmentSet Materialize(const FragmentPool& pool) const;

 private:
  std::vector<FragmentRef> ordered_;
  std::unordered_set<FragmentRef> members_;
};

/// \brief Interns every member of `set` in iteration order.
FragmentRefSet InternSet(FragmentPool* pool, const FragmentSet& set);

}  // namespace xfrag::algebra

#endif  // XFRAG_ALGEBRA_FRAGMENT_POOL_H_
