// Top-k machinery for score-bounded enumeration (docs/ALGEBRA.md, "Top-k and
// score bounds").
//
// A JoinScorer assigns every fragment an exact relevance score and, crucially,
// can bound from above the score of a *prospective* join f1 ⋈ f2 using only
// the O(1) JoinBounds computed from the operands' summary headers — before
// the join is materialized. The bound is anti-monotonic in spirit: growing a
// fragment can only add penalty and cannot add term hits beyond what its
// pre-order interval admits, so `UpperBound(bounds) >= Score(f1 ⋈ f2)` always.
//
// A TopKCollector is a fixed-capacity min-heap of the current k best scored
// fragments under the total order (score descending, canonical fragment order
// ascending). Because the order is total and duplicates are rejected, the
// collector's final content is a pure function of the *set* of offered
// (fragment, score) pairs — independent of offer order. That is what makes
// the parallel top-k kernel bit-identical across thread counts: each worker
// prunes against its own heap (sound: a pruned pair could not enter even a
// fuller heap), and the per-chunk survivors are re-offered into one final
// collector at the barrier.

#ifndef XFRAG_ALGEBRA_TOPK_H_
#define XFRAG_ALGEBRA_TOPK_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "algebra/filter.h"
#include "algebra/fragment.h"

namespace xfrag::algebra {

/// \brief Exact scorer plus a sound O(1) score upper bound for joins.
///
/// Implementations must be safe to call concurrently from multiple workers
/// (the parallel kernel shares one scorer across chunks), so Score and
/// UpperBound must be logically const and touch only read-only state.
class JoinScorer {
 public:
  virtual ~JoinScorer() = default;

  /// The exact relevance score of `fragment`. Must be deterministic: the
  /// same fragment always yields the bit-identical double.
  virtual double Score(const Fragment& fragment) const = 0;

  /// \brief An upper bound on Score(f1 ⋈ f2) computed from the join's
  /// summary bounds alone.
  ///
  /// Soundness contract: for every pair (f1, f2) with bounds
  /// b = ComputeJoinBounds(doc, s1, s2), UpperBound(b) >= Score(f1 ⋈ f2).
  /// The kernels reject a pair only when the bound is *strictly* below the
  /// current k-th best score, so ties are never wrongly pruned.
  virtual double UpperBound(const JoinBounds& bounds) const = 0;

  /// \brief A cheaper (and weaker) bound tried before UpperBound.
  ///
  /// The kernels evaluate bounds coarsest-first: a pair rejected by
  /// QuickUpperBound never pays for UpperBound (which may, e.g., binary-search
  /// posting lists). Must satisfy the same soundness contract —
  /// QuickUpperBound(b) >= Score(f1 ⋈ f2) — which UpperBound already
  /// guarantees, so overriding is optional; the default is "no information".
  virtual double QuickUpperBound(const JoinBounds& bounds) const;

  /// \brief Opt-in to the per-fragment *evidence* bound (see below).
  ///
  /// Interval bounds (QuickUpperBound / UpperBound) look only at where a
  /// join could sit; they charge it for every scoring opportunity inside its
  /// pre-order interval, which is hopeless for pairs that straddle most of a
  /// document. The evidence bound instead charges a prospective join only
  /// for what its *operands* can actually reach: every member of f1 ⋈ f2 is
  /// an ancestor-or-self of some member of f1 ∪ f2 (the join is a union of
  /// tree paths, and each node on a path between u and v is an ancestor of
  /// u or of v), so any per-fragment score contribution of the join is
  /// bounded by the operands' ancestor-closure contributions. Scorers that
  /// can express their score that way return true here; the kernels then
  /// precompute FragmentEvidence once per *input* fragment and combine two
  /// summaries per pair in O(summary size).
  virtual bool HasEvidenceBound() const { return false; }

  /// \brief A per-fragment evidence summary for EvidenceUpperBound.
  ///
  /// Opaque to the kernels: they only pass it back to EvidenceUpperBound of
  /// the same scorer. Called once per input fragment (never per pair), so it
  /// may do real work — e.g. count, per query term, the posting nodes whose
  /// subtree contains a member of `fragment`. Only consulted when
  /// HasEvidenceBound() is true.
  virtual std::vector<double> FragmentEvidence(
      const Fragment& /*fragment*/) const {
    return {};
  }

  /// \brief An upper bound on Score(f1 ⋈ f2) from the operands' evidence
  /// summaries plus the join's summary bounds.
  ///
  /// Soundness contract: for every pair (f1, f2),
  /// EvidenceUpperBound(FragmentEvidence(f1), FragmentEvidence(f2), b)
  /// >= Score(f1 ⋈ f2). The kernels take the minimum with the interval
  /// bounds implicitly by testing each against the collector separately.
  virtual double EvidenceUpperBound(const std::vector<double>& left,
                                    const std::vector<double>& right,
                                    const JoinBounds& bounds) const {
    (void)left;
    (void)right;
    (void)bounds;
    return std::numeric_limits<double>::infinity();
  }

  /// \brief An upper bound on Score(f1 ⋈ f2) for a fixed f1 and f2 ranging
  /// over a whole set.
  ///
  /// `right_max` is the termwise maximum of the set's FragmentEvidence
  /// summaries and `join_size_lower` a lower bound on |f1 ⋈ f2| valid for
  /// every f2 in the set (e.g. |f1|). Soundness contract: the result
  /// dominates EvidenceUpperBound(left, FragmentEvidence(f2), b) — and hence
  /// Score(f1 ⋈ f2) — for every f2 in the set, at the computed-doubles
  /// level. The kernels use it twice: with the true termwise maximum to skip
  /// an entire row of pairs in one arithmetic test once the collector's
  /// floor outgrows everything f1 could reach (the skipped row is counted in
  /// bulk: pairs_considered and pairs_rejected_score advance by the row
  /// width, deterministically), and with a single fragment's evidence as a
  /// per-pair pre-check that rejects doomed pairs before ComputeJoinBounds
  /// pays for an LCA.
  virtual double EvidenceUpperBoundFromSize(
      const std::vector<double>& left, const std::vector<double>& right_max,
      uint32_t join_size_lower) const {
    (void)left;
    (void)right_max;
    (void)join_size_lower;
    return std::numeric_limits<double>::infinity();
  }
};

/// A fragment with its exact score.
struct ScoredFragment {
  Fragment fragment;
  double score = 0.0;
};

/// True iff `a` outranks `b`: higher score first, canonical fragment order
/// (Fragment::operator<) breaking ties. A strict weak (in fact total) order
/// over distinct fragments.
inline bool OutranksScored(const ScoredFragment& a, const ScoredFragment& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.fragment < b.fragment;
}

/// \brief Fixed-capacity collector of the k best distinct scored fragments.
///
/// Offers are deduplicated by fragment equality (cached hashes, exact
/// comparison on collision), so the same fragment produced by many candidate
/// pairs occupies one slot. The retained set after any sequence of offers is
/// exactly the k best distinct fragments offered, independent of order.
///
/// A collector may additionally be seeded with an external *score floor*
/// (SeedFloor / AttachLiveFloor): a promise by the caller that at least k
/// distinct answers with score >= floor exist globally, even if they will
/// never be offered to this collector. Candidates strictly below the floor
/// are rejected as if the heap were already full of floor-scoring entries.
/// Soundness: if the promise holds, every rejected candidate is outranked by
/// k others, so the global k best are unaffected; candidates *tying* the
/// floor are never rejected because they could still win on canonical
/// fragment order against the floor's witnesses.
class TopKCollector {
 public:
  explicit TopKCollector(size_t k) : k_(k) {}

  size_t k() const { return k_; }
  size_t size() const { return heap_.size(); }
  bool full() const { return heap_.size() >= k_; }

  /// \brief Raises the static score floor to at least `floor` (monotonic:
  /// a lower value than the current floor is ignored).
  void SeedFloor(double floor) {
    if (floor > floor_) floor_ = floor;
  }

  /// \brief Attaches an external, concurrently-raised floor. The collector
  /// reads it with memory_order_relaxed on each bound check; the pointee
  /// must outlive the collector (or be detached by passing nullptr). A racy
  /// stale read is always sound — floors only ever rise through sound
  /// values, so acting on an older (lower) floor merely prunes less.
  void AttachLiveFloor(const std::atomic<double>* live) { live_floor_ = live; }

  /// The static floor seeded so far (-inf when never seeded).
  double seeded_floor() const { return floor_; }

  /// The attached live floor, or nullptr when none (see AttachLiveFloor).
  const std::atomic<double>* live_floor() const { return live_floor_; }

  /// \brief The floor currently in force: max of the seeded static floor and
  /// the attached live floor (if any).
  double EffectiveFloor() const {
    double floor = floor_;
    if (live_floor_ != nullptr) {
      double live = live_floor_->load(std::memory_order_relaxed);
      if (live > floor) floor = live;
    }
    return floor;
  }

  /// Number of candidates rejected *because of the external floor* (i.e.
  /// they would have been retained by an unseeded collector in the same
  /// state). Offers the heap itself would reject anyway are not counted.
  uint64_t floor_rejections() const { return floor_rejections_; }

  /// The best score among floor-rejected candidates (-inf when none).
  double max_floor_rejected() const { return max_floor_rejected_; }

  /// \brief Debug audit: true iff the floor provably never suppressed a
  /// top-k answer *of this collector's offer stream*.
  ///
  /// Clean when nothing was floor-rejected, or when the heap filled to
  /// capacity with every retained score at or above the best rejected score
  /// (then each rejected candidate is outranked by k retained ones). A dirty
  /// audit does not prove the floor unsound — a distributed shard legally
  /// ends with fewer than k local answers — so callers opt in only where the
  /// full answer stream is offered locally (see ExecutorOptions).
  bool FloorAuditClean() const {
    if (floor_rejections_ == 0) return true;
    if (heap_.size() < k_) return false;
    return store_[heap_.front()].score >= max_floor_rejected_;
  }

  /// \brief True iff a candidate whose score is at most `upper` could still
  /// enter the collector.
  ///
  /// False when the heap is full and `upper` is strictly below the current
  /// k-th best score — a candidate tying the minimum could still win on
  /// canonical fragment order, so equality never rejects. An external floor
  /// (see SeedFloor) rejects strictly-below candidates the same way even
  /// before the heap fills.
  bool CouldAccept(double upper) const {
    if (k_ == 0) return false;
    if (upper < EffectiveFloor()) {
      // Count only rejections the heap alone would not have produced, so
      // floor_rejections() isolates the floor's effect. `upper` bounds the
      // true score from above, so max_floor_rejected_ stays conservative.
      if (heap_.size() < k_ || upper >= store_[heap_.front()].score) {
        ++floor_rejections_;
        if (upper > max_floor_rejected_) max_floor_rejected_ = upper;
      }
      return false;
    }
    if (heap_.size() < k_) return true;
    return upper >= store_[heap_.front()].score;
  }

  /// \brief True iff an equal fragment is currently retained.
  ///
  /// Lets enumeration kernels skip scoring a joined fragment that is a
  /// duplicate of a retained answer — Offer rejects duplicates regardless of
  /// score, and duplicates share the retained entry's score by purity of the
  /// scorer, so skipping them cannot change the result.
  bool Contains(const Fragment& fragment) const {
    auto chain = members_.find(fragment.Hash());
    if (chain == members_.end()) return false;
    for (uint32_t slot : chain->second) {
      if (store_[slot].fragment == fragment) return true;
    }
    return false;
  }

  /// \brief Offers one scored fragment; returns true iff it was retained
  /// (possibly evicting the previous minimum). Candidates with score
  /// strictly below the effective floor are rejected (see SeedFloor).
  bool Offer(Fragment fragment, double score);

  /// \brief Folds another collector's floor-audit counters into this one.
  ///
  /// The parallel kernel prunes inside per-worker private collectors; the
  /// barrier calls this so the output collector's floor_rejections() /
  /// FloorAuditClean() cover every chunk's rejections, not just its own.
  void MergeFloorAudit(const TopKCollector& other) {
    floor_rejections_ += other.floor_rejections_;
    if (other.max_floor_rejected_ > max_floor_rejected_) {
      max_floor_rejected_ = other.max_floor_rejected_;
    }
  }

  /// \brief Moves the retained fragments out, best first. The collector is
  /// left empty.
  std::vector<ScoredFragment> TakeSorted();

 private:
  /// Heap comparator: "a outranks b" as less-than makes std::*_heap keep the
  /// *worst* retained entry at heap_.front().
  bool HeapLess(uint32_t a, uint32_t b) const {
    return OutranksScored(store_[a], store_[b]);
  }

  size_t k_;
  /// External score floor (see SeedFloor); -inf means "no floor".
  double floor_ = -std::numeric_limits<double>::infinity();
  /// Optional concurrently-raised floor (see AttachLiveFloor); not owned.
  const std::atomic<double>* live_floor_ = nullptr;
  /// Floor-audit state; mutable because CouldAccept is logically const but
  /// must record rejections the heap alone would not have produced.
  mutable uint64_t floor_rejections_ = 0;
  mutable double max_floor_rejected_ =
      -std::numeric_limits<double>::infinity();
  /// Stable slots; heap_ and members_ index into it so fragments never move
  /// while heap positions shuffle.
  std::vector<ScoredFragment> store_;
  std::vector<uint32_t> heap_;
  /// Fragment hash → slots with that hash (collision chain), for O(1)
  /// duplicate detection.
  std::unordered_map<uint64_t, std::vector<uint32_t>> members_;
};

}  // namespace xfrag::algebra

#endif  // XFRAG_ALGEBRA_TOPK_H_
