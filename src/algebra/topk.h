// Top-k machinery for score-bounded enumeration (docs/ALGEBRA.md, "Top-k and
// score bounds").
//
// A JoinScorer assigns every fragment an exact relevance score and, crucially,
// can bound from above the score of a *prospective* join f1 ⋈ f2 using only
// the O(1) JoinBounds computed from the operands' summary headers — before
// the join is materialized. The bound is anti-monotonic in spirit: growing a
// fragment can only add penalty and cannot add term hits beyond what its
// pre-order interval admits, so `UpperBound(bounds) >= Score(f1 ⋈ f2)` always.
//
// A TopKCollector is a fixed-capacity min-heap of the current k best scored
// fragments under the total order (score descending, canonical fragment order
// ascending). Because the order is total and duplicates are rejected, the
// collector's final content is a pure function of the *set* of offered
// (fragment, score) pairs — independent of offer order. That is what makes
// the parallel top-k kernel bit-identical across thread counts: each worker
// prunes against its own heap (sound: a pruned pair could not enter even a
// fuller heap), and the per-chunk survivors are re-offered into one final
// collector at the barrier.

#ifndef XFRAG_ALGEBRA_TOPK_H_
#define XFRAG_ALGEBRA_TOPK_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "algebra/filter.h"
#include "algebra/fragment.h"

namespace xfrag::algebra {

/// \brief Exact scorer plus a sound O(1) score upper bound for joins.
///
/// Implementations must be safe to call concurrently from multiple workers
/// (the parallel kernel shares one scorer across chunks), so Score and
/// UpperBound must be logically const and touch only read-only state.
class JoinScorer {
 public:
  virtual ~JoinScorer() = default;

  /// The exact relevance score of `fragment`. Must be deterministic: the
  /// same fragment always yields the bit-identical double.
  virtual double Score(const Fragment& fragment) const = 0;

  /// \brief An upper bound on Score(f1 ⋈ f2) computed from the join's
  /// summary bounds alone.
  ///
  /// Soundness contract: for every pair (f1, f2) with bounds
  /// b = ComputeJoinBounds(doc, s1, s2), UpperBound(b) >= Score(f1 ⋈ f2).
  /// The kernels reject a pair only when the bound is *strictly* below the
  /// current k-th best score, so ties are never wrongly pruned.
  virtual double UpperBound(const JoinBounds& bounds) const = 0;

  /// \brief A cheaper (and weaker) bound tried before UpperBound.
  ///
  /// The kernels evaluate bounds coarsest-first: a pair rejected by
  /// QuickUpperBound never pays for UpperBound (which may, e.g., binary-search
  /// posting lists). Must satisfy the same soundness contract —
  /// QuickUpperBound(b) >= Score(f1 ⋈ f2) — which UpperBound already
  /// guarantees, so overriding is optional; the default is "no information".
  virtual double QuickUpperBound(const JoinBounds& bounds) const;
};

/// A fragment with its exact score.
struct ScoredFragment {
  Fragment fragment;
  double score = 0.0;
};

/// True iff `a` outranks `b`: higher score first, canonical fragment order
/// (Fragment::operator<) breaking ties. A strict weak (in fact total) order
/// over distinct fragments.
inline bool OutranksScored(const ScoredFragment& a, const ScoredFragment& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.fragment < b.fragment;
}

/// \brief Fixed-capacity collector of the k best distinct scored fragments.
///
/// Offers are deduplicated by fragment equality (cached hashes, exact
/// comparison on collision), so the same fragment produced by many candidate
/// pairs occupies one slot. The retained set after any sequence of offers is
/// exactly the k best distinct fragments offered, independent of order.
class TopKCollector {
 public:
  explicit TopKCollector(size_t k) : k_(k) {}

  size_t k() const { return k_; }
  size_t size() const { return heap_.size(); }
  bool full() const { return heap_.size() >= k_; }

  /// \brief True iff a candidate whose score is at most `upper` could still
  /// enter the collector.
  ///
  /// False only when the heap is full and `upper` is strictly below the
  /// current k-th best score — a candidate tying the minimum could still win
  /// on canonical fragment order, so equality never rejects.
  bool CouldAccept(double upper) const {
    if (k_ == 0) return false;
    if (heap_.size() < k_) return true;
    return upper >= store_[heap_.front()].score;
  }

  /// \brief True iff an equal fragment is currently retained.
  ///
  /// Lets enumeration kernels skip scoring a joined fragment that is a
  /// duplicate of a retained answer — Offer rejects duplicates regardless of
  /// score, and duplicates share the retained entry's score by purity of the
  /// scorer, so skipping them cannot change the result.
  bool Contains(const Fragment& fragment) const {
    auto chain = members_.find(fragment.Hash());
    if (chain == members_.end()) return false;
    for (uint32_t slot : chain->second) {
      if (store_[slot].fragment == fragment) return true;
    }
    return false;
  }

  /// \brief Offers one scored fragment; returns true iff it was retained
  /// (possibly evicting the previous minimum).
  bool Offer(Fragment fragment, double score);

  /// \brief Moves the retained fragments out, best first. The collector is
  /// left empty.
  std::vector<ScoredFragment> TakeSorted();

 private:
  /// Heap comparator: "a outranks b" as less-than makes std::*_heap keep the
  /// *worst* retained entry at heap_.front().
  bool HeapLess(uint32_t a, uint32_t b) const {
    return OutranksScored(store_[a], store_[b]);
  }

  size_t k_;
  /// Stable slots; heap_ and members_ index into it so fragments never move
  /// while heap positions shuffle.
  std::vector<ScoredFragment> store_;
  std::vector<uint32_t> heap_;
  /// Fragment hash → slots with that hash (collision chain), for O(1)
  /// duplicate detection.
  std::unordered_map<uint64_t, std::vector<uint32_t>> members_;
};

}  // namespace xfrag::algebra

#endif  // XFRAG_ALGEBRA_TOPK_H_
