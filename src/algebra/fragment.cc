#include "algebra/fragment.h"

#include <atomic>
#include <unordered_set>

#include "common/logging.h"
#include "common/strings.h"

namespace xfrag::algebra {

namespace {

// Process-wide count of O(|f|) hash scans, exposed through
// HashComputationsForTest so tests can prove interning never rehashes.
std::atomic<uint64_t> g_hash_computations{0};

}  // namespace

StatusOr<Fragment> Fragment::Create(const Document& document,
                                    std::vector<NodeId> nodes) {
  if (nodes.empty()) {
    return Status::InvalidArgument("a fragment must contain at least one node");
  }
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  if (nodes.back() >= document.size()) {
    return Status::OutOfRange(
        StrFormat("node id %u out of range (document has %zu nodes)",
                  nodes.back(), document.size()));
  }
  // Connectivity: every member except the root (minimal pre-order id) must
  // have its parent inside the set; then the induced subgraph is a tree
  // rooted at nodes[0].
  for (size_t i = 1; i < nodes.size(); ++i) {
    NodeId parent = document.parent(nodes[i]);
    if (parent == doc::kNoNode ||
        !std::binary_search(nodes.begin(), nodes.end(), parent)) {
      return Status::InvalidArgument(
          StrFormat("fragment is not connected: parent of node %u is outside "
                    "the node set",
                    nodes[i]));
    }
  }
  uint32_t max_depth = 0;
  for (NodeId n : nodes) max_depth = std::max(max_depth, document.depth(n));
  return Fragment::FromSortedUnchecked(std::move(nodes), max_depth);
}

uint64_t Fragment::ComputeHash(const std::vector<NodeId>& nodes) {
  g_hash_computations.fetch_add(1, std::memory_order_relaxed);
  // FNV-1a over node ids with a 64-bit avalanche finisher.
  uint64_t h = 0xcbf29ce484222325ULL;
  for (NodeId n : nodes) {
    h ^= n;
    h *= 0x100000001b3ULL;
  }
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return h;
}

uint64_t Fragment::HashComputationsForTest() {
  return g_hash_computations.load(std::memory_order_relaxed);
}

std::string Fragment::ToString() const {
  std::string out = "⟨";
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (i > 0) out += ",";
    out += StrFormat("n%u", nodes_[i]);
  }
  out += "⟩";
  return out;
}

uint32_t FragmentHeight(const Fragment& fragment, const Document& document) {
  // O(1) whenever the summary header knows the max depth (kernel-produced
  // and validated fragments); falls back to one scan otherwise.
  return fragment.MaxDepth(document) - document.depth(fragment.root());
}

uint32_t FragmentSpan(const Fragment& fragment) {
  return fragment.nodes().back() - fragment.nodes().front();
}

std::vector<NodeId> FragmentLeaves(const Fragment& fragment,
                                   const Document& document) {
  // A member is a leaf of the fragment iff no member has it as parent.
  std::unordered_set<NodeId> internal;
  internal.reserve(fragment.size());
  for (NodeId n : fragment.nodes()) {
    if (n != fragment.root()) internal.insert(document.parent(n));
  }
  std::vector<NodeId> leaves;
  for (NodeId n : fragment.nodes()) {
    if (internal.find(n) == internal.end()) leaves.push_back(n);
  }
  return leaves;
}

}  // namespace xfrag::algebra
