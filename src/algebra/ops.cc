#include "algebra/ops.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"

namespace xfrag::algebra {

namespace {

// Merges two sorted unique id vectors plus extra path nodes into a sorted
// unique vector.
std::vector<NodeId> MergeNodes(const std::vector<NodeId>& a,
                               const std::vector<NodeId>& b,
                               std::vector<NodeId> extra) {
  std::vector<NodeId> out;
  out.reserve(a.size() + b.size() + extra.size());
  std::merge(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  out.insert(out.end(), extra.begin(), extra.end());
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void CountJoin(OpMetrics* metrics) {
  if (metrics != nullptr) {
    ++metrics->fragment_joins;
    ++metrics->fragments_produced;
  }
}

bool PassesFilter(const Fragment& f, const FilterPtr& filter,
                  const FilterContext& context, OpMetrics* metrics) {
  if (metrics != nullptr) ++metrics->filter_evals;
  bool ok = filter->Matches(f, context);
  if (!ok && metrics != nullptr) ++metrics->filter_rejections;
  return ok;
}

}  // namespace

Fragment Join(const Document& document, const Fragment& f1, const Fragment& f2,
              OpMetrics* metrics) {
  CountJoin(metrics);
  // Absorption fast paths (f1 ⋈ f2 = f1 when f2 ⊆ f1).
  if (f1.ContainsFragment(f2)) return f1;
  if (f2.ContainsFragment(f1)) return f2;
  NodeId r1 = f1.root();
  NodeId r2 = f2.root();
  NodeId lca = document.Lca(r1, r2);
  std::vector<NodeId> extra = document.PathToAncestor(r1, lca);
  std::vector<NodeId> path2 = document.PathToAncestor(r2, lca);
  extra.insert(extra.end(), path2.begin(), path2.end());
  return Fragment::FromSortedUnchecked(
      MergeNodes(f1.nodes(), f2.nodes(), std::move(extra)));
}

FragmentSet PairwiseJoin(const Document& document, const FragmentSet& set1,
                         const FragmentSet& set2, OpMetrics* metrics) {
  FragmentSet out;
  for (const Fragment& f1 : set1) {
    for (const Fragment& f2 : set2) {
      out.Insert(Join(document, f1, f2, metrics));
    }
  }
  return out;
}

FragmentSet PairwiseJoinFiltered(const Document& document,
                                 const FragmentSet& set1,
                                 const FragmentSet& set2,
                                 const FilterPtr& filter,
                                 const FilterContext& context,
                                 OpMetrics* metrics) {
  FragmentSet out;
  for (const Fragment& f1 : set1) {
    for (const Fragment& f2 : set2) {
      Fragment joined = Join(document, f1, f2, metrics);
      if (PassesFilter(joined, filter, context, metrics)) {
        out.Insert(std::move(joined));
      }
    }
  }
  return out;
}

FragmentSet Select(const FragmentSet& set, const FilterPtr& filter,
                   const FilterContext& context, OpMetrics* metrics) {
  FragmentSet out;
  for (const Fragment& f : set) {
    if (PassesFilter(f, filter, context, metrics)) out.Insert(f);
  }
  return out;
}

StatusOr<FragmentSet> PowersetJoinBruteForce(
    const Document& document, const FragmentSet& set1, const FragmentSet& set2,
    const PowersetJoinOptions& options, OpMetrics* metrics) {
  if (options.max_set_size > kMaxPowersetSetSize) {
    return Status::InvalidArgument(StrFormat(
        "PowersetJoinOptions::max_set_size %zu exceeds the safe bound %zu "
        "(2^%zu × 2^%zu subset pairs are not practically enumerable)",
        options.max_set_size, kMaxPowersetSetSize, options.max_set_size,
        options.max_set_size));
  }
  if (set1.size() > options.max_set_size ||
      set2.size() > options.max_set_size) {
    return Status::ResourceExhausted(StrFormat(
        "brute-force powerset join over sets of %zu and %zu fragments "
        "exceeds the configured limit of %zu",
        set1.size(), set2.size(), options.max_set_size));
  }
  if (set1.empty() || set2.empty()) return FragmentSet();

  // join_of_subset[mask] = ⋈ of the fragments selected by mask, built
  // incrementally from mask-with-lowest-bit-cleared.
  auto subset_joins = [&](const FragmentSet& set) {
    std::vector<Fragment> joins;
    size_t total = size_t{1} << set.size();
    joins.reserve(total);
    joins.push_back(Fragment::Single(0));  // Placeholder for mask 0 (unused).
    for (size_t mask = 1; mask < total; ++mask) {
      size_t low = mask & (~mask + 1);
      size_t low_index = static_cast<size_t>(__builtin_ctzll(mask));
      size_t rest = mask ^ low;
      if (rest == 0) {
        joins.push_back(set[low_index]);
      } else {
        joins.push_back(Join(document, joins[rest], set[low_index], metrics));
      }
    }
    return joins;
  };

  std::vector<Fragment> joins1 = subset_joins(set1);
  std::vector<Fragment> joins2 = subset_joins(set2);

  FragmentSet out;
  for (size_t m1 = 1; m1 < joins1.size(); ++m1) {
    for (size_t m2 = 1; m2 < joins2.size(); ++m2) {
      out.Insert(Join(document, joins1[m1], joins2[m2], metrics));
    }
  }
  return out;
}

FragmentSet Reduce(const Document& document, const FragmentSet& set,
                   OpMetrics* metrics) {
  // A member survives unless two other distinct members join to a fragment
  // that subsumes it.
  const size_t n = set.size();
  std::vector<bool> eliminated(n, false);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      Fragment joined = Join(document, set[i], set[j], metrics);
      for (size_t t = 0; t < n; ++t) {
        if (t == i || t == j || eliminated[t]) continue;
        if (joined.ContainsFragment(set[t])) eliminated[t] = true;
      }
    }
  }
  FragmentSet out;
  for (size_t t = 0; t < n; ++t) {
    if (!eliminated[t]) out.Insert(set[t]);
  }
  return out;
}

FragmentSet FixedPointNaive(const Document& document, const FragmentSet& set,
                            OpMetrics* metrics) {
  FragmentSet current = set;
  while (true) {
    if (metrics != nullptr) ++metrics->fixed_point_iterations;
    FragmentSet joined = PairwiseJoin(document, current, set, metrics);
    // Fixed-point check: has anything new appeared?
    size_t before = current.size();
    current = current.Union(joined);
    if (current.size() == before) return current;
  }
}

FragmentSet FixedPointReduced(const Document& document, const FragmentSet& set,
                              OpMetrics* metrics) {
  if (set.size() <= 1) return set;
  FragmentSet reduced = Reduce(document, set, metrics);
  size_t k = std::max<size_t>(reduced.size(), 1);
  // ⋈_k(F): pairwise join of k copies of F, i.e. k−1 join operations,
  // with no fixed-point checking (Theorem 1).
  FragmentSet current = set;
  for (size_t i = 1; i < k; ++i) {
    if (metrics != nullptr) ++metrics->fixed_point_iterations;
    current = PairwiseJoin(document, current, set, metrics);
  }
  // ⋈_k(F) ⊇ F because f ⋈ f = f (idempotency), so this is F⁺ itself.
  return current;
}

FragmentSet FixedPointFiltered(const Document& document, const FragmentSet& set,
                               const FilterPtr& filter,
                               const FilterContext& context,
                               OpMetrics* metrics) {
  // Base selection first (Theorem 3 pushed all the way down).
  FragmentSet current = Select(set, filter, context, metrics);
  FragmentSet base = current;
  while (true) {
    if (metrics != nullptr) ++metrics->fixed_point_iterations;
    FragmentSet joined =
        PairwiseJoinFiltered(document, current, base, filter, context, metrics);
    size_t before = current.size();
    current = current.Union(joined);
    if (current.size() == before) return current;
  }
}

FragmentSet PowersetJoinViaFixedPoint(const Document& document,
                                      const FragmentSet& set1,
                                      const FragmentSet& set2,
                                      OpMetrics* metrics) {
  if (set1.empty() || set2.empty()) return FragmentSet();
  FragmentSet fp1 = FixedPointReduced(document, set1, metrics);
  FragmentSet fp2 = FixedPointReduced(document, set2, metrics);
  return PairwiseJoin(document, fp1, fp2, metrics);
}

}  // namespace xfrag::algebra
