#include "algebra/ops.h"

#include <algorithm>
#include <atomic>
#include <optional>

#include "algebra/dag_cache.h"
#include "common/logging.h"
#include "common/strings.h"

namespace xfrag::algebra {

namespace {

std::atomic<bool> g_summary_prefilter_enabled{true};
std::atomic<bool> g_dag_compression_enabled{true};

void CountJoin(OpMetrics* metrics) {
  if (metrics != nullptr) {
    ++metrics->fragment_joins;
    ++metrics->fragments_produced;
  }
}

// A pair rejected from its summary bounds counts exactly like a join whose
// result failed the filter — the logical counters stay invariant under the
// prefilter — plus the prefilter counter recording the avoided work.
void CountPrefilterRejectedJoin(OpMetrics* metrics) {
  if (metrics != nullptr) {
    ++metrics->fragment_joins;
    ++metrics->fragments_produced;
    ++metrics->filter_evals;
    ++metrics->filter_rejections;
    ++metrics->pairs_rejected_summary;
  }
}

bool PassesFilter(const Fragment& f, const FilterPtr& filter,
                  const FilterContext& context, OpMetrics* metrics) {
  if (metrics != nullptr) ++metrics->filter_evals;
  bool ok = filter->Matches(f, context);
  if (!ok && metrics != nullptr) ++metrics->filter_rejections;
  return ok;
}

std::vector<FragmentSummary> SummarizeSet(const FragmentSet& set,
                                          const Document& document) {
  std::vector<FragmentSummary> out;
  out.reserve(set.size());
  for (const Fragment& f : set) out.push_back(f.Summary(document));
  return out;
}

// Per-invocation state of the class-aware (DAG-compressed) join path: the
// local-form interner plus parallel form/anchor arrays for both operand
// sets. FixedPointFiltered keeps one alive across its iterations so cached
// outcomes survive from round to round.
struct DagJoinState {
  DagJoinState(const Document& document, const doc::SubtreeClassIndex& dag)
      : forms(document, dag) {}
  DagFormTable forms;
  DagOutcomeMap outcomes;
  std::vector<uint32_t> forms1, forms2;
  std::vector<NodeId> anchors1, anchors2;

  void InternSets(const FragmentSet& set1, const FragmentSet& set2) {
    forms.InternSet(set1, &forms1, &anchors1);
    forms.InternSet(set2, &forms2, &anchors2);
  }

  // The pair (i, j) is cacheable iff both fragments have a local form and
  // share one duplication anchor (i.e. live in the same occurrence); the
  // outcome then transfers to every other occurrence of the anchor's class.
  bool PairCacheable(size_t i, size_t j, uint64_t* key) const {
    if (forms1[i] == kNoLocalForm || forms2[j] == kNoLocalForm ||
        anchors1[i] != anchors2[j]) {
      return false;
    }
    *key = DagPairKey(forms1[i], forms2[j]);
    return true;
  }
};

// Replays a cached outcome for the filtered-join kernel: exactly the
// counter deltas the real evaluation produces, plus the translated survivor.
void ReplayFilteredOutcome(const DagPairOutcome& outcome, NodeId anchor,
                           uint32_t anchor_depth, FragmentSet* dest,
                           OpMetrics* metrics) {
  if (metrics != nullptr) ++metrics->class_pairs_considered;
  switch (outcome.kind) {
    case DagPairOutcome::kPrefilterRejected:
      CountPrefilterRejectedJoin(metrics);
      return;
    case DagPairOutcome::kFilterRejected:
      CountJoin(metrics);
      if (metrics != nullptr) {
        ++metrics->filter_evals;
        ++metrics->filter_rejections;
      }
      return;
    case DagPairOutcome::kSurvived:
      CountJoin(metrics);
      if (metrics != nullptr) {
        ++metrics->filter_evals;
        ++metrics->answers_multiplied_out;
      }
      dest->Insert(TranslateOutcome(outcome, anchor, anchor_depth));
      return;
    case DagPairOutcome::kAcceptRejected:  // Top-k kernel only.
      return;
  }
}

FragmentSet PairwiseJoinFilteredImpl(const Document& document,
                                     const FragmentSet& set1,
                                     const FragmentSet& set2,
                                     const FilterPtr& filter,
                                     const FilterContext& context,
                                     OpMetrics* metrics, DagJoinState* dag) {
  FragmentSet out;
  JoinArena arena;
  const bool prefilter = SummaryPrefilterEnabled();
  const std::vector<FragmentSummary> sums1 = SummarizeSet(set1, document);
  const std::vector<FragmentSummary> sums2 = SummarizeSet(set2, document);
  if (dag != nullptr) dag->InternSets(set1, set2);
  for (size_t i = 0; i < set1.size(); ++i) {
    for (size_t j = 0; j < set2.size(); ++j) {
      if (metrics != nullptr) ++metrics->pairs_considered;
      uint64_t key = 0;
      bool cacheable = dag != nullptr && dag->PairCacheable(i, j, &key);
      if (cacheable) {
        auto it = dag->outcomes.find(key);
        if (it != dag->outcomes.end()) {
          ReplayFilteredOutcome(it->second, dag->anchors1[i],
                                document.depth(dag->anchors1[i]), &out,
                                metrics);
          continue;
        }
      }
      if (prefilter &&
          filter->RejectsJoinBounds(
              ComputeJoinBounds(document, sums1[i], sums2[j]), context)) {
        CountPrefilterRejectedJoin(metrics);
        if (cacheable) {
          dag->outcomes[key].kind = DagPairOutcome::kPrefilterRejected;
        }
        continue;
      }
      Fragment joined = JoinWithArena(document, set1[i], set2[j], &arena,
                                      metrics);
      if (PassesFilter(joined, filter, context, metrics)) {
        if (cacheable) {
          DagPairOutcome& rec = dag->outcomes[key];
          rec.kind = DagPairOutcome::kSurvived;
          const NodeId anchor = dag->anchors1[i];
          rec.rel_nodes.reserve(joined.size());
          for (NodeId n : joined.nodes()) rec.rel_nodes.push_back(n - anchor);
          rec.rel_max_depth =
              joined.MaxDepth(document) - document.depth(anchor);
        }
        out.Insert(std::move(joined));
      } else if (cacheable) {
        dag->outcomes[key].kind = DagPairOutcome::kFilterRejected;
      }
    }
  }
  return out;
}

}  // namespace

void SetSummaryPrefilterEnabled(bool enabled) {
  g_summary_prefilter_enabled.store(enabled, std::memory_order_relaxed);
}

bool SummaryPrefilterEnabled() {
  return g_summary_prefilter_enabled.load(std::memory_order_relaxed);
}

void SetDagCompressionEnabled(bool enabled) {
  g_dag_compression_enabled.store(enabled, std::memory_order_relaxed);
}

bool DagCompressionEnabled() {
  return g_dag_compression_enabled.load(std::memory_order_relaxed);
}

std::vector<ReduceEntry> BuildReduceIndex(const FragmentSet& set) {
  std::vector<ReduceEntry> by_min;
  by_min.reserve(set.size());
  for (size_t t = 0; t < set.size(); ++t) {
    const Fragment& f = set[t];
    by_min.push_back(ReduceEntry{f.min_pre(), f.max_pre(),
                                 static_cast<uint32_t>(f.size()),
                                 static_cast<uint32_t>(t)});
  }
  std::sort(by_min.begin(), by_min.end(),
            [](const ReduceEntry& a, const ReduceEntry& b) {
              return a.min != b.min ? a.min < b.min : a.index < b.index;
            });
  return by_min;
}

std::pair<size_t, size_t> ReduceWindow(const std::vector<ReduceEntry>& by_min,
                                       NodeId min_pre, NodeId max_pre) {
  auto lo = std::lower_bound(by_min.begin(), by_min.end(), min_pre,
                             [](const ReduceEntry& e, NodeId v) {
                               return e.min < v;
                             });
  auto hi = std::upper_bound(lo, by_min.end(), max_pre,
                             [](NodeId v, const ReduceEntry& e) {
                               return v < e.min;
                             });
  return {static_cast<size_t>(lo - by_min.begin()),
          static_cast<size_t>(hi - by_min.begin())};
}

JoinBounds ComputeJoinBounds(const Document& document,
                             const FragmentSummary& s1,
                             const FragmentSummary& s2) {
  NodeId lca = document.Lca(s1.root, s2.root);
  uint32_t lca_depth = document.depth(lca);
  JoinBounds bounds;
  bounds.root_depth = lca_depth;
  bounds.min_pre = lca;
  // No connecting-path node is deeper than an operand member, and the LCA is
  // the joined root, so the height is exact.
  bounds.height = std::max(s1.max_depth, s2.max_depth) - lca_depth;
  // The LCA is the minimal pre-order member of the join; path nodes never
  // exceed the operand maxima, so the span is exact too.
  bounds.span = std::max(s1.max_pre, s2.max_pre) - lca;
  // The join contains the operand, its root's strict ancestors down to the
  // LCA (up_i nodes), and — when that root is not the LCA itself — the other
  // root's path strictly below the LCA as well: any node on both branches
  // would be a common ancestor deeper than the LCA, and a member of f_i that
  // is an ancestor of the other root would force lca = r_i. All three pieces
  // are therefore disjoint, making each sum a sound lower bound.
  uint32_t up1 = s1.root_depth - lca_depth;
  uint32_t up2 = s2.root_depth - lca_depth;
  bounds.size_lower = std::max(s1.size + up1 + (s1.root != lca ? up2 : 0),
                               s2.size + up2 + (s2.root != lca ? up1 : 0));
  // Both roots are members, so their exact distance bounds the diameter.
  bounds.roots_distance = up1 + up2;
  return bounds;
}

Fragment JoinWithArena(const Document& document, const Fragment& f1,
                       const Fragment& f2, JoinArena* arena,
                       OpMetrics* metrics) {
  CountJoin(metrics);
  // Absorption fast paths (f1 ⋈ f2 = f1 when f2 ⊆ f1).
  if (f1.ContainsFragment(f2)) return f1;
  if (f2.ContainsFragment(f1)) return f2;
  NodeId r1 = f1.root();
  NodeId r2 = f2.root();
  NodeId lca = document.Lca(r1, r2);
  // Operand nodes as one sorted run (cross-operand duplicates possible).
  arena->merged.clear();
  arena->merged.reserve(f1.size() + f2.size());
  std::merge(f1.nodes().begin(), f1.nodes().end(), f2.nodes().begin(),
             f2.nodes().end(), std::back_inserter(arena->merged));
  // Connecting paths r1→lca and r2→lca. Walking parents yields descending
  // pre-order, so each run is reversed into ascending order in place.
  arena->paths.clear();
  for (NodeId n = r1;; n = document.parent(n)) {
    arena->paths.push_back(n);
    if (n == lca) break;
  }
  std::reverse(arena->paths.begin(), arena->paths.end());
  const size_t mid = arena->paths.size();
  for (NodeId n = r2;; n = document.parent(n)) {
    arena->paths.push_back(n);
    if (n == lca) break;
  }
  std::reverse(arena->paths.begin() + mid, arena->paths.end());
  // Three-way merge-with-dedup of the sorted runs straight into the result —
  // no re-sort, and the only allocation is the fragment's own exact vector.
  const NodeId* a = arena->paths.data();
  const NodeId* ae = a + mid;
  const NodeId* b = arena->paths.data() + mid;
  const NodeId* be = arena->paths.data() + arena->paths.size();
  const std::vector<NodeId>& m = arena->merged;
  std::vector<NodeId> out;
  out.reserve(m.size() + arena->paths.size());
  size_t im = 0;
  while (im < m.size() || a != ae || b != be) {
    NodeId v = doc::kNoNode;  // kNoNode = max uint32, never a member id.
    if (im < m.size()) v = std::min(v, m[im]);
    if (a != ae) v = std::min(v, *a);
    if (b != be) v = std::min(v, *b);
    if (im < m.size() && m[im] == v) {
      ++im;
    } else if (a != ae && *a == v) {
      ++a;
    } else {
      ++b;
    }
    if (out.empty() || out.back() != v) out.push_back(v);
  }
  // Path nodes are ancestors of the operand roots, so the deepest member of
  // the join is the deepest operand member — the summary is O(1) complete.
  uint32_t max_depth = std::max(f1.MaxDepth(document), f2.MaxDepth(document));
  return Fragment::FromSortedUnchecked(std::move(out), max_depth);
}

Fragment Join(const Document& document, const Fragment& f1, const Fragment& f2,
              OpMetrics* metrics) {
  thread_local JoinArena arena;
  return JoinWithArena(document, f1, f2, &arena, metrics);
}

FragmentSet PairwiseJoin(const Document& document, const FragmentSet& set1,
                         const FragmentSet& set2, OpMetrics* metrics) {
  FragmentSet out;
  JoinArena arena;
  for (const Fragment& f1 : set1) {
    for (const Fragment& f2 : set2) {
      out.Insert(JoinWithArena(document, f1, f2, &arena, metrics));
    }
  }
  return out;
}

FragmentSet PairwiseJoinFiltered(const Document& document,
                                 const FragmentSet& set1,
                                 const FragmentSet& set2,
                                 const FilterPtr& filter,
                                 const FilterContext& context,
                                 OpMetrics* metrics,
                                 const doc::SubtreeClassIndex* dag) {
  if (!DagUsable(dag, filter)) {
    return PairwiseJoinFilteredImpl(document, set1, set2, filter, context,
                                    metrics, nullptr);
  }
  DagJoinState state(document, *dag);
  FragmentSet out = PairwiseJoinFilteredImpl(document, set1, set2, filter,
                                             context, metrics, &state);
  if (metrics != nullptr) metrics->classes_total += state.forms.size();
  return out;
}

void WarmupTopKFloor(const Document& document, const FragmentSet& set1,
                     const FragmentSet& set2,
                     const std::vector<FragmentSummary>& sums1,
                     const std::vector<FragmentSummary>& sums2,
                     const std::vector<std::vector<double>>& ev1,
                     const std::vector<std::vector<double>>& ev2,
                     const FilterPtr& filter, const FilterContext& context,
                     const JoinScorer& scorer, const FragmentPredicate& accept,
                     TopKCollector* collector) {
  const size_t k = collector->k();
  if (k == 0 || k > 64 || set1.empty() || set2.empty()) return;
  const size_t breadth = std::max<size_t>(8, k);
  // Standalone evidence reach: what the fragment could contribute with no
  // partner at all, penalized by its own size. Ordering by it surfaces the
  // dense, term-rich fragments whose joins dominate the score distribution.
  auto top_by_reach = [&scorer, breadth](
                          const std::vector<std::vector<double>>& ev,
                          const std::vector<FragmentSummary>& sums) {
    std::vector<size_t> idx(ev.size());
    for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    if (idx.size() <= breadth) return idx;  // floor is order-independent
    const std::vector<double> none(ev[0].size(), 0.0);
    std::vector<double> reach(ev.size());
    for (size_t i = 0; i < ev.size(); ++i) {
      reach[i] = scorer.EvidenceUpperBoundFromSize(ev[i], none, sums[i].size);
    }
    std::partial_sort(idx.begin(),
                      idx.begin() + static_cast<ptrdiff_t>(breadth), idx.end(),
                      [&reach](size_t a, size_t b) {
                        if (reach[a] != reach[b]) return reach[a] > reach[b];
                        return a < b;
                      });
    idx.resize(breadth);
    return idx;
  };
  const std::vector<size_t> top1 = top_by_reach(ev1, sums1);
  const std::vector<size_t> top2 = top_by_reach(ev2, sums2);
  // The scratch inherits the caller's floor: a witness below it could never
  // raise the seed (SeedFloor is monotone), so under a strong external floor
  // the bound checks below collapse the warmup to pure arithmetic.
  TopKCollector scratch(k);
  scratch.SeedFloor(collector->EffectiveFloor());
  JoinArena arena;
  const bool prefilter = SummaryPrefilterEnabled();
  for (size_t i : top1) {
    for (size_t j : top2) {
      if (!scratch.CouldAccept(scorer.EvidenceUpperBoundFromSize(
              ev1[i], ev2[j], std::max(sums1[i].size, sums2[j].size)))) {
        continue;
      }
      JoinBounds bounds = ComputeJoinBounds(document, sums1[i], sums2[j]);
      if (prefilter && filter->RejectsJoinBounds(bounds, context)) continue;
      if (!scratch.CouldAccept(scorer.QuickUpperBound(bounds)) ||
          !scratch.CouldAccept(
              scorer.EvidenceUpperBound(ev1[i], ev2[j], bounds)) ||
          !scratch.CouldAccept(scorer.UpperBound(bounds))) {
        continue;
      }
      Fragment joined =
          JoinWithArena(document, set1[i], set2[j], &arena, nullptr);
      if (!filter->Matches(joined, context)) continue;
      if (accept && !accept(joined)) continue;
      if (scratch.Contains(joined)) continue;
      double score = scorer.Score(joined);
      scratch.Offer(std::move(joined), score);
    }
  }
  // k distinct true answers found: their k-th best score is a sound floor
  // (ties are never pruned, so equal-scoring answers still compete).
  if (scratch.full()) collector->SeedFloor(scratch.TakeSorted().back().score);
}

void PairwiseJoinTopK(const Document& document, const FragmentSet& set1,
                      const FragmentSet& set2, const FilterPtr& filter,
                      const FilterContext& context, const JoinScorer& scorer,
                      const FragmentPredicate& accept, TopKCollector* collector,
                      OpMetrics* metrics, const CancelToken* cancel,
                      const doc::SubtreeClassIndex* dag) {
  JoinArena arena;
  const bool prefilter = SummaryPrefilterEnabled();
  // Class-aware path. The cache is consulted only after the pair clears the
  // collector-dependent score bounds (which are never cached — a pruned pair
  // depends on the heap's state, not on the pair's class), so the decision
  // sequence, every counter, and every Offer are identical to the uncached
  // run at any fixed thread count.
  std::optional<DagJoinState> dag_state;
  if (DagUsable(dag, filter)) {
    dag_state.emplace(document, *dag);
    dag_state->InternSets(set1, set2);
    // All interning happens up front (replays never intern), so the class
    // count is final here — recorded now so cancel paths stay consistent.
    if (metrics != nullptr) metrics->classes_total += dag_state->forms.size();
  }
  const std::vector<FragmentSummary> sums1 = SummarizeSet(set1, document);
  const std::vector<FragmentSummary> sums2 = SummarizeSet(set2, document);
  // Evidence summaries are per *input* fragment, so the O(|set1| + |set2|)
  // precompute amortizes over the O(|set1| × |set2|) pair loop. The termwise
  // maximum over set2 plus a row-wide join-size lower bound power the
  // row-level bound that skips whole rows of pairs.
  const bool evidence = scorer.HasEvidenceBound() && !set2.empty();
  std::vector<std::vector<double>> ev1;
  std::vector<std::vector<double>> ev2;
  std::vector<double> ev2_max;
  uint32_t min_size2 = 0;
  if (evidence) {
    ev1.reserve(set1.size());
    for (const Fragment& f : set1) ev1.push_back(scorer.FragmentEvidence(f));
    ev2.reserve(set2.size());
    for (const Fragment& f : set2) ev2.push_back(scorer.FragmentEvidence(f));
    ev2_max = ev2[0];
    for (const std::vector<double>& e : ev2) {
      for (size_t t = 0; t < e.size(); ++t) ev2_max[t] = std::max(ev2_max[t], e[t]);
    }
    min_size2 = sums2[0].size;
    for (const FragmentSummary& s : sums2) min_size2 = std::min(min_size2, s.size);
    // Floor bootstrap: without an external floor the bounds are inert until
    // k answers happen to accumulate — which for the first document of a
    // serving query means an unpruned quadratic pass. A handful of
    // high-evidence joins seed a sound floor up front (see ops.h).
    WarmupTopKFloor(document, set1, set2, sums1, sums2, ev1, ev2, filter,
                    context, scorer, accept, collector);
  }
  size_t since_poll = 0;
  for (size_t i = 0; i < set1.size(); ++i) {
    // One arithmetic test retires the whole row when nothing f1 can reach
    // clears the collector's floor; bulk-account the skipped pairs.
    if (evidence &&
        !collector->CouldAccept(scorer.EvidenceUpperBoundFromSize(
            ev1[i], ev2_max, std::max(sums1[i].size, min_size2)))) {
      if (metrics != nullptr) {
        metrics->pairs_considered += set2.size();
        metrics->pairs_rejected_score += set2.size();
      }
      since_poll += set2.size();
      if (since_poll >= 1024) {
        since_poll = 0;
        if (ShouldStop(cancel)) return;
      }
      continue;
    }
    for (size_t j = 0; j < set2.size(); ++j) {
      if (++since_poll >= 1024) {
        since_poll = 0;
        if (ShouldStop(cancel)) return;
      }
      if (metrics != nullptr) ++metrics->pairs_considered;
      // Pair-level evidence pre-check from the operand sizes alone — the
      // join is at least as large as its larger operand — so a doomed pair
      // dies on pure arithmetic before paying for ComputeJoinBounds' LCA.
      if (evidence &&
          !collector->CouldAccept(scorer.EvidenceUpperBoundFromSize(
              ev1[i], ev2[j], std::max(sums1[i].size, sums2[j].size)))) {
        if (metrics != nullptr) ++metrics->pairs_rejected_score;
        continue;
      }
      // Bounds serve both prefilters, so they are computed unconditionally
      // (unlike PairwiseJoinFiltered, which only needs them when the summary
      // prefilter is on).
      JoinBounds bounds = ComputeJoinBounds(document, sums1[i], sums2[j]);
      uint64_t key = 0;
      const bool cacheable =
          dag_state.has_value() && dag_state->PairCacheable(i, j, &key);
      const DagPairOutcome* hit = nullptr;
      if (cacheable) {
        auto it = dag_state->outcomes.find(key);
        if (it != dag_state->outcomes.end()) hit = &it->second;
      }
      if (hit != nullptr && hit->kind == DagPairOutcome::kPrefilterRejected) {
        if (metrics != nullptr) ++metrics->class_pairs_considered;
        CountPrefilterRejectedJoin(metrics);
        continue;
      }
      // A non-prefilter hit proves the representative cleared the summary
      // prefilter, and RejectsJoinBounds is translation-invariant, so the
      // re-check is skipped — it could only agree.
      if (hit == nullptr && prefilter &&
          filter->RejectsJoinBounds(bounds, context)) {
        CountPrefilterRejectedJoin(metrics);
        if (cacheable) {
          dag_state->outcomes[key].kind = DagPairOutcome::kPrefilterRejected;
        }
        continue;
      }
      // Coarsest bound first: most pairs die on pure arithmetic and never
      // pay for the posting-interval bound. The evidence bound sits between
      // the two — O(summary) arithmetic, usually far tighter than either
      // interval bound — so pairs it kills never pay for binary searches.
      if (!collector->CouldAccept(scorer.QuickUpperBound(bounds)) ||
          (evidence && !collector->CouldAccept(scorer.EvidenceUpperBound(
                           ev1[i], ev2[j], bounds))) ||
          !collector->CouldAccept(scorer.UpperBound(bounds))) {
        if (metrics != nullptr) ++metrics->pairs_rejected_score;
        continue;
      }
      // The pair is going to be evaluated (or replayed) in full: the score
      // bounds above ran against the live collector exactly as the uncached
      // kernel runs them, so from here the cached outcome substitutes for
      // the join + filter + accept + score pipeline verbatim.
      if (hit != nullptr) {
        if (metrics != nullptr) ++metrics->class_pairs_considered;
        CountJoin(metrics);
        if (metrics != nullptr) ++metrics->filter_evals;
        if (hit->kind == DagPairOutcome::kFilterRejected) {
          if (metrics != nullptr) ++metrics->filter_rejections;
          continue;
        }
        if (hit->kind == DagPairOutcome::kAcceptRejected) continue;
        if (metrics != nullptr) ++metrics->answers_multiplied_out;
        const NodeId anchor = dag_state->anchors1[i];
        Fragment translated =
            TranslateOutcome(*hit, anchor, document.depth(anchor));
        if (collector->Contains(translated)) continue;
        collector->Offer(std::move(translated), hit->score);
        continue;
      }
      Fragment joined = JoinWithArena(document, set1[i], set2[j], &arena,
                                      metrics);
      if (!PassesFilter(joined, filter, context, metrics)) {
        if (cacheable) {
          dag_state->outcomes[key].kind = DagPairOutcome::kFilterRejected;
        }
        continue;
      }
      if (accept && !accept(joined)) {
        if (cacheable) {
          dag_state->outcomes[key].kind = DagPairOutcome::kAcceptRejected;
        }
        continue;
      }
      if (cacheable) {
        // Record the survivor with its exact score (scored before the
        // duplicate check — a retained duplicate shares the score by purity
        // of the scorer, and replays need it either way).
        double score = scorer.Score(joined);
        DagPairOutcome& rec = dag_state->outcomes[key];
        rec.kind = DagPairOutcome::kSurvived;
        const NodeId anchor = dag_state->anchors1[i];
        rec.rel_nodes.reserve(joined.size());
        for (NodeId n : joined.nodes()) rec.rel_nodes.push_back(n - anchor);
        rec.rel_max_depth = joined.MaxDepth(document) - document.depth(anchor);
        rec.score = score;
        if (collector->Contains(joined)) continue;
        collector->Offer(std::move(joined), score);
        continue;
      }
      // Duplicate joins are the common case (many pairs collapse to one
      // answer); a retained duplicate is already scored, so don't rescore.
      if (collector->Contains(joined)) continue;
      double score = scorer.Score(joined);
      collector->Offer(std::move(joined), score);
    }
  }
}

FragmentSet Select(const FragmentSet& set, const FilterPtr& filter,
                   const FilterContext& context, OpMetrics* metrics,
                   const doc::SubtreeClassIndex* dag) {
  FragmentSet out;
  if (DagUsable(dag, filter) && context.document != nullptr) {
    // Class-aware selection: Matches is evaluated once per local form; the
    // verdict is replayed (with exact filter_evals/filter_rejections deltas)
    // for every other fragment of the form. The member fragment itself is
    // inserted — selection never materializes new nodes, so no translation.
    DagFormTable forms(*context.document, *dag);
    std::unordered_map<uint32_t, bool> verdicts;
    for (const Fragment& f : set) {
      NodeId anchor = doc::kNoNode;
      uint32_t form = forms.Intern(f, &anchor);
      if (form != kNoLocalForm) {
        auto it = verdicts.find(form);
        if (it != verdicts.end()) {
          if (metrics != nullptr) {
            ++metrics->class_pairs_considered;
            ++metrics->filter_evals;
            if (!it->second) ++metrics->filter_rejections;
          }
          if (it->second) out.Insert(f);
          continue;
        }
      }
      bool ok = PassesFilter(f, filter, context, metrics);
      if (form != kNoLocalForm) verdicts.emplace(form, ok);
      if (ok) out.Insert(f);
    }
    if (metrics != nullptr) metrics->classes_total += forms.size();
    return out;
  }
  for (const Fragment& f : set) {
    if (PassesFilter(f, filter, context, metrics)) out.Insert(f);
  }
  return out;
}

StatusOr<FragmentSet> PowersetJoinBruteForce(
    const Document& document, const FragmentSet& set1, const FragmentSet& set2,
    const PowersetJoinOptions& options, OpMetrics* metrics) {
  if (options.max_set_size > kMaxPowersetSetSize) {
    return Status::InvalidArgument(StrFormat(
        "PowersetJoinOptions::max_set_size %zu exceeds the safe bound %zu "
        "(2^%zu × 2^%zu subset pairs are not practically enumerable)",
        options.max_set_size, kMaxPowersetSetSize, options.max_set_size,
        options.max_set_size));
  }
  if (set1.size() > options.max_set_size ||
      set2.size() > options.max_set_size) {
    return Status::ResourceExhausted(StrFormat(
        "brute-force powerset join over sets of %zu and %zu fragments "
        "exceeds the configured limit of %zu",
        set1.size(), set2.size(), options.max_set_size));
  }
  if (set1.empty() || set2.empty()) return FragmentSet();

  // join_of_subset[mask] = ⋈ of the fragments selected by mask, built
  // incrementally from mask-with-lowest-bit-cleared.
  auto subset_joins = [&](const FragmentSet& set) {
    std::vector<Fragment> joins;
    size_t total = size_t{1} << set.size();
    joins.reserve(total);
    joins.push_back(Fragment::Single(0));  // Placeholder for mask 0 (unused).
    for (size_t mask = 1; mask < total; ++mask) {
      if ((mask & 0xFF) == 0 && ShouldStop(options.cancel)) break;
      size_t low = mask & (~mask + 1);
      size_t low_index = static_cast<size_t>(__builtin_ctzll(mask));
      size_t rest = mask ^ low;
      if (rest == 0) {
        joins.push_back(set[low_index]);
      } else {
        joins.push_back(Join(document, joins[rest], set[low_index], metrics));
      }
    }
    return joins;
  };

  // The enumeration is the one place the algebra does exponential work, so a
  // deadline must be able to interrupt it mid-flight: poll the token once per
  // outer subset row (≤ 4096 polls) and every 256 precomputed subset joins.
  auto cancelled = [&] { return ShouldStop(options.cancel); };
  auto deadline_error = [] {
    return Status::DeadlineExceeded(
        "brute-force powerset join cancelled by deadline");
  };

  if (cancelled()) return deadline_error();
  std::vector<Fragment> joins1 = subset_joins(set1);
  std::vector<Fragment> joins2 = subset_joins(set2);

  FragmentSet out;
  for (size_t m1 = 1; m1 < joins1.size(); ++m1) {
    if (cancelled()) return deadline_error();
    for (size_t m2 = 1; m2 < joins2.size(); ++m2) {
      out.Insert(Join(document, joins1[m1], joins2[m2], metrics));
    }
  }
  return out;
}

FragmentSet Reduce(const Document& document, const FragmentSet& set,
                   OpMetrics* metrics) {
  // A member survives unless two other distinct members join to a fragment
  // that subsumes it. f ⊆ g requires [min_f,max_f] ⊆ [min_g,max_g] and
  // |f| ≤ |g|, so instead of testing every live member against every joined
  // fragment, candidates come from an index ordered by min_pre: only members
  // whose interval fits inside the join's interval are std::includes-tested.
  const size_t n = set.size();
  std::vector<ReduceEntry> by_min = BuildReduceIndex(set);
  const bool prefilter = SummaryPrefilterEnabled();
  std::vector<bool> eliminated(n, false);
  size_t eliminated_count = 0;
  JoinArena arena;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      Fragment joined = JoinWithArena(document, set[i], set[j], &arena,
                                      metrics);
      if (!prefilter) {
        for (size_t t = 0; t < n; ++t) {
          if (t == i || t == j || eliminated[t]) continue;
          if (joined.ContainsFragment(set[t])) eliminated[t] = true;
        }
        continue;
      }
      // Every member the unoptimized pass would have checked right now.
      size_t live_targets = (n - eliminated_count) - (eliminated[i] ? 0 : 1) -
                            (eliminated[j] ? 0 : 1);
      size_t checks = 0;
      auto [lo, hi] = ReduceWindow(by_min, joined.min_pre(), joined.max_pre());
      for (size_t k = lo; k < hi; ++k) {
        const ReduceEntry& e = by_min[k];
        size_t t = e.index;
        if (t == i || t == j || eliminated[t]) continue;
        if (e.max > joined.max_pre() ||
            e.size > static_cast<uint32_t>(joined.size())) {
          continue;
        }
        ++checks;
        if (joined.ContainsFragment(set[t])) {
          eliminated[t] = true;
          ++eliminated_count;
        }
      }
      if (metrics != nullptr) {
        metrics->subsume_checks_skipped += live_targets - checks;
      }
    }
  }
  FragmentSet out;
  for (size_t t = 0; t < n; ++t) {
    if (!eliminated[t]) out.Insert(set[t]);
  }
  return out;
}

FragmentSet FixedPointNaive(const Document& document, const FragmentSet& set,
                            OpMetrics* metrics, const CancelToken* cancel) {
  FragmentSet current = set;
  while (!ShouldStop(cancel)) {
    if (metrics != nullptr) ++metrics->fixed_point_iterations;
    FragmentSet joined = PairwiseJoin(document, current, set, metrics);
    // Fixed-point check: has anything new appeared?
    size_t before = current.size();
    current = current.Union(joined);
    if (current.size() == before) break;
  }
  return current;
}

FragmentSet FixedPointReduced(const Document& document, const FragmentSet& set,
                              OpMetrics* metrics, const CancelToken* cancel) {
  if (set.size() <= 1) return set;
  FragmentSet reduced = Reduce(document, set, metrics);
  size_t k = std::max<size_t>(reduced.size(), 1);
  // ⋈_k(F): pairwise join of k copies of F, i.e. k−1 join operations,
  // with no fixed-point checking (Theorem 1).
  FragmentSet current = set;
  for (size_t i = 1; i < k && !ShouldStop(cancel); ++i) {
    if (metrics != nullptr) ++metrics->fixed_point_iterations;
    current = PairwiseJoin(document, current, set, metrics);
  }
  // ⋈_k(F) ⊇ F because f ⋈ f = f (idempotency), so this is F⁺ itself.
  return current;
}

FragmentSet FixedPointFiltered(const Document& document, const FragmentSet& set,
                               const FilterPtr& filter,
                               const FilterContext& context,
                               OpMetrics* metrics, const CancelToken* cancel,
                               const doc::SubtreeClassIndex* dag) {
  // Base selection first (Theorem 3 pushed all the way down).
  FragmentSet current = Select(set, filter, context, metrics, dag);
  FragmentSet base = current;
  // One class-aware state shared across the iterations: forms and pair
  // outcomes computed in round r stay valid in round r+1 (same document,
  // filter, and context), so later rounds replay most of their pairs.
  std::optional<DagJoinState> dag_state;
  if (DagUsable(dag, filter)) dag_state.emplace(document, *dag);
  while (!ShouldStop(cancel)) {
    if (metrics != nullptr) ++metrics->fixed_point_iterations;
    FragmentSet joined = PairwiseJoinFilteredImpl(
        document, current, base, filter, context, metrics,
        dag_state.has_value() ? &*dag_state : nullptr);
    size_t before = current.size();
    current = current.Union(joined);
    if (current.size() == before) break;
  }
  if (dag_state.has_value() && metrics != nullptr) {
    metrics->classes_total += dag_state->forms.size();
  }
  return current;
}

FragmentSet PowersetJoinViaFixedPoint(const Document& document,
                                      const FragmentSet& set1,
                                      const FragmentSet& set2,
                                      OpMetrics* metrics,
                                      const CancelToken* cancel) {
  if (set1.empty() || set2.empty()) return FragmentSet();
  FragmentSet fp1 = FixedPointReduced(document, set1, metrics, cancel);
  FragmentSet fp2 = FixedPointReduced(document, set2, metrics, cancel);
  return PairwiseJoin(document, fp1, fp2, metrics);
}

}  // namespace xfrag::algebra
