// A deduplicating set of fragments. The paper's operators are set-valued
// (duplicates produced by joins "will be removed from the set", §4.1), so the
// container enforces set semantics while preserving deterministic iteration
// order (insertion order) for reproducible output.

#ifndef XFRAG_ALGEBRA_FRAGMENT_SET_H_
#define XFRAG_ALGEBRA_FRAGMENT_SET_H_

#include <initializer_list>
#include <string>
#include <unordered_map>
#include <vector>

#include "algebra/fragment.h"

namespace xfrag::algebra {

/// \brief An ordered, deduplicating collection of fragments.
class FragmentSet {
 public:
  FragmentSet() = default;

  /// Builds from a list of fragments, deduplicating.
  FragmentSet(std::initializer_list<Fragment> fragments) {
    for (const auto& f : fragments) Insert(f);
  }

  /// Builds from a vector of fragments, deduplicating.
  static FragmentSet FromVector(std::vector<Fragment> fragments) {
    FragmentSet out;
    for (auto& f : fragments) out.Insert(std::move(f));
    return out;
  }

  /// \brief Inserts a fragment. Returns true when it was not yet present.
  bool Insert(Fragment fragment);

  /// True iff `fragment` is a member.
  bool Contains(const Fragment& fragment) const;

  /// Number of distinct fragments.
  size_t size() const { return fragments_.size(); }
  bool empty() const { return fragments_.empty(); }

  /// Insertion-ordered access.
  const Fragment& operator[](size_t i) const { return fragments_[i]; }
  std::vector<Fragment>::const_iterator begin() const {
    return fragments_.begin();
  }
  std::vector<Fragment>::const_iterator end() const { return fragments_.end(); }

  /// Set equality (order-independent).
  bool SetEquals(const FragmentSet& other) const;

  /// Union of this set and `other` (new set; insertion order: this, then
  /// unseen members of other).
  FragmentSet Union(const FragmentSet& other) const;

  /// Members in a fresh vector, sorted by Fragment::operator< (canonical
  /// order for golden tests and printed tables).
  std::vector<Fragment> Sorted() const;

  /// "{⟨n1⟩, ⟨n3,n4⟩}" for diagnostics.
  std::string ToString() const;

 private:
  struct HashEntry {
    size_t index;
  };

  std::vector<Fragment> fragments_;
  // Hash → indexes with that hash (collision chain kept tiny in practice).
  std::unordered_map<uint64_t, std::vector<size_t>> by_hash_;
};

}  // namespace xfrag::algebra

#endif  // XFRAG_ALGEBRA_FRAGMENT_SET_H_
