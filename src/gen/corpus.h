// Synthetic document-centric XML corpora. The generator builds trees with a
// structural profile typical of the paper's target data (article → chapter →
// section → subsection → par, long textual leaves, no meaningful schema),
// draws the vocabulary from a Zipf distribution, and then *plants* query
// keywords at controlled positions so that benchmarks can dial the exact
// variables the algebra is sensitive to: posting-list sizes |Fi|, keyword
// dispersion (which drives the reduction factor RF of §5), and the
// distance between keyword regions (which drives fragment sizes and hence
// filter selectivity).

#ifndef XFRAG_GEN_CORPUS_H_
#define XFRAG_GEN_CORPUS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "doc/document.h"
#include "xml/dom.h"

namespace xfrag::gen {

/// Structural and textual shape of a generated corpus.
struct CorpusProfile {
  /// Approximate number of element nodes to generate (the generator stops
  /// opening new containers once the budget is reached).
  size_t target_nodes = 1000;
  /// Children per container node, drawn uniformly from [min, max].
  uint32_t min_fanout = 2;
  uint32_t max_fanout = 6;
  /// Maximum tree depth (root is depth 0; leaves are paragraphs).
  uint32_t max_depth = 7;
  /// Number of distinct vocabulary words.
  size_t vocabulary_size = 2000;
  /// Zipf skew of word frequencies (0 = uniform).
  double zipf_skew = 1.0;
  /// Words per paragraph, drawn uniformly from [min, max].
  uint32_t min_words = 8;
  uint32_t max_words = 24;
  /// Subtree duplication rate in [0, 1]: the probability that a container's
  /// children are stamped into copies of the first child (see
  /// StampDuplicateSubtrees). 0 leaves the corpus as drawn; values near 1
  /// make most sibling families repeated templates — the regime
  /// DAG-compressed evaluation (docs/ALGEBRA.md) exploits. Applied as the
  /// last step of GenerateRaw; callers that plant keywords and want the
  /// copies to carry them call StampDuplicateSubtrees themselves instead.
  double duplication = 0.0;
  /// RNG seed; equal seeds produce identical corpora.
  uint64_t seed = 1;
};

/// A corpus before materialization: parallel pre-order arrays that keyword
/// planting can still mutate.
struct RawCorpus {
  std::vector<doc::NodeId> parents;
  std::vector<std::string> tags;
  std::vector<std::string> texts;

  size_t size() const { return parents.size(); }
};

/// How planted keyword occurrences are distributed over the tree.
enum class PlantMode {
  /// Uniformly over all nodes — maximal dispersion, RF near zero.
  kScattered,
  /// All occurrences inside one randomly chosen subtree — occurrences are
  /// structurally related, so joins subsume each other and RF is high.
  kClustered,
  /// Occurrences on children of one parent (sibling runs) — the paper's
  /// Figure-4 shape.
  kSiblings,
};

/// \brief Generates the structural skeleton and Zipfian text of a corpus.
RawCorpus GenerateRaw(const CorpusProfile& profile);

/// \brief Appends `count` occurrences of `keyword` to node texts, choosing
/// target nodes per `mode`. Returns the chosen node ids (sorted, unique —
/// the expected posting list). `count` is capped at the number of available
/// distinct nodes.
std::vector<doc::NodeId> PlantKeyword(RawCorpus* corpus,
                                      const std::string& keyword, size_t count,
                                      PlantMode mode, Rng* rng);

/// \brief Stamps repeated subtree templates over the corpus: with
/// probability `duplication` per container with >= 2 children, every child
/// subtree is replaced by a copy of the first child's subtree. Sibling
/// subtrees are disjoint and equally deep, so the result is a valid
/// pre-order corpus whose stamped families are byte-identical subtrees —
/// exactly what doc::SubtreeClassIndex detects as in-document duplication.
///
/// Node ids are re-assigned (the tree is re-emitted in pre-order), so
/// posting lists returned by earlier PlantKeyword calls no longer name the
/// right nodes; plant first when the copies should carry the keywords, and
/// look occurrences up through the index afterwards.
void StampDuplicateSubtrees(RawCorpus* corpus, double duplication, Rng* rng);

/// \brief Materializes a RawCorpus as a doc::Document.
StatusOr<doc::Document> Materialize(const RawCorpus& corpus);

/// \brief Materializes a RawCorpus as XML text (exercises the XML pipeline).
std::string ToXml(const RawCorpus& corpus);

/// \brief Deterministic pronounceable word for vocabulary rank `rank`
/// ("word0" .. are avoided; words look like natural tokens, e.g. "tibuna").
std::string VocabularyWord(size_t rank);

}  // namespace xfrag::gen

#endif  // XFRAG_GEN_CORPUS_H_
