#include "gen/corpus.h"

#include <algorithm>

#include "common/logging.h"
#include "xml/serializer.h"

namespace xfrag::gen {

using doc::NodeId;

namespace {

constexpr const char* kTagsByDepth[] = {"book",       "chapter", "section",
                                        "subsection", "block",   "par"};
constexpr size_t kTagLevels = sizeof(kTagsByDepth) / sizeof(kTagsByDepth[0]);

const char* TagForDepth(uint32_t depth) {
  return kTagsByDepth[std::min<size_t>(depth, kTagLevels - 1)];
}

}  // namespace

std::string VocabularyWord(size_t rank) {
  // Syllable-concatenation encoding of the rank: bijective, pronounceable,
  // and collision-free (each word decodes uniquely to its rank).
  static constexpr const char* kSyllables[] = {
      "ba", "ce", "di", "fo", "gu", "ha", "ki", "lo",
      "mu", "na", "pe", "ri", "so", "tu", "va", "ze"};
  std::string word;
  size_t value = rank;
  do {
    word += kSyllables[value % 16];
    value /= 16;
  } while (value > 0);
  // Three-syllable minimum keeps planted keywords visually distinct from
  // short function words.
  while (word.size() < 6) word += "xa";
  return word;
}

RawCorpus GenerateRaw(const CorpusProfile& profile) {
  XFRAG_CHECK(profile.min_fanout >= 1);
  XFRAG_CHECK(profile.min_fanout <= profile.max_fanout);
  XFRAG_CHECK(profile.min_words <= profile.max_words);
  Rng rng(profile.seed);
  ZipfSampler zipf(std::max<size_t>(profile.vocabulary_size, 1),
                   profile.zipf_skew);

  RawCorpus corpus;
  auto emit_node = [&corpus](NodeId parent, std::string tag,
                             std::string text) {
    corpus.parents.push_back(parent);
    corpus.tags.push_back(std::move(tag));
    corpus.texts.push_back(std::move(text));
    return static_cast<NodeId>(corpus.parents.size() - 1);
  };

  auto paragraph_text = [&]() {
    uint32_t words = static_cast<uint32_t>(
        rng.UniformInt(profile.min_words, profile.max_words));
    std::string text;
    for (uint32_t w = 0; w < words; ++w) {
      if (w > 0) text.push_back(' ');
      text += VocabularyWord(zipf.Sample(&rng));
    }
    text.push_back('.');
    return text;
  };

  // Depth-first construction: a node's whole subtree is emitted before its
  // next sibling, so ids are pre-order ranks by construction. Recursion
  // depth is bounded by profile.max_depth.
  auto grow = [&](auto&& self, NodeId node, uint32_t depth) -> void {
    if (depth + 1 >= profile.max_depth) return;
    if (corpus.size() >= profile.target_nodes) return;
    uint32_t fanout = static_cast<uint32_t>(
        rng.UniformInt(profile.min_fanout, profile.max_fanout));
    for (uint32_t c = 0; c < fanout && corpus.size() < profile.target_nodes;
         ++c) {
      NodeId child =
          emit_node(node, TagForDepth(depth + 1), paragraph_text());
      self(self, child, depth + 1);
    }
  };
  NodeId root = emit_node(doc::kNoNode, TagForDepth(0), paragraph_text());
  grow(grow, root, 0);
  if (profile.duplication > 0.0) {
    StampDuplicateSubtrees(&corpus, profile.duplication, &rng);
  }
  return corpus;
}

void StampDuplicateSubtrees(RawCorpus* corpus, double duplication, Rng* rng) {
  XFRAG_CHECK(corpus != nullptr && rng != nullptr);
  XFRAG_CHECK(duplication >= 0.0 && duplication <= 1.0);
  const size_t n = corpus->size();
  if (duplication <= 0.0 || n < 3) return;

  std::vector<std::vector<NodeId>> children(n);
  for (size_t i = 1; i < n; ++i) {
    children[corpus->parents[i]].push_back(static_cast<NodeId>(i));
  }

  // Decide the stamps in pre-order: redirect[c] = d means "emit node c as a
  // copy of node d's subtree". A stamped family deeper inside a donor's
  // subtree is shared by every copy (the re-emission below resolves
  // redirects recursively); one inside a replaced sibling is simply
  // unreachable and harmless.
  std::vector<NodeId> redirect(n, doc::kNoNode);
  for (size_t p = 0; p < n; ++p) {
    if (children[p].size() < 2) continue;
    if (!rng->Chance(duplication)) continue;
    NodeId donor = children[p][0];
    for (size_t c = 1; c < children[p].size(); ++c) {
      redirect[children[p][c]] = donor;
    }
  }

  // Re-emit the tree in pre-order, following redirects. Recursion depth is
  // the tree depth (bounded by the generation profile).
  RawCorpus out;
  out.parents.reserve(n);
  out.tags.reserve(n);
  out.texts.reserve(n);
  auto emit = [&](auto&& self, NodeId orig, NodeId parent) -> void {
    NodeId src = redirect[orig] != doc::kNoNode ? redirect[orig] : orig;
    out.parents.push_back(parent);
    out.tags.push_back(corpus->tags[src]);
    out.texts.push_back(corpus->texts[src]);
    NodeId id = static_cast<NodeId>(out.parents.size() - 1);
    for (NodeId child : children[src]) self(self, child, id);
  };
  emit(emit, 0, doc::kNoNode);
  *corpus = std::move(out);
}

std::vector<NodeId> PlantKeyword(RawCorpus* corpus, const std::string& keyword,
                                 size_t count, PlantMode mode, Rng* rng) {
  XFRAG_CHECK(corpus != nullptr && rng != nullptr);
  const size_t n = corpus->size();
  XFRAG_CHECK(n > 0);
  std::vector<NodeId> chosen;

  switch (mode) {
    case PlantMode::kScattered: {
      std::vector<NodeId> all(n);
      for (size_t i = 0; i < n; ++i) all[i] = static_cast<NodeId>(i);
      rng->Shuffle(&all);
      for (size_t i = 0; i < std::min(count, n); ++i) chosen.push_back(all[i]);
      break;
    }
    case PlantMode::kClustered: {
      // Occurrences are structurally related: plant along root-to-leaf
      // paths inside one host subtree. Chains of ancestors make interior
      // members subsumable by joins of their extremes, so these sets have a
      // high reduction factor — the regime where Theorem 1 shines.
      std::vector<uint32_t> subtree_size(n, 1);
      for (size_t i = n; i-- > 1;) {
        subtree_size[corpus->parents[i]] += subtree_size[i];
      }
      std::vector<std::vector<NodeId>> children(n);
      for (size_t i = 1; i < n; ++i) {
        children[corpus->parents[i]].push_back(static_cast<NodeId>(i));
      }
      std::vector<NodeId> hosts;
      for (size_t i = 0; i < n; ++i) {
        if (subtree_size[i] >= count && subtree_size[i] <= 4 * count + 8) {
          hosts.push_back(static_cast<NodeId>(i));
        }
      }
      NodeId host = hosts.empty() ? 0 : hosts[rng->Uniform(hosts.size())];
      std::vector<bool> taken(n, false);
      size_t guard = 0;
      while (chosen.size() < count && guard++ < count * 8) {
        // One random root-to-leaf walk from the host.
        NodeId cur = host;
        while (true) {
          if (!taken[cur]) {
            taken[cur] = true;
            chosen.push_back(cur);
            if (chosen.size() >= count) break;
          }
          if (children[cur].empty()) break;
          cur = children[cur][rng->Uniform(children[cur].size())];
        }
      }
      break;
    }
    case PlantMode::kSiblings: {
      // Pick a parent with many children; plant on its children first, then
      // overflow onto a neighbouring family.
      std::vector<std::vector<NodeId>> children(n);
      for (size_t i = 1; i < n; ++i) {
        children[corpus->parents[i]].push_back(static_cast<NodeId>(i));
      }
      std::vector<NodeId> parents_by_fanout;
      for (size_t i = 0; i < n; ++i) {
        if (!children[i].empty()) parents_by_fanout.push_back(
            static_cast<NodeId>(i));
      }
      std::sort(parents_by_fanout.begin(), parents_by_fanout.end(),
                [&](NodeId a, NodeId b) {
                  return children[a].size() > children[b].size();
                });
      for (NodeId parent : parents_by_fanout) {
        for (NodeId child : children[parent]) {
          if (chosen.size() >= count) break;
          chosen.push_back(child);
        }
        if (chosen.size() >= count) break;
      }
      break;
    }
  }

  std::sort(chosen.begin(), chosen.end());
  chosen.erase(std::unique(chosen.begin(), chosen.end()), chosen.end());
  for (NodeId node : chosen) {
    corpus->texts[node] += " " + keyword;
  }
  return chosen;
}

StatusOr<doc::Document> Materialize(const RawCorpus& corpus) {
  return doc::Document::FromParents(corpus.parents, corpus.tags, corpus.texts);
}

std::string ToXml(const RawCorpus& corpus) {
  XFRAG_CHECK(!corpus.parents.empty());
  // Rebuild a DOM from the arrays (children grouped by parent, pre-order).
  std::vector<std::vector<NodeId>> children(corpus.size());
  for (size_t i = 1; i < corpus.size(); ++i) {
    children[corpus.parents[i]].push_back(static_cast<NodeId>(i));
  }
  std::vector<std::unique_ptr<xml::XmlElement>> elements(corpus.size());
  // Build bottom-up (reverse pre-order) so children exist before parents.
  for (size_t i = corpus.size(); i-- > 0;) {
    auto element = std::make_unique<xml::XmlElement>(corpus.tags[i]);
    if (!corpus.texts[i].empty()) element->AddText(corpus.texts[i]);
    for (NodeId child : children[i]) {
      element->AddChild(std::move(elements[child]));
    }
    elements[i] = std::move(element);
  }
  xml::XmlDocument dom;
  dom.set_root(std::move(elements[0]));
  return xml::Serialize(dom);
}

}  // namespace xfrag::gen
