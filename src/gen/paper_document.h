// Node-for-node reconstruction of the paper's Figure-1 example document.
//
// The paper never prints the full 82-node tree, but it pins down everything
// the running example depends on, and this reconstruction satisfies all of
// it (verified by tests/gen/paper_document_test):
//
//  * node ids are pre-order ranks, n0 (root) .. n81 (last);
//  * σ_{keyword=XQuery}(nodes(D))       = {n17, n18}
//  * σ_{keyword=optimization}(nodes(D)) = {n16, n17, n81}
//  * ancestor chains: n17, n18 under n16 under n14 under n1 under n0;
//    n81 under n80 under n79 under n0 — so that the joins of Table 1
//    produce exactly the fragments the paper lists (e.g. f17 ⋈ f81 =
//    ⟨n0,n1,n14,n16,n17,n79,n80,n81⟩).

#ifndef XFRAG_GEN_PAPER_DOCUMENT_H_
#define XFRAG_GEN_PAPER_DOCUMENT_H_

#include <string>

#include "common/status.h"
#include "doc/document.h"
#include "xml/dom.h"

namespace xfrag::gen {

/// \brief Builds the Figure-1 document as a DOM (for serialization tests and
/// the examples that print XML).
xml::XmlDocument BuildPaperDom();

/// \brief Builds the Figure-1 document directly as a doc::Document.
StatusOr<doc::Document> BuildPaperDocument();

/// \brief The Figure-1 document as serialized XML text.
std::string PaperDocumentXml();

}  // namespace xfrag::gen

#endif  // XFRAG_GEN_PAPER_DOCUMENT_H_
