#include "gen/paper_document.h"

#include "common/logging.h"
#include "common/strings.h"
#include "xml/serializer.h"

namespace xfrag::gen {

namespace {

// Filler sentences; none of them contains "xquery" or "optimization", so the
// posting lists the running example depends on stay exact.
constexpr const char* kFiller[] = {
    "Storage layout and access paths determine the latency of scans.",
    "A cost estimate guides the planner toward cheaper alternatives.",
    "Semistructured data rarely conforms to a rigid schema.",
    "Path expressions navigate element hierarchies in document trees.",
    "Indexes on element content accelerate selective predicates.",
    "The algebra of nested relations inspired many tree models.",
    "Materialized views trade storage for repeated computation.",
    "Join ordering dominates plan quality in large search spaces.",
    "Textual content in documents is long and loosely structured.",
    "Recursive descent over child axes enumerates candidate nodes.",
    "Cardinality estimation errors propagate through deep plans.",
    "Buffer management policies interact with sequential scans.",
    "Logical rewrites preserve equivalence of relational expressions.",
    "Histograms summarize value distributions for the estimator.",
    "Fragmentation of documents follows editorial boundaries.",
    "Concurrency control is orthogonal to retrieval semantics.",
    "Vocabularies of markup differ across editorial pipelines.",
    "Serialization order of siblings encodes the reading sequence.",
    "A selective predicate prunes most of the candidate space.",
    "Ranking functions belong to information retrieval systems.",
};

constexpr size_t kFillerCount = sizeof(kFiller) / sizeof(kFiller[0]);

// Appends `count` filler <par> children to `parent`, cycling the sentences
// and stamping a unique marker word so every node's text differs.
void AddFillerPars(xml::XmlElement* parent, int count, int* next_id) {
  for (int i = 0; i < count; ++i) {
    xml::XmlElement* par = parent->AddElement("par");
    par->AddAttribute("id", StrFormat("n%d", *next_id));
    par->AddText(StrFormat("%s marker%d.", kFiller[static_cast<size_t>(*next_id) %
                                                   kFillerCount],
                           *next_id));
    ++*next_id;
  }
}

}  // namespace

xml::XmlDocument BuildPaperDom() {
  xml::XmlDocument dom;
  int id = 0;

  auto stamp = [&id](xml::XmlElement* e) {
    e->AddAttribute("id", StrFormat("n%d", id));
    ++id;
  };

  auto root = std::make_unique<xml::XmlElement>("article");
  stamp(root.get());  // n0
  root->AddText("Advanced Topics in Data Management.");

  // n1: first chapter — holds the running example's target fragment.
  xml::XmlElement* ch1 = root->AddElement("chapter");
  stamp(ch1);
  ch1->AddText("Query Languages for Semistructured Data.");

  xml::XmlElement* ch1_title = ch1->AddElement("title");
  stamp(ch1_title);  // n2
  ch1_title->AddText("Declarative Querying of Documents.");

  xml::XmlElement* sec_found = ch1->AddElement("section");
  stamp(sec_found);  // n3
  sec_found->AddText("Foundations of tree structured data.");
  AddFillerPars(sec_found, 10, &id);  // n4 .. n13

  XFRAG_CHECK(id == 14);
  xml::XmlElement* sec_proc = ch1->AddElement("section");
  stamp(sec_proc);  // n14
  sec_proc->AddText("Processing and rewriting of declarative queries.");

  xml::XmlElement* sec_proc_title = sec_proc->AddElement("title");
  stamp(sec_proc_title);  // n15
  sec_proc_title->AddText("Rewriting techniques for query plans.");

  xml::XmlElement* subsec = sec_proc->AddElement("subsection");
  stamp(subsec);  // n16
  subsec->AddText("Cost based optimization strategies for query engines.");

  xml::XmlElement* par17 = subsec->AddElement("par");
  stamp(par17);  // n17
  par17->AddText(
      "Static analysis of XQuery expressions enables algebraic optimization "
      "before execution begins.");

  xml::XmlElement* par18 = subsec->AddElement("par");
  stamp(par18);  // n18
  par18->AddText(
      "The XQuery data model represents documents as ordered node "
      "sequences with stable identities.");

  XFRAG_CHECK(id == 19);
  xml::XmlElement* sec_storage = ch1->AddElement("section");
  stamp(sec_storage);  // n19
  sec_storage->AddText("Storage models for hierarchical content.");
  AddFillerPars(sec_storage, 11, &id);  // n20 .. n30

  XFRAG_CHECK(id == 31);
  xml::XmlElement* sec_index = ch1->AddElement("section");
  stamp(sec_index);  // n31
  sec_index->AddText("Indexing element content at scale.");
  AddFillerPars(sec_index, 9, &id);  // n32 .. n40

  // n41: second chapter — pure filler separating the two keyword regions.
  XFRAG_CHECK(id == 41);
  xml::XmlElement* ch2 = root->AddElement("chapter");
  stamp(ch2);
  ch2->AddText("Engines for Document Collections.");

  xml::XmlElement* ch2_title = ch2->AddElement("title");
  stamp(ch2_title);  // n42
  ch2_title->AddText("Architecture of retrieval engines.");

  xml::XmlElement* sec_arch = ch2->AddElement("section");
  stamp(sec_arch);  // n43
  sec_arch->AddText("Components of a retrieval pipeline.");
  AddFillerPars(sec_arch, 15, &id);  // n44 .. n58

  XFRAG_CHECK(id == 59);
  xml::XmlElement* sec_eval = ch2->AddElement("section");
  stamp(sec_eval);  // n59
  sec_eval->AddText("Evaluation of retrieval quality.");
  AddFillerPars(sec_eval, 19, &id);  // n60 .. n78

  // n79: third chapter — the distant 'optimization' occurrence.
  XFRAG_CHECK(id == 79);
  xml::XmlElement* ch3 = root->AddElement("chapter");
  stamp(ch3);
  ch3->AddText("Relational Query Processing.");

  xml::XmlElement* sec_rel = ch3->AddElement("section");
  stamp(sec_rel);  // n80
  sec_rel->AddText("Plan selection in relational engines.");

  xml::XmlElement* par81 = sec_rel->AddElement("par");
  stamp(par81);  // n81
  par81->AddText(
      "Index selection remains central to the optimization of relational "
      "execution plans.");

  XFRAG_CHECK(id == 82);
  dom.set_root(std::move(root));
  return dom;
}

StatusOr<doc::Document> BuildPaperDocument() {
  xml::XmlDocument dom = BuildPaperDom();
  return doc::Document::FromDom(dom);
}

std::string PaperDocumentXml() {
  xml::XmlDocument dom = BuildPaperDom();
  xml::SerializeOptions options;
  options.pretty = true;
  return xml::Serialize(dom, options);
}

}  // namespace xfrag::gen
