#include "query/plan.h"

#include "common/logging.h"

namespace xfrag::query {

using algebra::FilterPtr;
namespace filters = algebra::filters;

std::unique_ptr<PlanNode> PlanNode::Clone() const {
  auto copy = std::make_unique<PlanNode>();
  copy->kind = kind;
  copy->term = term;
  copy->filter = filter;
  copy->fixed_point_reduced = fixed_point_reduced;
  for (const auto& child : children) {
    copy->children.push_back(child->Clone());
  }
  return copy;
}

namespace {

using Annotator = std::function<std::string(const PlanNode&)>;

void Render(const PlanNode& node, int depth, const Annotator* annotate,
            std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  switch (node.kind) {
    case PlanNodeKind::kScanKeyword:
      out->append("Scan[keyword=" + node.term + "]");
      if (node.filter) out->append("[push=" + node.filter->ToString() + "]");
      break;
    case PlanNodeKind::kSelect:
      out->append("Select[" + node.filter->ToString() + "]");
      break;
    case PlanNodeKind::kPairwiseJoin:
      out->append("PairwiseJoin");
      if (node.filter) out->append("[push=" + node.filter->ToString() + "]");
      break;
    case PlanNodeKind::kPowersetJoin:
      out->append("PowersetJoin");
      break;
    case PlanNodeKind::kFixedPoint:
      out->append(node.fixed_point_reduced && !node.filter
                      ? "FixedPoint[reduced]"
                      : "FixedPoint[naive]");
      if (node.filter) out->append("[push=" + node.filter->ToString() + "]");
      break;
  }
  if (annotate != nullptr) {
    std::string suffix = (*annotate)(node);
    if (!suffix.empty()) {
      out->push_back(' ');
      out->append(suffix);
    }
  }
  out->push_back('\n');
  for (const auto& child : node.children) {
    Render(*child, depth + 1, annotate, out);
  }
}

}  // namespace

std::string PlanNode::ToString() const {
  std::string out;
  Render(*this, 0, nullptr, &out);
  return out;
}

std::string PlanNode::ToStringAnnotated(
    const std::function<std::string(const PlanNode&)>& annotate) const {
  std::string out;
  Render(*this, 0, &annotate, &out);
  return out;
}

std::unique_ptr<PlanNode> MakeScan(std::string term) {
  auto node = std::make_unique<PlanNode>();
  node->kind = PlanNodeKind::kScanKeyword;
  node->term = std::move(term);
  return node;
}

std::unique_ptr<PlanNode> MakeSelect(FilterPtr filter,
                                     std::unique_ptr<PlanNode> child) {
  auto node = std::make_unique<PlanNode>();
  node->kind = PlanNodeKind::kSelect;
  node->filter = std::move(filter);
  node->children.push_back(std::move(child));
  return node;
}

std::unique_ptr<PlanNode> MakePairwiseJoin(std::unique_ptr<PlanNode> left,
                                           std::unique_ptr<PlanNode> right) {
  auto node = std::make_unique<PlanNode>();
  node->kind = PlanNodeKind::kPairwiseJoin;
  node->children.push_back(std::move(left));
  node->children.push_back(std::move(right));
  return node;
}

std::unique_ptr<PlanNode> MakePowersetJoin(std::unique_ptr<PlanNode> left,
                                           std::unique_ptr<PlanNode> right) {
  auto node = std::make_unique<PlanNode>();
  node->kind = PlanNodeKind::kPowersetJoin;
  node->children.push_back(std::move(left));
  node->children.push_back(std::move(right));
  return node;
}

std::unique_ptr<PlanNode> MakeFixedPoint(std::unique_ptr<PlanNode> child,
                                         bool reduced) {
  auto node = std::make_unique<PlanNode>();
  node->kind = PlanNodeKind::kFixedPoint;
  node->fixed_point_reduced = reduced;
  node->children.push_back(std::move(child));
  return node;
}

std::unique_ptr<PlanNode> BuildInitialPlan(
    const std::vector<std::string>& terms, const FilterPtr& filter) {
  XFRAG_CHECK(!terms.empty());
  std::unique_ptr<PlanNode> plan;
  if (terms.size() == 1) {
    // Single-term queries: σ_P(F1⁺) — every fragment composable from the
    // keyword's nodes (see DESIGN.md; the paper only spells out m >= 2).
    plan = MakeFixedPoint(MakeScan(terms[0]), /*reduced=*/false);
  } else {
    plan = MakeScan(terms[0]);
    for (size_t i = 1; i < terms.size(); ++i) {
      plan = MakePowersetJoin(std::move(plan), MakeScan(terms[i]));
    }
  }
  return MakeSelect(filter, std::move(plan));
}

std::unique_ptr<PlanNode> RewritePowersetToFixedPoint(
    std::unique_ptr<PlanNode> plan, bool reduced_fixed_point) {
  for (auto& child : plan->children) {
    child = RewritePowersetToFixedPoint(std::move(child), reduced_fixed_point);
  }
  if (plan->kind == PlanNodeKind::kPowersetJoin) {
    XFRAG_CHECK(plan->children.size() == 2);
    auto left = std::move(plan->children[0]);
    auto right = std::move(plan->children[1]);
    // Theorem 2: A ⋈* B = A⁺ ⋈ B⁺. A chain of powerset joins
    // ((F1 ⋈* F2) ⋈* F3) needs no re-closure of the intermediate result:
    // the chained pairwise join of fixed points generates the same m-ary
    // powerset join (associativity of ⋈; see DESIGN.md). So a child that is
    // itself a rewritten join is left bare, while leaves get fixed points.
    auto close = [&](std::unique_ptr<PlanNode> node) {
      if (node->kind == PlanNodeKind::kPairwiseJoin) return node;
      return MakeFixedPoint(std::move(node), reduced_fixed_point);
    };
    plan = MakePairwiseJoin(close(std::move(left)), close(std::move(right)));
  }
  if (plan->kind == PlanNodeKind::kFixedPoint) {
    plan->fixed_point_reduced = reduced_fixed_point;
  }
  return plan;
}

namespace {

// Attaches anti-monotonic filter `pa` to `node` and its descendants.
void PushFilterInto(PlanNode* node, const FilterPtr& pa) {
  switch (node->kind) {
    case PlanNodeKind::kScanKeyword: {
      // Base sets are single-node fragments; σ_Pa applies to them directly
      // (Theorem 3 pushed all the way down, Figure 5).
      // The scan node itself gains the filter; the executor applies it.
      node->filter = node->filter ? filters::And(node->filter, pa) : pa;
      return;
    }
    case PlanNodeKind::kSelect: {
      node->filter = filters::And(node->filter, pa);
      PushFilterInto(node->children[0].get(), pa);
      return;
    }
    case PlanNodeKind::kPairwiseJoin: {
      node->filter = node->filter ? filters::And(node->filter, pa) : pa;
      PushFilterInto(node->children[0].get(), pa);
      PushFilterInto(node->children[1].get(), pa);
      return;
    }
    case PlanNodeKind::kPowersetJoin: {
      // Push-down is only defined on the fixed-point form; leave the brute
      // node alone (the final selection still guarantees correctness).
      return;
    }
    case PlanNodeKind::kFixedPoint: {
      node->filter = node->filter ? filters::And(node->filter, pa) : pa;
      PushFilterInto(node->children[0].get(), pa);
      return;
    }
  }
}

}  // namespace

std::unique_ptr<PlanNode> PushDownSelection(std::unique_ptr<PlanNode> plan) {
  if (plan->kind != PlanNodeKind::kSelect) return plan;
  FilterPtr anti, residue;
  algebra::SplitAntiMonotonic(plan->filter, &anti, &residue);
  if (anti.get() == filters::True().get()) return plan;  // Nothing to push.
  PushFilterInto(plan->children[0].get(), anti);
  // The pushed Pa guarantees every produced fragment satisfies it; only the
  // residue must still be checked at the top.
  plan->filter = residue;
  return plan;
}

}  // namespace xfrag::query
