#include "query/executor.h"

#include <optional>

#include "algebra/ops_parallel.h"
#include "common/logging.h"
#include "query/batch.h"

namespace xfrag::query {

using algebra::FilterContext;
using algebra::Fragment;
using algebra::FragmentSet;
using algebra::OpMetrics;

namespace {

StatusOr<FragmentSet> Execute(const PlanNode& node,
                              const doc::Document& document,
                              const text::InvertedIndex& index,
                              const ExecutorOptions& options,
                              const FilterContext& context,
                              OpMetrics* metrics,
                              std::vector<NodeCardinality>* cardinalities);

// Runs one node and records its output cardinality.
StatusOr<FragmentSet> ExecuteRecorded(
    const PlanNode& node, const doc::Document& document,
    const text::InvertedIndex& index, const ExecutorOptions& options,
    const FilterContext& context, OpMetrics* metrics,
    std::vector<NodeCardinality>* cardinalities) {
  auto result = Execute(node, document, index, options, context, metrics,
                        cardinalities);
  if (result.ok() && cardinalities != nullptr) {
    cardinalities->push_back({&node, result->size()});
  }
  return result;
}

Status DeadlineError() {
  return Status::DeadlineExceeded("query deadline exceeded during execution");
}

StatusOr<FragmentSet> Execute(const PlanNode& node,
                              const doc::Document& document,
                              const text::InvertedIndex& index,
                              const ExecutorOptions& options,
                              const FilterContext& context,
                              OpMetrics* metrics,
                              std::vector<NodeCardinality>* cardinalities) {
  // Cooperative deadline: one check per plan node, plus the finer-grained
  // checks inside the unbounded kernels below.
  if (ShouldStop(options.cancel)) return DeadlineError();
  switch (node.kind) {
    case PlanNodeKind::kScanKeyword: {
      std::string memo_key;
      if (options.scan_memo != nullptr) {
        memo_key = ScanMemo::Key(
            options.scan_memo_document, node.term,
            node.filter != nullptr ? node.filter->ToString() : std::string());
        if (const ScanMemo::Entry* hit = options.scan_memo->Find(memo_key)) {
          // Replaying the stored deltas keeps the memoized path
          // byte-identical to re-decoding: scan metrics depend only on the
          // postings and the filter, never on execution order.
          if (metrics != nullptr) {
            metrics->filter_evals += hit->filter_evals;
            metrics->filter_rejections += hit->filter_rejections;
          }
          return hit->result;
        }
      }
      FragmentSet out;
      uint64_t evals = 0;
      uint64_t rejections = 0;
      for (doc::NodeId n : index.Lookup(node.term)) {
        Fragment f = Fragment::Single(n);
        if (node.filter != nullptr) {
          ++evals;
          if (!node.filter->Matches(f, context)) {
            ++rejections;
            continue;
          }
        }
        out.Insert(std::move(f));
      }
      if (metrics != nullptr) {
        metrics->filter_evals += evals;
        metrics->filter_rejections += rejections;
      }
      if (!memo_key.empty()) {
        options.scan_memo->Insert(std::move(memo_key),
                                  ScanMemo::Entry{out, evals, rejections});
      }
      return out;
    }
    case PlanNodeKind::kSelect: {
      XFRAG_CHECK(node.children.size() == 1);
      auto child = ExecuteRecorded(*node.children[0], document, index,
                                   options, context, metrics, cardinalities);
      if (!child.ok()) return child;
      return algebra::Select(child.value(), node.filter, context, metrics,
                             options.subtree_classes);
    }
    case PlanNodeKind::kPairwiseJoin: {
      XFRAG_CHECK(node.children.size() == 2);
      auto left = ExecuteRecorded(*node.children[0], document, index,
                                  options, context, metrics, cardinalities);
      if (!left.ok()) return left;
      auto right = ExecuteRecorded(*node.children[1], document, index,
                                   options, context, metrics, cardinalities);
      if (!right.ok()) return right;
      if (node.filter != nullptr) {
        return algebra::PairwiseJoinFilteredParallel(
            document, left.value(), right.value(), node.filter, context,
            options.thread_pool, metrics, options.subtree_classes);
      }
      return algebra::PairwiseJoinParallel(document, left.value(),
                                           right.value(), options.thread_pool,
                                           metrics);
    }
    case PlanNodeKind::kPowersetJoin: {
      XFRAG_CHECK(node.children.size() == 2);
      auto left = ExecuteRecorded(*node.children[0], document, index,
                                  options, context, metrics, cardinalities);
      if (!left.ok()) return left;
      auto right = ExecuteRecorded(*node.children[1], document, index,
                                   options, context, metrics, cardinalities);
      if (!right.ok()) return right;
      algebra::PowersetJoinOptions powerset = options.powerset;
      if (powerset.cancel == nullptr) powerset.cancel = options.cancel;
      return algebra::PowersetJoinBruteForce(document, left.value(),
                                             right.value(), powerset, metrics);
    }
    case PlanNodeKind::kFixedPoint: {
      XFRAG_CHECK(node.children.size() == 1);
      // Cross-query memoization: a FixedPoint directly over a Scan depends
      // only on the term and the attached filters, so its closure can be
      // reused between queries against the same document.
      std::string cache_key;
      if (options.fixed_point_cache != nullptr &&
          node.children[0]->kind == PlanNodeKind::kScanKeyword) {
        const PlanNode& scan = *node.children[0];
        cache_key = scan.term;
        cache_key += '\x1f';
        cache_key += scan.filter ? scan.filter->ToString() : "";
        cache_key += '\x1f';
        cache_key += node.filter ? node.filter->ToString() : "";
        cache_key += node.fixed_point_reduced ? "\x1fR" : "\x1fN";
        if (auto cached = options.fixed_point_cache->Find(cache_key)) {
          return *cached;
        }
      }
      auto child = ExecuteRecorded(*node.children[0], document, index,
                                   options, context, metrics, cardinalities);
      if (!child.ok()) return child;
      StatusOr<FragmentSet> closure = [&]() -> StatusOr<FragmentSet> {
        if (node.filter != nullptr) {
          return algebra::FixedPointFilteredParallel(
              document, child.value(), node.filter, context,
              options.thread_pool, metrics, options.cancel,
              options.subtree_classes);
        }
        if (node.fixed_point_reduced) {
          return algebra::FixedPointReducedParallel(
              document, child.value(), options.thread_pool, metrics,
              options.cancel);
        }
        return algebra::FixedPointNaiveParallel(document, child.value(),
                                                options.thread_pool, metrics,
                                                options.cancel);
      }();
      // A cancelled kernel returns the partial working set it had; it must
      // surface as an error, and above all must never be cached as if it
      // were the true closure.
      if (ShouldStop(options.cancel)) return DeadlineError();
      if (closure.ok() && !cache_key.empty()) {
        options.fixed_point_cache->Insert(cache_key, closure.value());
      }
      return closure;
    }
  }
  return Status::Internal("unknown plan node kind");
}

}  // namespace

namespace {

// Resolves the Parallelism option: parallelism 1 (or a degenerate pool)
// means the serial kernels; otherwise reuse the caller's pool or spin up a
// transient one (owned by `transient_pool`) for this plan.
ExecutorOptions ResolvePool(const ExecutorOptions& options,
                            std::optional<ThreadPool>* transient_pool) {
  ExecutorOptions resolved = options;
  if (resolved.thread_pool == nullptr && resolved.parallelism > 1) {
    transient_pool->emplace(resolved.parallelism);
    resolved.thread_pool = &**transient_pool;
  }
  if (resolved.thread_pool != nullptr &&
      resolved.thread_pool->parallelism() <= 1) {
    resolved.thread_pool = nullptr;
  }
  return resolved;
}

}  // namespace

StatusOr<FragmentSet> ExecutePlan(const PlanNode& plan,
                                  const doc::Document& document,
                                  const text::InvertedIndex& index,
                                  const ExecutorOptions& options,
                                  OpMetrics* metrics,
                                  std::vector<NodeCardinality>* cardinalities) {
  FilterContext context{&document, &index};
  std::optional<ThreadPool> transient_pool;
  ExecutorOptions resolved = ResolvePool(options, &transient_pool);
  return ExecuteRecorded(plan, document, index, resolved, context, metrics,
                         cardinalities);
}

StatusOr<std::vector<algebra::ScoredFragment>> ExecutePlanTopK(
    const PlanNode& plan, const doc::Document& document,
    const text::InvertedIndex& index, const ExecutorOptions& options,
    const algebra::JoinScorer& scorer, size_t k,
    const algebra::FragmentPredicate& accept, OpMetrics* metrics,
    std::vector<NodeCardinality>* cardinalities) {
  FilterContext context{&document, &index};
  std::optional<ThreadPool> transient_pool;
  ExecutorOptions resolved = ResolvePool(options, &transient_pool);

  // Peel σ_residue off the root; the shape σ(A ⋈ B) gets the bounded kernel.
  const PlanNode* root = &plan;
  algebra::FilterPtr residue;
  if (root->kind == PlanNodeKind::kSelect) {
    residue = root->filter;
    root = root->children[0].get();
  }
  if (root->kind == PlanNodeKind::kPairwiseJoin) {
    auto left = ExecuteRecorded(*root->children[0], document, index, resolved,
                                context, metrics, cardinalities);
    if (!left.ok()) return left.status();
    auto right = ExecuteRecorded(*root->children[1], document, index, resolved,
                                 context, metrics, cardinalities);
    if (!right.ok()) return right.status();
    // The collector must only ever hold true final answers (score pruning
    // compares candidates against heap members), so the residual selection
    // and the answer-mode condition gate admission. Evaluated inside pool
    // workers — no metrics counting here (see header).
    algebra::FragmentPredicate admit;
    if (residue != nullptr || accept) {
      admit = [&residue, &accept, context](const Fragment& f) {
        if (residue != nullptr && !residue->Matches(f, context)) return false;
        if (accept && !accept(f)) return false;
        return true;
      };
    }
    algebra::FilterPtr join_filter =
        root->filter != nullptr ? root->filter : algebra::filters::True();
    algebra::TopKCollector collector(k);
    collector.SeedFloor(resolved.score_floor);
    collector.AttachLiveFloor(resolved.live_score_floor);
    // The bounded kernel caches accept-verdicts too, so DAG compression is
    // only licensed when the residual selection is translation-invariant
    // (the `accept` callback is the caller's promise; see ExecutorOptions).
    const doc::SubtreeClassIndex* dag =
        (residue == nullptr || residue->TranslationInvariant())
            ? resolved.subtree_classes
            : nullptr;
    algebra::PairwiseJoinTopKParallel(document, left.value(), right.value(),
                                      join_filter, context, scorer, admit,
                                      &collector, resolved.thread_pool, metrics,
                                      resolved.cancel, dag);
    if (ShouldStop(resolved.cancel)) return DeadlineError();
    if (resolved.audit_score_floor && !collector.FloorAuditClean()) {
      return Status::Internal(
          "seeded score floor pruned a top-k answer (unsound floor)");
    }
    if (cardinalities != nullptr) {
      cardinalities->push_back({root, collector.size()});
      if (root != &plan) cardinalities->push_back({&plan, collector.size()});
    }
    return collector.TakeSorted();
  }

  // Fallback shapes (single-term fixed point, brute-force powerset join):
  // evaluate the whole plan — residual selection included — then heap-select.
  auto full = ExecuteRecorded(plan, document, index, resolved, context,
                              metrics, cardinalities);
  if (!full.ok()) return full.status();
  algebra::TopKCollector collector(k);
  collector.SeedFloor(resolved.score_floor);
  collector.AttachLiveFloor(resolved.live_score_floor);
  for (const Fragment& f : full.value()) {
    if (accept && !accept(f)) continue;
    collector.Offer(f, scorer.Score(f));
  }
  if (resolved.audit_score_floor && !collector.FloorAuditClean()) {
    return Status::Internal(
        "seeded score floor pruned a top-k answer (unsound floor)");
  }
  return collector.TakeSorted();
}

}  // namespace xfrag::query
