// The paper's Definition 7: a query Q_P{k1, ..., km} is a set of query terms
// plus a selection predicate P.

#ifndef XFRAG_QUERY_QUERY_H_
#define XFRAG_QUERY_QUERY_H_

#include <string>
#include <string_view>
#include <vector>

#include "algebra/filter.h"
#include "common/status.h"

namespace xfrag::query {

/// \brief A keyword query with a selection predicate.
struct Query {
  /// Query terms k1..km (conjunctive semantics, Definition 8). Terms are
  /// folded to lowercase by the engine before index lookup.
  std::vector<std::string> terms;

  /// The selection predicate P. Defaults to the always-true filter.
  algebra::FilterPtr filter = algebra::filters::True();

  /// "Q_{size<=3}{xquery, optimization}" for diagnostics.
  std::string ToString() const;
};

/// \brief Parses a filter expression in the mini-language used by the CLI and
/// the examples.
///
/// Grammar (case-insensitive keywords, '&'/'and', '|'/'or', '!'/'not'):
///
///   expr     := or_expr
///   or_expr  := and_expr (('|' | 'or') and_expr)*
///   and_expr := unary (('&' | 'and') unary)*
///   unary    := '!' unary | 'not' unary | '(' expr ')' | atom
///   atom     := 'true'
///            | 'size'     ('<=' | '>=') NUMBER
///            | 'height'   '<=' NUMBER
///            | 'span'     '<=' NUMBER
///            | 'distance' '<=' NUMBER
///            | 'root_depth' ('<=' | '>=') NUMBER
///            | 'tags_within' '(' WORD (',' WORD)* ')'
///            | 'keyword' '=' WORD
///            | 'root_tag' '=' WORD
///            | 'equal_depth' '(' WORD ',' WORD ')'
StatusOr<algebra::FilterPtr> ParseFilterExpression(std::string_view input);

}  // namespace xfrag::query

#endif  // XFRAG_QUERY_QUERY_H_
