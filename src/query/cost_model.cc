#include "query/cost_model.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "algebra/ops.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/timer.h"

namespace xfrag::query {

using algebra::Fragment;
using algebra::FragmentSet;

CostParameters CostModel::Calibrate(const doc::Document& document,
                                    uint64_t seed) {
  CostParameters parameters;
  Rng rng(seed);
  constexpr int kOps = 512;

  // Join cost: random node pairs, realistic path-filling joins.
  std::vector<std::pair<Fragment, Fragment>> pairs;
  pairs.reserve(kOps);
  for (int i = 0; i < kOps; ++i) {
    pairs.emplace_back(
        Fragment::Single(static_cast<doc::NodeId>(rng.Uniform(document.size()))),
        Fragment::Single(
            static_cast<doc::NodeId>(rng.Uniform(document.size()))));
  }
  Timer join_timer;
  size_t sink = 0;
  for (const auto& [f1, f2] : pairs) {
    sink += algebra::Join(document, f1, f2).size();
  }
  parameters.join_ns =
      std::max(1.0, static_cast<double>(join_timer.ElapsedNanos()) / kOps);

  // Filter cost: size filter on the fragments just produced.
  algebra::FilterContext context{&document, nullptr};
  auto filter = algebra::filters::SizeAtMost(4);
  Timer filter_timer;
  for (const auto& [f1, f2] : pairs) {
    Fragment joined = algebra::Join(document, f1, f2);
    if (filter->Matches(joined, context)) ++sink;
  }
  double joined_ns = static_cast<double>(filter_timer.ElapsedNanos()) / kOps;
  parameters.filter_ns = std::max(1.0, joined_ns - parameters.join_ns);

  // Prefilter cost: the O(1) summary-bounds check the join kernels run on
  // each candidate pair before materializing anything.
  Timer prefilter_timer;
  for (const auto& [f1, f2] : pairs) {
    algebra::JoinBounds bounds = algebra::ComputeJoinBounds(
        document, f1.Summary(document), f2.Summary(document));
    if (filter->RejectsJoinBounds(bounds, context)) ++sink;
  }
  parameters.prefilter_ns = std::max(
      1.0, static_cast<double>(prefilter_timer.ElapsedNanos()) / kOps);
  // Keep the compiler from discarding the measurement loops.
  if (sink == static_cast<size_t>(-1)) parameters.join_ns += 1;
  return parameters;
}

double CostModel::EstimateFixedPointSize(size_t n, double rf) const {
  if (n <= 1) return static_cast<double>(n);
  // k independent members generate up to 2^k − 1 distinct subset joins; the
  // n − k eliminated members are absorbed into joins of the independent
  // ones, contributing only themselves.
  double k = std::max(1.0, static_cast<double>(n) * (1.0 - rf));
  double independent = std::pow(2.0, std::min(k, 40.0)) - 1.0;
  double absorbed = static_cast<double>(n) - k;
  return std::min(independent + absorbed, parameters_.fixed_point_cap);
}

TopKCostEstimate CostModel::EstimateTopKJoin(double pairs,
                                             double prune_rate) const {
  TopKCostEstimate estimate;
  pairs = std::max(pairs, 0.0);
  prune_rate = std::min(std::max(prune_rate, 0.0), 1.0);
  // Unbounded baseline: every pair joins, filters, dedups, and every
  // produced fragment is scored for the full ranking.
  estimate.full_ns =
      pairs * (parameters_.join_ns + parameters_.filter_ns +
               parameters_.dedup_ns + parameters_.score_ns);
  // Bounded path: every pair pays the O(1) bound check; only survivors pay
  // for the join, filter, and exact score (the heap insert is priced as the
  // dedup unit).
  double kept = pairs * (1.0 - prune_rate);
  estimate.bounded_ns =
      pairs * parameters_.score_bound_ns +
      kept * (parameters_.join_ns + parameters_.filter_ns +
              parameters_.dedup_ns + parameters_.score_ns);
  return estimate;
}

CostInputs CostModel::GatherInputs(const Query& query,
                                   const doc::Document& document,
                                   const text::InvertedIndex& index,
                                   const OptimizerOptions& options) const {
  CostInputs inputs;
  algebra::FilterPtr anti, residue;
  algebra::SplitAntiMonotonic(query.filter, &anti, &residue);
  inputs.has_anti_monotonic =
      anti.get() != algebra::filters::True().get();

  std::vector<std::vector<doc::NodeId>> postings;
  for (const auto& term : query.terms) {
    const auto& list = index.Lookup(term);
    postings.push_back(list);
    inputs.base_sizes.push_back(list.size());
    FragmentSet base;
    for (doc::NodeId n : list) base.Insert(Fragment::Single(n));
    inputs.rf_estimates.push_back(EstimateReductionFactor(
        document, base, options.rf_sample_size, options.seed));
  }

  // Filter selectivity: evaluate the anti-monotonic part on the joins of a
  // sample of random cross-term posting pairs.
  if (inputs.has_anti_monotonic && postings.size() >= 1) {
    Rng rng(options.seed ^ 0x5e1ec7);
    algebra::FilterContext context{&document, &index};
    int accepted = 0;
    constexpr int kSamples = 24;
    const auto& left = postings.front();
    const auto& right = postings.back();
    if (!left.empty() && !right.empty()) {
      for (int i = 0; i < kSamples; ++i) {
        Fragment f1 = Fragment::Single(left[rng.Uniform(left.size())]);
        Fragment f2 = Fragment::Single(right[rng.Uniform(right.size())]);
        Fragment joined = algebra::Join(document, f1, f2);
        if (anti->Matches(joined, context)) ++accepted;
      }
      inputs.anti_monotonic_selectivity =
          static_cast<double>(accepted) / kSamples;
    }
  }
  return inputs;
}

std::vector<StrategyCost> CostModel::EstimateAll(
    const CostInputs& inputs, size_t brute_force_limit) const {
  const double join_ns = parameters_.join_ns + parameters_.dedup_ns;
  std::vector<StrategyCost> out;

  auto chain_cost = [&](const std::vector<double>& fp_sizes) {
    // Pairwise-join chain of the fixed points: m1·m2 + (m1·m2)·m3 + ...
    // Intermediate results shrink with dedup; we price them undeduplicated
    // (upper bound).
    double acc = fp_sizes.empty() ? 0.0 : fp_sizes[0];
    double joins = 0.0;
    for (size_t i = 1; i < fp_sizes.size(); ++i) {
      joins += acc * fp_sizes[i];
      acc = std::min(acc * fp_sizes[i], parameters_.fixed_point_cap);
    }
    return joins;
  };

  // ---- Brute force -------------------------------------------------------
  {
    StrategyCost cost;
    cost.strategy = Strategy::kBruteForce;
    bool feasible = true;
    double subset_joins = 0.0, cross = 1.0;
    for (size_t n : inputs.base_sizes) {
      if (n > brute_force_limit) feasible = false;
      double subsets = std::pow(2.0, std::min<double>(
                                         static_cast<double>(n), 50.0));
      subset_joins += subsets;
      cross *= subsets;
    }
    if (!feasible || inputs.base_sizes.empty()) {
      cost.nanos = std::numeric_limits<double>::infinity();
      cost.detail = "refused: base set exceeds subset-enumeration guard";
    } else {
      double joins = subset_joins + cross;
      cost.nanos = joins * join_ns;
      cost.detail = StrFormat("~%.0f joins (exponential)", joins);
    }
    out.push_back(cost);
  }

  // ---- Fixed point, naive and reduced ------------------------------------
  auto fixed_point_cost = [&](bool reduced) {
    double joins = 0.0;
    std::vector<double> fp_sizes;
    for (size_t i = 0; i < inputs.base_sizes.size(); ++i) {
      double n = static_cast<double>(inputs.base_sizes[i]);
      double rf = inputs.rf_estimates.size() > i ? inputs.rf_estimates[i] : 0;
      double k = std::max(1.0, n * (1.0 - rf));
      double m = EstimateFixedPointSize(inputs.base_sizes[i], rf);
      fp_sizes.push_back(m);
      double iterations = reduced ? std::max(0.0, k - 1.0) : k;
      joins += iterations * m * n;
      if (reduced) joins += n * n / 2.0;  // The ⊖ pass.
    }
    joins += chain_cost(fp_sizes);
    return joins;
  };
  {
    StrategyCost cost;
    cost.strategy = Strategy::kFixedPointNaive;
    double joins = fixed_point_cost(/*reduced=*/false);
    cost.nanos = joins * join_ns;
    cost.detail = StrFormat("~%.0f joins incl. convergence checks", joins);
    out.push_back(cost);
  }
  {
    StrategyCost cost;
    cost.strategy = Strategy::kFixedPointReduced;
    double joins = fixed_point_cost(/*reduced=*/true);
    cost.nanos = joins * join_ns;
    cost.detail = StrFormat("~%.0f joins incl. the reduce pass", joins);
    out.push_back(cost);
  }

  // ---- Push-down ----------------------------------------------------------
  {
    StrategyCost cost;
    cost.strategy = Strategy::kPushDown;
    if (!inputs.has_anti_monotonic) {
      cost.nanos = std::numeric_limits<double>::infinity();
      cost.detail = "inapplicable: no anti-monotonic conjunct";
    } else {
      double s = std::clamp(inputs.anti_monotonic_selectivity, 0.01, 1.0);
      double pairs = 0.0;
      std::vector<double> fp_sizes;
      for (size_t i = 0; i < inputs.base_sizes.size(); ++i) {
        double n = static_cast<double>(inputs.base_sizes[i]);
        double rf =
            inputs.rf_estimates.size() > i ? inputs.rf_estimates[i] : 0;
        // Filtered fixed point: surviving join results scale by s, so the
        // closure size shrinks to s·m (floored at the base size).
        double m = std::max(n, s * EstimateFixedPointSize(
                                       inputs.base_sizes[i], rf));
        fp_sizes.push_back(m);
        double k = std::max(1.0, n * (1.0 - rf));
        pairs += k * m * n;
      }
      double chain = chain_cost(fp_sizes);
      // Every candidate pair pays the O(1) summary-bounds check; only the
      // surviving share s materializes the join and runs the real filter
      // (the prefilter is sound for the pushed-down anti-monotonic part, so
      // the rejected 1−s share never allocates). Chain joins operate on
      // already-filtered sets and stay fully priced.
      cost.nanos = pairs * parameters_.prefilter_ns +
                   (s * pairs + chain) * join_ns +
                   (s * pairs + chain) * parameters_.filter_ns;
      cost.detail = StrFormat(
          "~%.0f candidate pairs at selectivity %.2f (prefilter-priced)",
          pairs, s);
    }
    out.push_back(cost);
  }

  std::sort(out.begin(), out.end(),
            [](const StrategyCost& a, const StrategyCost& b) {
              return a.nanos < b.nanos;
            });
  return out;
}

StrategyCost CostModel::Choose(const CostInputs& inputs,
                               size_t brute_force_limit) const {
  return EstimateAll(inputs, brute_force_limit).front();
}

PlanDecision ChooseStrategyCostBased(const Query& query,
                                     const doc::Document& document,
                                     const text::InvertedIndex& index,
                                     const CostModel& model,
                                     const OptimizerOptions& options) {
  PlanDecision decision;
  algebra::SplitAntiMonotonic(query.filter, &decision.anti_monotonic,
                              &decision.residue);
  CostInputs inputs = model.GatherInputs(query, document, index, options);
  decision.estimated_rf = inputs.rf_estimates;
  std::vector<StrategyCost> costs =
      model.EstimateAll(inputs, options.brute_force_limit);
  decision.strategy = costs.front().strategy;
  decision.rationale = "cost model ranking:";
  for (const StrategyCost& cost : costs) {
    decision.rationale += StrFormat(
        " [%s %.0fus: %s]", std::string(StrategyName(cost.strategy)).c_str(),
        cost.nanos / 1000.0, cost.detail.c_str());
  }
  return decision;
}

}  // namespace xfrag::query
