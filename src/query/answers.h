// Answer presentation (paper §5, "overlapping answers"): in this model,
// overlapping answers are simply sub-fragments of larger answers. The paper
// proposes either hiding them or presenting them grouped under their target
// fragments "in a visually pleasing way to show their structural
// relationships". Both are implemented here, plus extraction of an answer
// fragment back to XML text.

#ifndef XFRAG_QUERY_ANSWERS_H_
#define XFRAG_QUERY_ANSWERS_H_

#include <string>
#include <vector>

#include "algebra/fragment_set.h"
#include "doc/document.h"

namespace xfrag::query {

/// One maximal answer together with the answers it subsumes.
struct AnswerGroup {
  /// A maximal fragment (not contained in any other answer).
  algebra::Fragment target;
  /// Answers strictly contained in `target`, largest first.
  std::vector<algebra::Fragment> overlaps;

  AnswerGroup(algebra::Fragment t) : target(std::move(t)) {}  // NOLINT
};

/// \brief The maximal answers only — every fragment of `answers` that is not
/// a strict sub-fragment of another (the "hide overlaps" policy of §5).
algebra::FragmentSet MaximalAnswers(const algebra::FragmentSet& answers);

/// \brief Groups `answers` by structural containment: one group per maximal
/// fragment, with its sub-fragment answers attached (the "present together"
/// policy of §5). A non-maximal answer contained in several targets is
/// attached to the first (smallest canonical) one. Groups are ordered by
/// their target's canonical order.
std::vector<AnswerGroup> GroupOverlappingAnswers(
    const algebra::FragmentSet& answers);

/// \brief Renders an answer fragment as an XML snippet: the fragment's nodes
/// with their own text, preserving document structure; descendants of a
/// member that are not themselves members are elided (marked with an
/// ellipsis comment when `mark_elisions` is set).
std::string FragmentToXml(const algebra::Fragment& fragment,
                          const doc::Document& document,
                          bool mark_elisions = false);

}  // namespace xfrag::query

#endif  // XFRAG_QUERY_ANSWERS_H_
