#include "query/answers.h"

#include <algorithm>

#include "xml/serializer.h"

namespace xfrag::query {

using algebra::Fragment;
using algebra::FragmentSet;

FragmentSet MaximalAnswers(const FragmentSet& answers) {
  FragmentSet out;
  for (const Fragment& candidate : answers) {
    bool dominated = false;
    for (const Fragment& other : answers) {
      if (&other != &candidate && other != candidate &&
          other.ContainsFragment(candidate)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) out.Insert(candidate);
  }
  return out;
}

std::vector<AnswerGroup> GroupOverlappingAnswers(const FragmentSet& answers) {
  FragmentSet maximal = MaximalAnswers(answers);
  std::vector<Fragment> targets = maximal.Sorted();
  std::vector<AnswerGroup> groups;
  groups.reserve(targets.size());
  for (Fragment& target : targets) {
    groups.emplace_back(std::move(target));
  }
  // Attach each non-maximal answer to the first target containing it.
  std::vector<Fragment> rest;
  for (const Fragment& f : answers) {
    if (!maximal.Contains(f)) rest.push_back(f);
  }
  // Largest first within each group.
  std::sort(rest.begin(), rest.end(),
            [](const Fragment& a, const Fragment& b) {
              if (a.size() != b.size()) return a.size() > b.size();
              return a < b;
            });
  for (const Fragment& f : rest) {
    for (AnswerGroup& group : groups) {
      if (group.target.ContainsFragment(f)) {
        group.overlaps.push_back(f);
        break;
      }
    }
  }
  return groups;
}

namespace {

void RenderNode(const Fragment& fragment, const doc::Document& document,
                doc::NodeId node, bool mark_elisions, int depth,
                std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->push_back('<');
  out->append(document.tag(node));
  out->push_back('>');
  std::string_view text = document.text(node);
  if (!text.empty()) {
    out->append(xml::EscapeText(text));
  }
  // Member children, in document order; non-member children are elided.
  std::vector<doc::NodeId> member_children;
  bool elided = false;
  for (doc::NodeId child : document.children(node)) {
    if (fragment.ContainsNode(child)) {
      member_children.push_back(child);
    } else {
      elided = true;
    }
  }
  if (elided && mark_elisions) {
    out->append("<!-- ... -->");
  }
  if (!member_children.empty()) {
    out->push_back('\n');
    for (doc::NodeId child : member_children) {
      RenderNode(fragment, document, child, mark_elisions, depth + 1, out);
    }
    out->append(static_cast<size_t>(depth) * 2, ' ');
  }
  out->append("</");
  out->append(document.tag(node));
  out->append(">\n");
}

}  // namespace

std::string FragmentToXml(const Fragment& fragment,
                          const doc::Document& document, bool mark_elisions) {
  std::string out;
  RenderNode(fragment, document, fragment.root(), mark_elisions, 0, &out);
  return out;
}

}  // namespace xfrag::query
