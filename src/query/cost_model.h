// A concrete cost model for the paper's §5 discussion ("to prove the
// viability of our query model, simply presenting the techniques of logical
// query optimization may be inadequate... we plan to develop a cost model").
//
// The model prices the four evaluation strategies for a query from four
// observable inputs, all obtainable cheaply before execution:
//   n_i — base posting-list sizes |F_i|
//   rf_i — sampled reduction factors (→ estimated reduced-set sizes k_i)
//   s    — sampled anti-monotonic-filter selectivity on joined pairs
//   unit costs — calibrated by timing a few hundred real joins/filters
//
// Size heuristics (documented with their derivations in cost_model.cc):
//   fixed-point size  m_i ≈ min(2^{k_i} − 1 + (n_i − k_i), cap)
//   naive FP joins    ≈ k_i · m_i · n_i      (k_i iterations incl. check)
//   reduced FP joins  ≈ (k_i − 1) · m_i · n_i + n_i²/2 (the ⊖ pass)
//   push-down         ≈ the same recurrences with filtered sizes s·m_i
//   brute force       ≈ 2^{n1} + 2^{n2} + 2^{n1}·2^{n2}
//
// The model is intentionally coarse — its job is to *rank* strategies, and
// the bench (bench_rf_optimizer) and tests validate ranking agreement on
// clear-cut inputs, not absolute accuracy.

#ifndef XFRAG_QUERY_COST_MODEL_H_
#define XFRAG_QUERY_COST_MODEL_H_

#include <string>
#include <vector>

#include "query/optimizer.h"
#include "query/query.h"
#include "text/inverted_index.h"

namespace xfrag::query {

/// Calibratable unit costs (nanoseconds).
struct CostParameters {
  /// Cost of one fragment join of typical answer-sized fragments.
  double join_ns = 400.0;
  /// Cost of one filter evaluation.
  double filter_ns = 60.0;
  /// Cost of one O(1) summary-bounds check — what a prefilter-rejected pair
  /// pays instead of join_ns + filter_ns (one LCA lookup plus arithmetic).
  double prefilter_ns = 20.0;
  /// Hash-set insert/dedup per produced fragment.
  double dedup_ns = 120.0;
  /// Cost of one O(1) score-upper-bound check in the top-k kernels (per-term
  /// posting-list binary searches; what a score-rejected pair pays instead
  /// of join + filter + scoring).
  double score_bound_ns = 80.0;
  /// Cost of one exact score evaluation (AnswerScorer::Score over a typical
  /// answer fragment).
  double score_ns = 500.0;
  /// Cap on estimated fixed-point cardinality (mirrors practical limits).
  double fixed_point_cap = 1e7;
};

/// Pre-execution observations about one query.
struct CostInputs {
  /// |F_i| per term.
  std::vector<size_t> base_sizes;
  /// Estimated reduction factor per term (0 when unknown).
  std::vector<double> rf_estimates;
  /// Estimated probability that the anti-monotonic part of the filter
  /// accepts the join of two random base nodes (1.0 without such a filter).
  double anti_monotonic_selectivity = 1.0;
  /// True when the filter has a non-trivial anti-monotonic conjunct.
  bool has_anti_monotonic = false;
};

/// Pricing of a score-bounded top-k final join against the unbounded
/// join-everything-then-rank-everything baseline (EstimateTopKJoin).
struct TopKCostEstimate {
  /// Estimated nanoseconds for the bounded kernel.
  double bounded_ns = 0.0;
  /// Estimated nanoseconds for full evaluation + ranking of every answer.
  double full_ns = 0.0;
};

/// One strategy's estimated cost.
struct StrategyCost {
  Strategy strategy = Strategy::kFixedPointNaive;
  /// Estimated nanoseconds; infinity when the strategy is inapplicable
  /// (e.g. brute force beyond the subset-enumeration guard).
  double nanos = 0.0;
  /// Breakdown for EXPLAIN.
  std::string detail;
};

/// \brief The §5 cost model.
class CostModel {
 public:
  explicit CostModel(CostParameters parameters = {})
      : parameters_(parameters) {}

  /// \brief Measures real join and filter costs on `document` (a few hundred
  /// deterministic operations) and returns calibrated parameters.
  static CostParameters Calibrate(const doc::Document& document,
                                  uint64_t seed = 7);

  /// \brief Gathers CostInputs for `query`: posting sizes, sampled RF per
  /// term, and sampled filter selectivity.
  CostInputs GatherInputs(const Query& query, const doc::Document& document,
                          const text::InvertedIndex& index,
                          const OptimizerOptions& options = {}) const;

  /// \brief Estimated costs of all four strategies, cheapest first.
  std::vector<StrategyCost> EstimateAll(const CostInputs& inputs,
                                        size_t brute_force_limit = 12) const;

  /// \brief argmin of EstimateAll.
  StrategyCost Choose(const CostInputs& inputs,
                      size_t brute_force_limit = 12) const;

  /// \brief Estimated fixed-point cardinality for a base set of size `n`
  /// with reduction factor `rf` (exposed for tests).
  double EstimateFixedPointSize(size_t n, double rf) const;

  /// \brief Prices the score-bounded top-k final join over `pairs` candidate
  /// pairs, of which a fraction `prune_rate` (in [0, 1]) is rejected by the
  /// score bound, against the unbounded join + rank-everything baseline.
  /// Monotone: more pruning can only lower the bounded estimate.
  TopKCostEstimate EstimateTopKJoin(double pairs, double prune_rate) const;

  const CostParameters& parameters() const { return parameters_; }

 private:
  CostParameters parameters_;
};

/// \brief Cost-based variant of ChooseStrategy: gathers inputs, prices all
/// strategies, and returns a decision whose rationale lists the estimates.
PlanDecision ChooseStrategyCostBased(const Query& query,
                                     const doc::Document& document,
                                     const text::InvertedIndex& index,
                                     const CostModel& model,
                                     const OptimizerOptions& options = {});

}  // namespace xfrag::query

#endif  // XFRAG_QUERY_COST_MODEL_H_
