// Batched multi-query evaluation: the engine-side sharing layer behind the
// server's POST /query_batch endpoint. Concurrent queries over the same
// fragment space share most of their physical work — term-dictionary lookups,
// posting decodes, and scan-filter evaluation — yet a sequential Evaluate
// loop pays all of it once per query. This module shares that work across
// the items of one batch while keeping every item's answers AND operator
// metrics byte-identical to what a sequential evaluation would produce:
//
//  * ScanMemo memoizes kScanKeyword results within a batch, keyed by the
//    canonical (document, folded term, filter) triple — the normalized form
//    of the scan sub-plan. A hit replays the stored FragmentSet together
//    with the scan's exact filter_evals/filter_rejections deltas, which is
//    sound because scan metrics depend only on the postings and the filter,
//    never on execution order or cache state (scans are never cached by the
//    FixedPointCache today, so a sequential run always pays them in full).
//
//  * GroupQueriesByTerms partitions a batch into term-connected groups
//    (union-find over case-folded terms). Items inside a group run
//    sequentially in submission order, so shared mutable state (the
//    fixed-point cache, the result cache) evolves exactly as it would under
//    sequential requests; groups touch disjoint term sets, hence disjoint
//    cache keys, so *groups* are safe to run in parallel. The one observable
//    caveat: LRU eviction order of an at-capacity cache can differ when
//    groups interleave — entries kept/evicted may vary, results never do.
//
//  * EvaluateBatch drives the per-document loop: one ScanMemo per
//    (group), items evaluated in order, per-item StatusOr<EvalResult>.

#ifndef XFRAG_QUERY_BATCH_H_
#define XFRAG_QUERY_BATCH_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "algebra/fragment_set.h"
#include "common/status.h"
#include "doc/document.h"
#include "query/engine.h"
#include "query/query.h"
#include "text/inverted_index.h"

namespace xfrag::query {

/// \brief Batch-scoped memo of keyword-scan results.
///
/// Not synchronized: one memo belongs to exactly one term-connected group,
/// and a group runs on one thread. A memo may span several documents — the
/// document index participates in the key via Key().
class ScanMemo {
 public:
  struct Entry {
    algebra::FragmentSet result;
    /// Exact metric deltas the original scan charged, replayed on a hit so
    /// memoized metrics match sequential evaluation bit-for-bit.
    uint64_t filter_evals = 0;
    uint64_t filter_rejections = 0;
  };

  /// \brief Canonical key for a scan of `term` under `filter_text` against
  /// document `document_index`. The term is case-folded (the index folds at
  /// lookup, so scans differing only by case are the same scan).
  static std::string Key(size_t document_index, std::string_view term,
                         const std::string& filter_text);

  /// Returns the memoized entry, or nullptr. Counts a hit or a miss.
  const Entry* Find(const std::string& key);

  /// Memoizes `entry` under `key` (first writer wins).
  void Insert(std::string key, Entry entry);

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  size_t size() const { return entries_.size(); }

 private:
  std::unordered_map<std::string, Entry> entries_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

/// \brief Partitions batch items into term-connected groups.
///
/// Two queries that share any case-folded term land in the same group (the
/// transitive closure: {a,b}, {b,c}, {c,d} is one group). Each group lists
/// item indices in ascending submission order; groups are ordered by their
/// smallest member. Items in distinct groups have disjoint term sets and may
/// evaluate concurrently without observing each other through the scan memo,
/// the fixed-point cache, or the result cache.
std::vector<std::vector<size_t>> GroupQueriesByTerms(
    const std::vector<const Query*>& queries);

/// One item of an engine-level batch.
struct BatchItem {
  const Query* query = nullptr;
  EvalOptions options;
};

/// Sharing counters produced by one EvaluateBatch call.
struct BatchEvalStats {
  /// Number of term-connected groups the batch split into.
  uint64_t groups = 0;
  /// Scan sub-plans answered from the memo instead of re-evaluated.
  uint64_t subplans_shared = 0;
};

/// \brief Evaluates every item against one document, sharing keyword scans
/// within each term-connected group.
///
/// Results and metrics are byte-identical to calling
/// QueryEngine::Evaluate(item.query, item.options) sequentially in item
/// order. Any ExecutorOptions::scan_memo the caller left set on an item is
/// overridden. `document_index` keys memo entries (pass the collection
/// position when batching across documents with one memo per group).
std::vector<StatusOr<EvalResult>> EvaluateBatch(
    const doc::Document& document, const text::InvertedIndex& index,
    const std::vector<BatchItem>& items, size_t document_index = 0,
    BatchEvalStats* stats = nullptr);

}  // namespace xfrag::query

#endif  // XFRAG_QUERY_BATCH_H_
