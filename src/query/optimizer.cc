#include "query/optimizer.h"

#include <algorithm>

#include "algebra/ops.h"
#include "common/rng.h"
#include "common/strings.h"

namespace xfrag::query {

using algebra::Fragment;
using algebra::FragmentSet;

std::string_view StrategyName(Strategy strategy) {
  switch (strategy) {
    case Strategy::kBruteForce:
      return "brute-force";
    case Strategy::kFixedPointNaive:
      return "fixed-point-naive";
    case Strategy::kFixedPointReduced:
      return "fixed-point-reduced";
    case Strategy::kPushDown:
      return "push-down";
    case Strategy::kAuto:
      return "auto";
  }
  return "unknown";
}

double ReductionFactor(const doc::Document& document, const FragmentSet& set) {
  if (set.size() < 2) return 0.0;
  FragmentSet reduced = algebra::Reduce(document, set);
  return static_cast<double>(set.size() - reduced.size()) /
         static_cast<double>(set.size());
}

double EstimateReductionFactor(const doc::Document& document,
                               const FragmentSet& set, size_t sample_size,
                               uint64_t seed) {
  if (set.size() <= sample_size) return ReductionFactor(document, set);
  Rng rng(seed);
  std::vector<size_t> indexes(set.size());
  for (size_t i = 0; i < indexes.size(); ++i) indexes[i] = i;
  rng.Shuffle(&indexes);
  FragmentSet sample;
  for (size_t i = 0; i < sample_size; ++i) sample.Insert(set[indexes[i]]);
  return ReductionFactor(document, sample);
}

PlanDecision ChooseStrategy(const Query& query, const doc::Document& document,
                            const text::InvertedIndex& index,
                            const OptimizerOptions& options) {
  PlanDecision decision;
  algebra::SplitAntiMonotonic(query.filter, &decision.anti_monotonic,
                              &decision.residue);

  const bool has_anti =
      decision.anti_monotonic.get() != algebra::filters::True().get();
  if (has_anti) {
    // Theorem 3: pushing σ_Pa below the joins never adds fragments and
    // strictly prunes the join inputs; always preferable.
    decision.strategy = Strategy::kPushDown;
    decision.rationale =
        "anti-monotonic conjunct '" + decision.anti_monotonic->ToString() +
        "' found; Theorem 3 push-down applies";
    return decision;
  }

  // No pushable filter: choose among the unfiltered closure strategies.
  size_t max_base = 0;
  double min_rf = 1.0;
  for (const auto& term : query.terms) {
    const auto& postings = index.Lookup(term);
    max_base = std::max(max_base, postings.size());
    FragmentSet base;
    for (doc::NodeId n : postings) base.Insert(Fragment::Single(n));
    double rf = EstimateReductionFactor(document, base,
                                        options.rf_sample_size, options.seed);
    decision.estimated_rf.push_back(rf);
    min_rf = std::min(min_rf, rf);
  }

  if (max_base <= options.brute_force_limit && max_base <= 4) {
    decision.strategy = Strategy::kBruteForce;
    decision.rationale = StrFormat(
        "base sets tiny (max %zu); subset enumeration is cheapest", max_base);
    return decision;
  }
  if (!decision.estimated_rf.empty() && min_rf >= options.rf_threshold) {
    decision.strategy = Strategy::kFixedPointReduced;
    decision.rationale = StrFormat(
        "estimated RF %.2f >= threshold %.2f; Theorem-1 reduced fixed point",
        min_rf, options.rf_threshold);
    return decision;
  }
  decision.strategy = Strategy::kFixedPointNaive;
  decision.rationale = StrFormat(
      "estimated RF %.2f below threshold %.2f; ⊖ overhead not justified",
      decision.estimated_rf.empty() ? 0.0 : min_rf, options.rf_threshold);
  return decision;
}

}  // namespace xfrag::query
