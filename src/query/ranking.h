// IR-style ranking of answer fragments. The paper deliberately stays within
// database-style filtering but notes that "ranking techniques described in
// those studies can be easily incorporated into our work" (§6) — this module
// is that incorporation point: a small, deterministic TF-IDF-flavoured
// scorer over the answer set, orthogonal to the algebra (it never changes
// *which* fragments are answers, only their presentation order).

#ifndef XFRAG_QUERY_RANKING_H_
#define XFRAG_QUERY_RANKING_H_

#include <string>
#include <vector>

#include "algebra/fragment_set.h"
#include "text/inverted_index.h"

namespace xfrag::query {

/// Scoring knobs.
struct RankingOptions {
  /// Weight of the size penalty: larger fragments dilute their keyword
  /// evidence. 0 disables the penalty.
  double size_penalty = 1.0;
};

/// An answer with its score.
struct RankedAnswer {
  algebra::Fragment fragment;
  double score = 0.0;

  RankedAnswer(algebra::Fragment f, double s)
      : fragment(std::move(f)), score(s) {}
};

/// \brief Scores and orders `answers` for the query `terms`, best first.
///
/// score(f) = Σ_t idf(t) · |{n ∈ f : t ∈ keywords(n)}|
///            ──────────────────────────────────────────
///                 1 + size_penalty · ln(1 + |f|)
///
/// with idf(t) = ln(1 + N / df(t)) over the document's N nodes. Dense,
/// focused fragments outrank sprawling ones; rare terms count more than
/// ubiquitous ones. Ties break on the canonical fragment order, so the
/// result is fully deterministic.
std::vector<RankedAnswer> RankAnswers(const algebra::FragmentSet& answers,
                                      const std::vector<std::string>& terms,
                                      const doc::Document& document,
                                      const text::InvertedIndex& index,
                                      const RankingOptions& options = {});

}  // namespace xfrag::query

#endif  // XFRAG_QUERY_RANKING_H_
