// IR-style ranking of answer fragments. The paper deliberately stays within
// database-style filtering but notes that "ranking techniques described in
// those studies can be easily incorporated into our work" (§6) — this module
// is that incorporation point: a small, deterministic TF-IDF-flavoured
// scorer over the answer set, orthogonal to the algebra (it never changes
// *which* fragments are answers, only their presentation order).

#ifndef XFRAG_QUERY_RANKING_H_
#define XFRAG_QUERY_RANKING_H_

#include <mutex>
#include <string>
#include <vector>

#include "algebra/fragment_set.h"
#include "algebra/topk.h"
#include "doc/document.h"
#include "text/inverted_index.h"

namespace xfrag::query {

/// Scoring knobs.
struct RankingOptions {
  /// Weight of the size penalty: larger fragments dilute their keyword
  /// evidence. 0 disables the penalty. Must be >= 0 (negative values are
  /// clamped to 0: the top-k score upper bound relies on the penalty growing
  /// with fragment size).
  double size_penalty = 1.0;
};

/// An answer with its score.
struct RankedAnswer {
  algebra::Fragment fragment;
  double score = 0.0;

  RankedAnswer(algebra::Fragment f, double s)
      : fragment(std::move(f)), score(s) {}
};

/// \brief Scores and orders `answers` for the query `terms`, best first.
///
/// score(f) = Σ_t idf(t) · |{n ∈ f : t ∈ keywords(n)}|
///            ──────────────────────────────────────────
///                 1 + size_penalty · ln(1 + |f|)
///
/// with idf(t) = ln(1 + N / df(t)) over the document's N nodes. Dense,
/// focused fragments outrank sprawling ones; rare terms count more than
/// ubiquitous ones. Ties break on the canonical fragment order, so the
/// result is fully deterministic.
std::vector<RankedAnswer> RankAnswers(const algebra::FragmentSet& answers,
                                      const std::vector<std::string>& terms,
                                      const doc::Document& document,
                                      const text::InvertedIndex& index,
                                      const RankingOptions& options = {});

/// \brief The RankAnswers scorer as an algebra::JoinScorer — the bridge that
/// lets the score-bounded join kernels (PairwiseJoinTopK) prune against the
/// exact serving-side ranking.
///
/// Score(f) is bit-identical to the score RankAnswers assigns f (RankAnswers
/// delegates here). UpperBound(b) is sound for any join whose bounds are b:
/// every member of f1 ⋈ f2 lies in the exact pre-order interval
/// [b.min_pre, b.min_pre + b.span], so per-term hits are at most the posting
/// count inside that interval (two binary searches); the size penalty is
/// monotone in |f| ≥ b.size_lower. Both inequalities survive IEEE rounding
/// because the bound accumulates terms in the same order as Score and every
/// rounding step is monotone — see docs/ALGEBRA.md "Top-k and score bounds".
///
/// The scorer also opts into the kernels' *evidence* bound, which is what
/// makes serving-side top-k floors bite: every member of f1 ⋈ f2 lies on a
/// tree path between members of f1 ∪ f2 and is therefore an ancestor-or-self
/// of a member of f1 or of f2, so the join's per-term hit count is at most
/// hitsAnc(f1) + hitsAnc(f2), where hitsAnc(f) counts the term's posting
/// nodes whose subtree contains a member of f. hitsAnc(f) is computed once
/// per *input* fragment (FragmentEvidence); each pair then costs O(#terms)
/// arithmetic (EvidenceUpperBound) — and, unlike the interval bounds, it
/// stays tight for pairs that straddle most of a document. Soundness under
/// IEEE rounding follows the same argument as UpperBound: per-term counts
/// dominate integer-exactly, and every multiply/add/divide step is monotone
/// and ordered as in Score.
///
/// Read-only after construction, hence safe to share across worker threads.
/// The document and the index (and its posting lists) must outlive the
/// scorer.
class AnswerScorer : public algebra::JoinScorer {
 public:
  AnswerScorer(const std::vector<std::string>& terms,
               const doc::Document& document, const text::InvertedIndex& index,
               const RankingOptions& options = {});

  double Score(const algebra::Fragment& fragment) const override;
  double UpperBound(const algebra::JoinBounds& bounds) const override;
  /// Arithmetic-only stage: per-term hits can exceed neither the document
  /// frequency nor the interval width (span + 1 node ids). Dominates
  /// UpperBound, which replaces the width cap by the actual posting count
  /// inside the interval at the cost of two binary searches per term.
  double QuickUpperBound(const algebra::JoinBounds& bounds) const override;

  bool HasEvidenceBound() const override { return true; }
  /// One entry per query term: the number of posting nodes of that term
  /// whose subtree contains a member of `fragment` (integer-valued doubles).
  std::vector<double> FragmentEvidence(
      const algebra::Fragment& fragment) const override;
  double EvidenceUpperBound(const std::vector<double>& left,
                            const std::vector<double>& right,
                            const algebra::JoinBounds& bounds) const override;
  double EvidenceUpperBoundFromSize(const std::vector<double>& left,
                                    const std::vector<double>& right_max,
                                    uint32_t join_size_lower) const override;

 private:
  struct ScoredTerm {
    std::string folded;
    double idf = 0.0;
    /// The index's stable posting list for `folded` (sorted node ids).
    const std::vector<doc::NodeId>* postings = nullptr;
  };

  /// Builds anc_counts_ (called once, lazily, from FragmentEvidence).
  void BuildAncestorCounts() const;

  const doc::Document& document_;
  const text::InvertedIndex& index_;
  std::vector<ScoredTerm> terms_;
  double size_penalty_;
  /// Lazy evidence precompute: anc_counts_[t][n] is the number of postings
  /// of term t on n's root path (ancestors-or-self of n). Built on first
  /// FragmentEvidence call — full-mode ranking never pays for it — under
  /// call_once, which keeps the scorer logically const and shareable across
  /// worker threads.
  mutable std::once_flag evidence_once_;
  mutable std::vector<std::vector<uint32_t>> anc_counts_;
};

}  // namespace xfrag::query

#endif  // XFRAG_QUERY_RANKING_H_
