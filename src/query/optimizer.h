// The paper's §5 sketch, made concrete: the optimizer decides (1) whether to
// push anti-monotonic selections down (Theorem 3 — always beneficial when an
// anti-monotonic conjunct exists), and (2) whether the Theorem-1 reduced
// fixed point is worth its ⊖ overhead, by estimating the reduction factor
// RF = (|F| − |⊖(F)|) / |F| on a sample and comparing it with a threshold.

#ifndef XFRAG_QUERY_OPTIMIZER_H_
#define XFRAG_QUERY_OPTIMIZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "algebra/filter.h"
#include "algebra/fragment_set.h"
#include "query/query.h"
#include "text/inverted_index.h"

namespace xfrag::query {

/// Evaluation strategy for a query (paper §4's three strategies plus Auto).
enum class Strategy {
  /// §4.1: literal powerset join, filter at the end. Exponential.
  kBruteForce,
  /// §3.1.1: fixed points with convergence checking, filter at the end.
  kFixedPointNaive,
  /// §4.2: Theorem-1 reduced fixed points, filter at the end.
  kFixedPointReduced,
  /// §4.3: anti-monotonic selection pushed below all joins (Theorem 3).
  kPushDown,
  /// Let the optimizer choose among the above.
  kAuto,
};

/// Stable display name of a strategy.
std::string_view StrategyName(Strategy strategy);

/// Optimizer tuning knobs.
struct OptimizerOptions {
  /// Sample size (per base set) for reduction-factor estimation.
  size_t rf_sample_size = 12;
  /// Minimum estimated RF at which the reduced fixed point is chosen over
  /// the naive one (the paper's threshold "v", §5).
  double rf_threshold = 0.25;
  /// Base-set size above which brute force is never considered.
  size_t brute_force_limit = 8;
  /// Seed for the sampling RNG (deterministic planning).
  uint64_t seed = 42;
  /// Use the §5 cost model (query/cost_model.h) instead of the rule-based
  /// decision procedure when resolving Strategy::kAuto.
  bool use_cost_model = false;
};

/// The optimizer's decision and its reasoning, for EXPLAIN output.
struct PlanDecision {
  Strategy strategy = Strategy::kFixedPointNaive;
  /// Anti-monotonic part of the query filter (True when none).
  algebra::FilterPtr anti_monotonic;
  /// Remaining conjuncts evaluated at the top (True when none).
  algebra::FilterPtr residue;
  /// Estimated reduction factor per base set (empty when not estimated).
  std::vector<double> estimated_rf;
  /// Human-readable rationale.
  std::string rationale;
};

/// \brief Chooses an evaluation strategy for `query` against `index`.
///
/// Decision procedure: an anti-monotonic conjunct ⇒ kPushDown (Theorem 3 can
/// only remove work); otherwise estimate RF on samples of the base sets and
/// pick kFixedPointReduced above the threshold, kFixedPointNaive below.
/// Brute force is only ever chosen when base sets are tiny (≤ limit), where
/// its lack of ⊖/fixed-point overhead can win.
PlanDecision ChooseStrategy(const Query& query, const doc::Document& document,
                            const text::InvertedIndex& index,
                            const OptimizerOptions& options = {});

/// \brief Exact reduction factor RF = (|F| − |⊖(F)|) / |F| of a fragment set
/// (0 for sets with fewer than 2 fragments).
double ReductionFactor(const doc::Document& document,
                       const algebra::FragmentSet& set);

/// \brief Estimates RF from a uniform sample of `set` of size at most
/// `sample_size` (deterministic given `seed`).
double EstimateReductionFactor(const doc::Document& document,
                               const algebra::FragmentSet& set,
                               size_t sample_size, uint64_t seed);

}  // namespace xfrag::query

#endif  // XFRAG_QUERY_OPTIMIZER_H_
