#include "query/engine.h"

#include "common/strings.h"
#include "common/timer.h"
#include "doc/subtree_classes.h"
#include "query/cost_model.h"

namespace xfrag::query {

using algebra::Fragment;
using algebra::FragmentSet;

namespace {

// Definition 8's leaf condition: every term occurs in some *leaf* of f.
bool SatisfiesLeafCondition(const Fragment& fragment,
                            const std::vector<std::string>& terms,
                            const doc::Document& document,
                            const text::InvertedIndex& index) {
  std::vector<doc::NodeId> leaves = algebra::FragmentLeaves(fragment, document);
  for (const auto& term : terms) {
    bool found = false;
    for (doc::NodeId leaf : leaves) {
      if (index.Contains(term, leaf)) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

}  // namespace

StatusOr<std::unique_ptr<PlanNode>> QueryEngine::BuildPlan(
    const Query& query, Strategy strategy) const {
  if (query.terms.empty()) {
    return Status::InvalidArgument("query must contain at least one term");
  }
  if (strategy == Strategy::kAuto) {
    return Status::InvalidArgument(
        "kAuto must be resolved by Evaluate; BuildPlan needs a concrete "
        "strategy");
  }
  std::unique_ptr<PlanNode> plan = BuildInitialPlan(query.terms, query.filter);
  switch (strategy) {
    case Strategy::kBruteForce:
      // Initial plan already evaluates powerset joins literally. A
      // single-term brute-force query still uses the (naive) fixed point,
      // which is the subset enumeration's set equivalent.
      break;
    case Strategy::kFixedPointNaive:
      plan = RewritePowersetToFixedPoint(std::move(plan),
                                         /*reduced_fixed_point=*/false);
      break;
    case Strategy::kFixedPointReduced:
      plan = RewritePowersetToFixedPoint(std::move(plan),
                                         /*reduced_fixed_point=*/true);
      break;
    case Strategy::kPushDown:
      plan = RewritePowersetToFixedPoint(std::move(plan),
                                         /*reduced_fixed_point=*/false);
      plan = PushDownSelection(std::move(plan));
      break;
    case Strategy::kAuto:
      break;  // Unreachable; handled above.
  }
  return plan;
}

StatusOr<EvalResult> QueryEngine::Evaluate(const Query& query,
                                           const EvalOptions& options) const {
  Timer timer;
  EvalResult result;

  Strategy strategy = options.strategy;
  std::string rationale;
  if (strategy == Strategy::kAuto) {
    PlanDecision decision =
        options.optimizer.use_cost_model
            ? ChooseStrategyCostBased(query, document_, index_, CostModel(),
                                      options.optimizer)
            : ChooseStrategy(query, document_, index_, options.optimizer);
    strategy = decision.strategy;
    rationale = decision.rationale;
  }
  result.strategy_used = strategy;

  auto plan = BuildPlan(query, strategy);
  if (!plan.ok()) return plan.status();

  std::vector<NodeCardinality> cardinalities;
  if (options.top_k >= 0) {
    // Ranked top-k path: the answer-mode condition gates heap admission (the
    // collector must only hold true final answers for pruning to be sound).
    AnswerScorer scorer(query.terms, document_, index_, options.ranking);
    algebra::FragmentPredicate accept;
    if (options.answer_mode == AnswerMode::kLeafStrict) {
      accept = [this, &query](const Fragment& f) {
        return SatisfiesLeafCondition(f, query.terms, document_, index_);
      };
    }
    auto topk = ExecutePlanTopK(*plan.value(), document_, index_,
                                options.executor, scorer,
                                static_cast<size_t>(options.top_k), accept,
                                &result.metrics,
                                options.analyze ? &cardinalities : nullptr);
    if (options.metrics_sink != nullptr) {
      *options.metrics_sink = result.metrics;
    }
    if (!topk.ok()) return topk.status();
    result.ranked.reserve(topk->size());
    for (algebra::ScoredFragment& sf : topk.value()) {
      result.answers.Insert(sf.fragment);
      result.ranked.emplace_back(std::move(sf.fragment), sf.score);
    }
  } else {
    auto answers = ExecutePlan(*plan.value(), document_, index_,
                               options.executor, &result.metrics,
                               options.analyze ? &cardinalities : nullptr);
    if (options.metrics_sink != nullptr) {
      *options.metrics_sink = result.metrics;
    }
    if (!answers.ok()) return answers.status();
    result.answers = std::move(answers).value();

    if (options.answer_mode == AnswerMode::kLeafStrict) {
      FragmentSet strict;
      for (const Fragment& f : result.answers) {
        if (SatisfiesLeafCondition(f, query.terms, document_, index_)) {
          strict.Insert(f);
        }
      }
      result.answers = std::move(strict);
    }
  }

  result.explain = StrFormat("strategy: %s\n",
                             std::string(StrategyName(strategy)).c_str());
  // Surface the Parallelism option: which kernel layer ran, and how wide.
  unsigned parallelism =
      options.executor.thread_pool != nullptr
          ? options.executor.thread_pool->parallelism()
          : options.executor.parallelism;
  if (parallelism > 1) {
    result.explain +=
        StrFormat("parallelism: %u (pooled kernels)\n", parallelism);
  }
  // Surface what the summary prefilters saved: how many candidate pairs the
  // filtered join kernels looked at, and how many they rejected in O(1)
  // without materializing the join.
  if (result.metrics.pairs_considered > 0) {
    result.explain += StrFormat(
        "prefilter: %llu/%llu pairs rejected from summaries\n",
        static_cast<unsigned long long>(result.metrics.pairs_rejected_summary),
        static_cast<unsigned long long>(result.metrics.pairs_considered));
  }
  // Surface DAG compression: how much pair work was replayed from subtree
  // equivalence-class representatives instead of re-evaluated. Only emitted
  // when the caller attached a class index, so single-document EXPLAIN output
  // is unchanged.
  if (options.executor.subtree_classes != nullptr) {
    if (!algebra::DagCompressionEnabled()) {
      result.explain += "dag: off (compression disabled)\n";
    } else if (!options.executor.subtree_classes->has_duplication()) {
      result.explain += "dag: bypass (no duplicated subtrees)\n";
    } else {
      result.explain += StrFormat(
          "dag: %llu classes, %llu pairs replayed, %llu answers multiplied "
          "out\n",
          static_cast<unsigned long long>(result.metrics.classes_total),
          static_cast<unsigned long long>(
              result.metrics.class_pairs_considered),
          static_cast<unsigned long long>(
              result.metrics.answers_multiplied_out));
    }
  }
  // Surface the top-k score bound: how many candidate pairs never needed a
  // join because their score upper bound could not reach the heap, plus the
  // cost model's pricing of the bounded vs. unbounded final join.
  if (options.top_k >= 0) {
    result.explain += StrFormat(
        "top_k: %lld (%llu/%llu pairs rejected by score bound)\n",
        static_cast<long long>(options.top_k),
        static_cast<unsigned long long>(result.metrics.pairs_rejected_score),
        static_cast<unsigned long long>(result.metrics.pairs_considered));
    if (result.metrics.pairs_considered > 0) {
      double prune_rate =
          static_cast<double>(result.metrics.pairs_rejected_score) /
          static_cast<double>(result.metrics.pairs_considered);
      TopKCostEstimate cost = CostModel().EstimateTopKJoin(
          static_cast<double>(result.metrics.pairs_considered), prune_rate);
      result.explain += StrFormat(
          "top_k cost: bounded ~%.3f ms vs full ~%.3f ms (model estimate)\n",
          cost.bounded_ns / 1e6, cost.full_ns / 1e6);
    }
  }
  if (!rationale.empty()) {
    result.explain += "rationale: " + rationale + "\n";
  }
  if (options.analyze) {
    result.explain += plan.value()->ToStringAnnotated(
        [&cardinalities](const PlanNode& node) -> std::string {
          for (const NodeCardinality& entry : cardinalities) {
            if (entry.node == &node) {
              return StrFormat("(rows=%zu)", entry.rows);
            }
          }
          return "";
        });
  } else {
    result.explain += plan.value()->ToString();
  }
  result.elapsed_ms = timer.ElapsedMillis();
  return result;
}

}  // namespace xfrag::query
