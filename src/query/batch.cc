#include "query/batch.h"

#include <numeric>
#include <utility>

#include "common/strings.h"

namespace xfrag::query {

std::string ScanMemo::Key(size_t document_index, std::string_view term,
                          const std::string& filter_text) {
  std::string key = StrFormat("%zu", document_index);
  key += '\x1f';
  key += AsciiToLower(term);
  key += '\x1f';
  key += filter_text;
  return key;
}

const ScanMemo::Entry* ScanMemo::Find(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return &it->second;
}

void ScanMemo::Insert(std::string key, Entry entry) {
  entries_.emplace(std::move(key), std::move(entry));
}

std::vector<std::vector<size_t>> GroupQueriesByTerms(
    const std::vector<const Query*>& queries) {
  // Union-find over item indices; terms link the items that share them.
  std::vector<size_t> parent(queries.size());
  std::iota(parent.begin(), parent.end(), size_t{0});
  auto find = [&parent](size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];  // path halving
      x = parent[x];
    }
    return x;
  };
  std::unordered_map<std::string, size_t> term_owner;
  for (size_t i = 0; i < queries.size(); ++i) {
    if (queries[i] == nullptr) continue;
    for (const std::string& term : queries[i]->terms) {
      auto [it, inserted] = term_owner.emplace(AsciiToLower(term), i);
      if (!inserted) {
        size_t a = find(it->second);
        size_t b = find(i);
        // Smaller root wins so group identity is deterministic.
        if (a < b) parent[b] = a;
        else if (b < a) parent[a] = b;
      }
    }
  }
  // Collect members per root; roots are the smallest member of their group,
  // and a first pass in ascending index order yields groups ordered by it.
  std::unordered_map<size_t, size_t> group_of_root;
  std::vector<std::vector<size_t>> groups;
  for (size_t i = 0; i < queries.size(); ++i) {
    size_t root = find(i);
    auto [it, inserted] = group_of_root.emplace(root, groups.size());
    if (inserted) groups.emplace_back();
    groups[it->second].push_back(i);
  }
  return groups;
}

std::vector<StatusOr<EvalResult>> EvaluateBatch(
    const doc::Document& document, const text::InvertedIndex& index,
    const std::vector<BatchItem>& items, size_t document_index,
    BatchEvalStats* stats) {
  QueryEngine engine(document, index);
  std::vector<StatusOr<EvalResult>> results;
  results.reserve(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    results.push_back(Status::Internal("unevaluated batch item"));
  }

  std::vector<const Query*> queries;
  queries.reserve(items.size());
  for (const BatchItem& item : items) queries.push_back(item.query);
  std::vector<std::vector<size_t>> groups = GroupQueriesByTerms(queries);
  if (stats != nullptr) stats->groups = groups.size();

  for (const std::vector<size_t>& members : groups) {
    ScanMemo memo;
    for (size_t item_index : members) {
      const BatchItem& item = items[item_index];
      if (item.query == nullptr) {
        results[item_index] =
            Status::InvalidArgument("batch item has no query");
        continue;
      }
      EvalOptions options = item.options;
      options.executor.scan_memo = &memo;
      options.executor.scan_memo_document = document_index;
      results[item_index] = engine.Evaluate(*item.query, options);
    }
    if (stats != nullptr) stats->subplans_shared += memo.hits();
  }
  return results;
}

}  // namespace xfrag::query
