// QueryEngine — the library's public facade. Transforms a keyword query into
// an algebraic plan (paper §2.3), applies the requested strategy's rewrites
// (§3, §4), executes it, and returns the answer fragments plus work metrics
// and an EXPLAIN rendering of the executed plan.

#ifndef XFRAG_QUERY_ENGINE_H_
#define XFRAG_QUERY_ENGINE_H_

#include <string>

#include "algebra/fragment_set.h"
#include "algebra/ops.h"
#include "query/executor.h"
#include "query/optimizer.h"
#include "query/plan.h"
#include "query/query.h"
#include "query/ranking.h"
#include "text/inverted_index.h"

namespace xfrag::query {

/// Which answer definition to apply (see DESIGN.md on the Def. 8 vs Table 1
/// discrepancy).
enum class AnswerMode {
  /// The algebraic formula σ_P(F1 ⋈* ... ⋈* Fm) as-is. Matches Table 1.
  kAlgebraic,
  /// Definition 8 literally: additionally require every query term to occur
  /// in a *leaf* node of each answer fragment.
  kLeafStrict,
};

/// Per-query evaluation options.
struct EvalOptions {
  Strategy strategy = Strategy::kAuto;
  AnswerMode answer_mode = AnswerMode::kAlgebraic;
  ExecutorOptions executor;
  OptimizerOptions optimizer;
  /// When true, the EXPLAIN output is annotated with each plan node's
  /// actual output cardinality (EXPLAIN ANALYZE).
  bool analyze = false;
  /// Top-k ranked evaluation. < 0 (the default) disables ranking: Evaluate
  /// returns the full unordered answer set as before. k >= 0 makes Evaluate
  /// return exactly the k best answers — the length-min(k, |A|) prefix of
  /// RankAnswers over the full answer set, ties broken by canonical fragment
  /// order — in EvalResult::ranked (EvalResult::answers holds the same
  /// fragments in rank order). When the executed plan ends in a pairwise
  /// join, the final join runs score-bounded: candidate pairs whose score
  /// upper bound cannot beat the current k-th best answer are rejected in
  /// O(1) before the join is materialized (see docs/ALGEBRA.md).
  int64_t top_k = -1;
  /// Scoring knobs for the ranked path (ignored when top_k < 0).
  RankingOptions ranking;
  /// Optional sink that receives the operator metrics even when Evaluate
  /// fails (a StatusOr error carries no EvalResult). A deadline-exceeded
  /// query reports the work it did before being cut off through this —
  /// the server's "504 with partial metrics".
  algebra::OpMetrics* metrics_sink = nullptr;
};

/// The result of evaluating one query.
struct EvalResult {
  /// The answer set A (Definition 8 under the chosen AnswerMode). Under
  /// top-k evaluation, the k best answers in rank order.
  algebra::FragmentSet answers;
  /// Ranked answers, best first; populated only when options.top_k >= 0.
  std::vector<RankedAnswer> ranked;
  /// Operator work counters.
  algebra::OpMetrics metrics;
  /// The strategy that actually ran (resolved from kAuto).
  Strategy strategy_used = Strategy::kFixedPointNaive;
  /// EXPLAIN: the executed plan, plus the optimizer rationale for kAuto.
  std::string explain;
  /// Wall-clock evaluation time in milliseconds (plan build + execute).
  double elapsed_ms = 0.0;
};

/// \brief Query evaluation facade over one document + index.
///
/// The document and index must outlive the engine.
class QueryEngine {
 public:
  QueryEngine(const doc::Document& document, const text::InvertedIndex& index)
      : document_(document), index_(index) {}

  /// \brief Evaluates `query` with the given options.
  ///
  /// Terms absent from the document yield an empty answer set (conjunctive
  /// semantics). An error is returned for empty queries or when the
  /// brute-force strategy exceeds its subset-enumeration limits.
  StatusOr<EvalResult> Evaluate(const Query& query,
                                const EvalOptions& options = {}) const;

  /// \brief Builds (but does not run) the plan a strategy would execute;
  /// useful for EXPLAIN-only inspection and the plan-shape tests.
  StatusOr<std::unique_ptr<PlanNode>> BuildPlan(const Query& query,
                                                Strategy strategy) const;

  const doc::Document& document() const { return document_; }
  const text::InvertedIndex& index() const { return index_; }

 private:
  const doc::Document& document_;
  const text::InvertedIndex& index_;
};

}  // namespace xfrag::query

#endif  // XFRAG_QUERY_ENGINE_H_
