#include "query/ranking.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace xfrag::query {

using algebra::Fragment;
using algebra::FragmentSet;

AnswerScorer::AnswerScorer(const std::vector<std::string>& terms,
                           const doc::Document& document,
                           const text::InvertedIndex& index,
                           const RankingOptions& options)
    : document_(document),
      index_(index),
      size_penalty_(std::max(options.size_penalty, 0.0)) {
  const double n = static_cast<double>(document.size());
  terms_.reserve(terms.size());
  for (const auto& term : terms) {
    ScoredTerm t;
    t.folded = AsciiToLower(term);
    double df = static_cast<double>(index.DocumentFrequency(t.folded));
    t.idf = std::log(1.0 + n / std::max(df, 1.0));
    t.postings = &index.Lookup(t.folded);
    terms_.push_back(std::move(t));
  }
}

double AnswerScorer::Score(const Fragment& fragment) const {
  double evidence = 0.0;
  for (const ScoredTerm& t : terms_) {
    // Count member nodes containing the term by searching the cached posting
    // list directly — never back through the index's string-keyed lookup.
    // Iterate the smaller side, binary-search the larger.
    const auto& postings = *t.postings;
    size_t hits = 0;
    if (postings.size() < fragment.size()) {
      for (doc::NodeId p : postings) {
        if (fragment.ContainsNode(p)) ++hits;
      }
    } else {
      for (doc::NodeId member : fragment.nodes()) {
        if (std::binary_search(postings.begin(), postings.end(), member)) {
          ++hits;
        }
      }
    }
    evidence += t.idf * static_cast<double>(hits);
  }
  double penalty =
      1.0 + size_penalty_ *
                std::log(1.0 + static_cast<double>(fragment.size()));
  return evidence / penalty;
}

double AnswerScorer::QuickUpperBound(const algebra::JoinBounds& bounds) const {
  // Same accumulation order and penalty as Score/UpperBound; the per-term
  // ceiling min(df, span + 1) dominates the interval posting count, so this
  // bound is sound wherever UpperBound is (every rounding step is monotone).
  const double width = static_cast<double>(bounds.span) + 1.0;
  double evidence = 0.0;
  for (const ScoredTerm& t : terms_) {
    const double df = static_cast<double>(t.postings->size());
    evidence += t.idf * std::min(df, width);
  }
  double penalty =
      1.0 + size_penalty_ *
                std::log(1.0 + static_cast<double>(bounds.size_lower));
  return evidence / penalty;
}

void AnswerScorer::BuildAncestorCounts() const {
  // anc_counts_[t][n] = |{p ∈ postings_t : p ancestor-or-self of n}| — one
  // pre-order sweep per term, each node inheriting its parent's count
  // (parents precede children in pre-order). Postings are visited in step
  // because both node ids and posting lists are pre-order sorted.
  anc_counts_.resize(terms_.size());
  const size_t n = document_.size();
  for (size_t t = 0; t < terms_.size(); ++t) {
    const auto& postings = *terms_[t].postings;
    std::vector<uint32_t>& counts = anc_counts_[t];
    counts.resize(n);
    size_t pi = 0;
    for (size_t node = 0; node < n; ++node) {
      const doc::NodeId id = static_cast<doc::NodeId>(node);
      const bool is_posting = pi < postings.size() && postings[pi] == id;
      if (is_posting) ++pi;
      counts[node] =
          (node == 0 ? 0 : counts[document_.parent(id)]) + (is_posting ? 1 : 0);
    }
  }
}

std::vector<double> AnswerScorer::FragmentEvidence(
    const Fragment& fragment) const {
  // Per term: how many posting nodes have a member of `fragment` in their
  // subtree (are an ancestor-or-self of a member)? For a *connected*
  // fragment with root r this has a closed form: such a posting is either an
  // ancestor-or-self of r, or lies on the path from r down to the member it
  // covers — a path contained in the fragment, so the posting is itself a
  // member. Hence
  //
  //   hitsAnc_t(f) = anc_counts_[t][r] + hits_t(f) − [r ∈ postings_t]
  //
  // (the last term undoes double-counting r). hits_t is the same
  // smaller-side count Score uses, so an evidence summary costs about one
  // Score call — and it runs once per input fragment, never per pair.
  std::call_once(evidence_once_, [this] { BuildAncestorCounts(); });
  std::vector<double> evidence;
  evidence.reserve(terms_.size());
  const doc::NodeId root = fragment.nodes().front();
  for (size_t ti = 0; ti < terms_.size(); ++ti) {
    const ScoredTerm& t = terms_[ti];
    const auto& postings = *t.postings;
    size_t hits = 0;
    if (postings.size() < fragment.size()) {
      for (doc::NodeId p : postings) {
        if (fragment.ContainsNode(p)) ++hits;
      }
    } else {
      for (doc::NodeId member : fragment.nodes()) {
        if (std::binary_search(postings.begin(), postings.end(), member)) {
          ++hits;
        }
      }
    }
    const bool root_posting =
        std::binary_search(postings.begin(), postings.end(), root);
    evidence.push_back(static_cast<double>(
        anc_counts_[ti][root] + hits - (root_posting ? 1 : 0)));
  }
  return evidence;
}

double AnswerScorer::EvidenceUpperBound(
    const std::vector<double>& left, const std::vector<double>& right,
    const algebra::JoinBounds& bounds) const {
  // Soundness: f1 ⋈ f2 is a union of tree paths between members of f1 ∪ f2,
  // and every node on a path between u and v is an ancestor-or-self of u or
  // of v. So a join member that is a posting of term t is a posting node
  // covering f1 or covering f2: hits_t(f1 ⋈ f2) <= left[t] + right[t]. The
  // per-term counts are integers held exactly in doubles, the accumulation
  // order matches Score, every multiply/add rounding step is monotone, and
  // the denominator uses size_lower <= |f1 ⋈ f2| — so the IEEE result
  // dominates Score's exactly as UpperBound's does.
  double evidence = 0.0;
  for (size_t t = 0; t < terms_.size(); ++t) {
    evidence += terms_[t].idf * (left[t] + right[t]);
  }
  double penalty =
      1.0 + size_penalty_ *
                std::log(1.0 + static_cast<double>(bounds.size_lower));
  return evidence / penalty;
}

double AnswerScorer::EvidenceUpperBoundFromSize(
    const std::vector<double>& left, const std::vector<double>& right_max,
    uint32_t join_size_lower) const {
  // EvidenceUpperBound with a set-wide (or single-pair) right summary and a
  // size lower bound derived without the LCA: right_max[t] >= right[t] and
  // join_size_lower <= bounds.size_lower for every covered f2, and every
  // arithmetic step is monotone, so this dominates each covered pair's
  // evidence bound (hence each pair's score) at the computed-doubles level.
  double evidence = 0.0;
  for (size_t t = 0; t < terms_.size(); ++t) {
    evidence += terms_[t].idf * (left[t] + right_max[t]);
  }
  double penalty =
      1.0 + size_penalty_ *
                std::log(1.0 + static_cast<double>(join_size_lower));
  return evidence / penalty;
}

double AnswerScorer::UpperBound(const algebra::JoinBounds& bounds) const {
  // Per-term hit ceiling: postings inside the join's exact pre-order interval
  // [min_pre, min_pre + span]. Accumulated in Score's term order so every
  // rounding step dominates its Score counterpart.
  const doc::NodeId lo = bounds.min_pre;
  const doc::NodeId hi = bounds.min_pre + bounds.span;
  double evidence = 0.0;
  for (const ScoredTerm& t : terms_) {
    const auto& postings = *t.postings;
    auto first = std::lower_bound(postings.begin(), postings.end(), lo);
    auto last = std::upper_bound(first, postings.end(), hi);
    evidence += t.idf * static_cast<double>(last - first);
  }
  double penalty =
      1.0 + size_penalty_ *
                std::log(1.0 + static_cast<double>(bounds.size_lower));
  return evidence / penalty;
}

std::vector<RankedAnswer> RankAnswers(const FragmentSet& answers,
                                      const std::vector<std::string>& terms,
                                      const doc::Document& document,
                                      const text::InvertedIndex& index,
                                      const RankingOptions& options) {
  AnswerScorer scorer(terms, document, index, options);
  std::vector<RankedAnswer> ranked;
  ranked.reserve(answers.size());
  for (const Fragment& fragment : answers) {
    ranked.emplace_back(fragment, scorer.Score(fragment));
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const RankedAnswer& a, const RankedAnswer& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.fragment < b.fragment;
            });
  return ranked;
}

}  // namespace xfrag::query
