#include "query/ranking.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace xfrag::query {

using algebra::Fragment;
using algebra::FragmentSet;

std::vector<RankedAnswer> RankAnswers(const FragmentSet& answers,
                                      const std::vector<std::string>& terms,
                                      const doc::Document& document,
                                      const text::InvertedIndex& index,
                                      const RankingOptions& options) {
  const double n = static_cast<double>(document.size());
  // idf per term (case-folded once).
  std::vector<std::pair<std::string, double>> term_idf;
  term_idf.reserve(terms.size());
  for (const auto& term : terms) {
    std::string folded = AsciiToLower(term);
    double df = static_cast<double>(index.DocumentFrequency(folded));
    double idf = std::log(1.0 + n / std::max(df, 1.0));
    term_idf.emplace_back(std::move(folded), idf);
  }

  std::vector<RankedAnswer> ranked;
  ranked.reserve(answers.size());
  for (const Fragment& fragment : answers) {
    double evidence = 0.0;
    for (const auto& [term, idf] : term_idf) {
      // Count member nodes containing the term; iterate the smaller side.
      const auto& postings = index.Lookup(term);
      size_t hits = 0;
      if (postings.size() < fragment.size()) {
        for (doc::NodeId p : postings) {
          if (fragment.ContainsNode(p)) ++hits;
        }
      } else {
        for (doc::NodeId member : fragment.nodes()) {
          if (index.Contains(term, member)) ++hits;
        }
      }
      evidence += idf * static_cast<double>(hits);
    }
    double penalty =
        1.0 + options.size_penalty *
                  std::log(1.0 + static_cast<double>(fragment.size()));
    ranked.emplace_back(fragment, evidence / penalty);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const RankedAnswer& a, const RankedAnswer& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.fragment < b.fragment;
            });
  return ranked;
}

}  // namespace xfrag::query
