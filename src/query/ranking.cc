#include "query/ranking.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace xfrag::query {

using algebra::Fragment;
using algebra::FragmentSet;

AnswerScorer::AnswerScorer(const std::vector<std::string>& terms,
                           const doc::Document& document,
                           const text::InvertedIndex& index,
                           const RankingOptions& options)
    : index_(index), size_penalty_(std::max(options.size_penalty, 0.0)) {
  const double n = static_cast<double>(document.size());
  terms_.reserve(terms.size());
  for (const auto& term : terms) {
    ScoredTerm t;
    t.folded = AsciiToLower(term);
    double df = static_cast<double>(index.DocumentFrequency(t.folded));
    t.idf = std::log(1.0 + n / std::max(df, 1.0));
    t.postings = &index.Lookup(t.folded);
    terms_.push_back(std::move(t));
  }
}

double AnswerScorer::Score(const Fragment& fragment) const {
  double evidence = 0.0;
  for (const ScoredTerm& t : terms_) {
    // Count member nodes containing the term by searching the cached posting
    // list directly — never back through the index's string-keyed lookup.
    // Iterate the smaller side, binary-search the larger.
    const auto& postings = *t.postings;
    size_t hits = 0;
    if (postings.size() < fragment.size()) {
      for (doc::NodeId p : postings) {
        if (fragment.ContainsNode(p)) ++hits;
      }
    } else {
      for (doc::NodeId member : fragment.nodes()) {
        if (std::binary_search(postings.begin(), postings.end(), member)) {
          ++hits;
        }
      }
    }
    evidence += t.idf * static_cast<double>(hits);
  }
  double penalty =
      1.0 + size_penalty_ *
                std::log(1.0 + static_cast<double>(fragment.size()));
  return evidence / penalty;
}

double AnswerScorer::QuickUpperBound(const algebra::JoinBounds& bounds) const {
  // Same accumulation order and penalty as Score/UpperBound; the per-term
  // ceiling min(df, span + 1) dominates the interval posting count, so this
  // bound is sound wherever UpperBound is (every rounding step is monotone).
  const double width = static_cast<double>(bounds.span) + 1.0;
  double evidence = 0.0;
  for (const ScoredTerm& t : terms_) {
    const double df = static_cast<double>(t.postings->size());
    evidence += t.idf * std::min(df, width);
  }
  double penalty =
      1.0 + size_penalty_ *
                std::log(1.0 + static_cast<double>(bounds.size_lower));
  return evidence / penalty;
}

double AnswerScorer::UpperBound(const algebra::JoinBounds& bounds) const {
  // Per-term hit ceiling: postings inside the join's exact pre-order interval
  // [min_pre, min_pre + span]. Accumulated in Score's term order so every
  // rounding step dominates its Score counterpart.
  const doc::NodeId lo = bounds.min_pre;
  const doc::NodeId hi = bounds.min_pre + bounds.span;
  double evidence = 0.0;
  for (const ScoredTerm& t : terms_) {
    const auto& postings = *t.postings;
    auto first = std::lower_bound(postings.begin(), postings.end(), lo);
    auto last = std::upper_bound(first, postings.end(), hi);
    evidence += t.idf * static_cast<double>(last - first);
  }
  double penalty =
      1.0 + size_penalty_ *
                std::log(1.0 + static_cast<double>(bounds.size_lower));
  return evidence / penalty;
}

std::vector<RankedAnswer> RankAnswers(const FragmentSet& answers,
                                      const std::vector<std::string>& terms,
                                      const doc::Document& document,
                                      const text::InvertedIndex& index,
                                      const RankingOptions& options) {
  AnswerScorer scorer(terms, document, index, options);
  std::vector<RankedAnswer> ranked;
  ranked.reserve(answers.size());
  for (const Fragment& fragment : answers) {
    ranked.emplace_back(fragment, scorer.Score(fragment));
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const RankedAnswer& a, const RankedAnswer& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.fragment < b.fragment;
            });
  return ranked;
}

}  // namespace xfrag::query
