// Cross-query memoization of keyword fixed points — an implementation-level
// optimization of the kind §5 anticipates ("other optimization issues at
// implementation level to complement our algebraic optimization"). The
// expensive part of most queries is the per-term closure F_i⁺, which depends
// only on (term, scan filter, fixed-point filter, variant) — not on the
// other query terms — so an engine serving many queries over one immutable
// document can reuse it.

#ifndef XFRAG_QUERY_FIXED_POINT_CACHE_H_
#define XFRAG_QUERY_FIXED_POINT_CACHE_H_

#include <cstdint>
#include <string>
#include <unordered_map>

#include "algebra/fragment_set.h"

namespace xfrag::query {

/// \brief A memo table for per-term fixed points.
///
/// Keys encode everything the closure depends on; the executor consults the
/// cache for FixedPoint-over-Scan plan fragments. The cache holds fragment
/// sets by value (documents are immutable, so entries never invalidate).
/// Not thread-safe: use one cache per thread, or none.
class FixedPointCache {
 public:
  FixedPointCache() = default;

  /// Looks up `key`; returns nullptr on miss.
  const algebra::FragmentSet* Find(const std::string& key) const {
    auto it = entries_.find(key);
    if (it == entries_.end()) return nullptr;
    ++hits_;
    return &it->second;
  }

  /// Stores `value` under `key` (overwrites).
  void Insert(const std::string& key, algebra::FragmentSet value) {
    entries_[key] = std::move(value);
  }

  /// Number of cached closures.
  size_t size() const { return entries_.size(); }
  /// Lookup hits since construction.
  uint64_t hits() const { return hits_; }

  void Clear() {
    entries_.clear();
    hits_ = 0;
  }

 private:
  std::unordered_map<std::string, algebra::FragmentSet> entries_;
  mutable uint64_t hits_ = 0;
};

}  // namespace xfrag::query

#endif  // XFRAG_QUERY_FIXED_POINT_CACHE_H_
