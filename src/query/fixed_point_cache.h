// Cross-query memoization of keyword fixed points — an implementation-level
// optimization of the kind §5 anticipates ("other optimization issues at
// implementation level to complement our algebraic optimization"). The
// expensive part of most queries is the per-term closure F_i⁺, which depends
// only on (term, scan filter, fixed-point filter, variant) — not on the
// other query terms — so an engine serving many queries over one immutable
// document can reuse it.

#ifndef XFRAG_QUERY_FIXED_POINT_CACHE_H_
#define XFRAG_QUERY_FIXED_POINT_CACHE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "algebra/fragment_set.h"

namespace xfrag::query {

/// \brief A memo table for per-term fixed points.
///
/// Keys encode everything the closure depends on; the executor consults the
/// cache for FixedPoint-over-Scan plan fragments. The cache holds fragment
/// sets by value (documents are immutable, so entries never invalidate).
///
/// Thread-safe: concurrent Find/Insert from any number of threads is
/// coherent (required once a shared thread pool evaluates many queries at
/// once). Two guarantees make the returned pointers safe to read without
/// holding any lock: entries are never erased outside Clear(), and Insert is
/// first-wins — a key's value never changes once published — so a pointer
/// obtained from Find stays valid and immutable until Clear(). Clear() must
/// not race with readers still holding entry pointers.
class FixedPointCache {
 public:
  FixedPointCache() = default;

  /// Looks up `key`; returns nullptr on miss. The pointee is immutable and
  /// stays valid until Clear().
  const algebra::FragmentSet* Find(const std::string& key) const {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      ++misses_;
      return nullptr;
    }
    ++hits_;
    return &it->second;
  }

  /// \brief Stores `value` under `key` unless the key is already present
  /// (first publication wins, keeping Find's pointers stable). Returns true
  /// when this call published the entry.
  bool Insert(const std::string& key, algebra::FragmentSet value) {
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.try_emplace(key, std::move(value)).second;
  }

  /// Number of cached closures.
  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
  }
  /// Lookup hits since construction (or the last Clear).
  uint64_t hits() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
  }
  /// Lookup misses since construction (or the last Clear).
  uint64_t misses() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    hits_ = 0;
    misses_ = 0;
  }

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, algebra::FragmentSet> entries_;
  mutable uint64_t hits_ = 0;
  mutable uint64_t misses_ = 0;
};

}  // namespace xfrag::query

#endif  // XFRAG_QUERY_FIXED_POINT_CACHE_H_
