// Cross-query memoization of keyword fixed points — an implementation-level
// optimization of the kind §5 anticipates ("other optimization issues at
// implementation level to complement our algebraic optimization"). The
// expensive part of most queries is the per-term closure F_i⁺, which depends
// only on (term, scan filter, fixed-point filter, variant) — not on the
// other query terms — so an engine serving many queries over one immutable
// document can reuse it.

#ifndef XFRAG_QUERY_FIXED_POINT_CACHE_H_
#define XFRAG_QUERY_FIXED_POINT_CACHE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "algebra/fragment_set.h"

namespace xfrag::query {

/// Capacity limits for a FixedPointCache. 0 means unlimited for that axis —
/// the default, matching the pre-bounded behaviour (library users with a
/// handful of queries never need eviction; xfragd configures both caps so
/// long-running traffic cannot grow the cache without bound).
struct FixedPointCacheLimits {
  /// Maximum number of cached closures (0 = unlimited).
  size_t max_entries = 0;
  /// Approximate byte budget for cached closures (0 = unlimited).
  size_t max_bytes = 0;
};

/// \brief A memo table for per-term fixed points.
///
/// Keys encode everything the closure depends on; the executor consults the
/// cache for FixedPoint-over-Scan plan fragments. Values are immutable
/// fragment sets held by shared_ptr (documents are immutable, so entries
/// never invalidate) — a Find result stays valid for as long as the caller
/// holds it, even if the entry is evicted concurrently.
///
/// Eviction is coarse LRU: each Find/Insert stamps the entry with a
/// monotonically increasing tick, and when a configured limit is exceeded
/// the entry with the smallest tick is dropped (a linear scan — entry counts
/// are small, and an O(n) pass per eviction keeps the structure trivial).
/// Insert is first-wins: a key's value never changes once published, so two
/// racing closures of the same term agree by construction.
///
/// Thread-safe: concurrent Find/Insert from any number of threads is
/// coherent (required once a shared thread pool evaluates many queries at
/// once).
class FixedPointCache {
 public:
  FixedPointCache() = default;
  explicit FixedPointCache(FixedPointCacheLimits limits) : limits_(limits) {}

  /// Looks up `key`; returns null on miss. The pointee is immutable and
  /// shared — it survives eviction for as long as the caller holds it.
  std::shared_ptr<const algebra::FragmentSet> Find(
      const std::string& key) const {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      ++misses_;
      return nullptr;
    }
    ++hits_;
    it->second.last_used = ++tick_;
    return it->second.value;
  }

  /// \brief Stores `value` under `key` unless the key is already present
  /// (first publication wins). Returns true when this call published the
  /// entry. May evict least-recently-used entries to honour the limits —
  /// including, when a single closure exceeds the whole byte budget, the
  /// entry just inserted.
  bool Insert(const std::string& key, algebra::FragmentSet value) {
    size_t bytes = ApproxBytes(value);
    auto shared = std::make_shared<const algebra::FragmentSet>(
        std::move(value));
    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] =
        entries_.try_emplace(key, Entry{std::move(shared), bytes, ++tick_});
    if (!inserted) return false;
    bytes_ += bytes;
    EvictOverBudgetLocked();
    return true;
  }

  /// Number of cached closures.
  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
  }
  /// Approximate bytes held by cached closures.
  size_t bytes() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return bytes_;
  }
  /// Lookup hits since construction (or the last Clear).
  uint64_t hits() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
  }
  /// Lookup misses since construction (or the last Clear).
  uint64_t misses() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
  }
  /// Entries evicted to honour the limits since construction (or Clear).
  uint64_t evictions() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return evictions_;
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    bytes_ = 0;
    hits_ = 0;
    misses_ = 0;
    evictions_ = 0;
  }

 private:
  struct Entry {
    std::shared_ptr<const algebra::FragmentSet> value;
    size_t bytes = 0;
    uint64_t last_used = 0;
  };

  /// Rough footprint of one cached closure: node ids plus per-fragment and
  /// per-entry bookkeeping overhead.
  static size_t ApproxBytes(const algebra::FragmentSet& set) {
    size_t bytes = 128;  // entry + key + hash-map overhead
    for (const algebra::Fragment& f : set) {
      bytes += sizeof(algebra::Fragment) + f.size() * sizeof(doc::NodeId) + 32;
    }
    return bytes;
  }

  void EvictOverBudgetLocked() {
    while (!entries_.empty() &&
           ((limits_.max_entries != 0 &&
             entries_.size() > limits_.max_entries) ||
            (limits_.max_bytes != 0 && bytes_ > limits_.max_bytes))) {
      auto victim = entries_.begin();
      for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (it->second.last_used < victim->second.last_used) victim = it;
      }
      bytes_ -= victim->second.bytes;
      entries_.erase(victim);
      ++evictions_;
    }
  }

  FixedPointCacheLimits limits_;
  mutable std::mutex mutex_;
  /// mutable: Find (const) stamps recency ticks on the entry it returns.
  mutable std::unordered_map<std::string, Entry> entries_;
  mutable uint64_t tick_ = 0;
  size_t bytes_ = 0;
  mutable uint64_t hits_ = 0;
  mutable uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace xfrag::query

#endif  // XFRAG_QUERY_FIXED_POINT_CACHE_H_
