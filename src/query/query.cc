#include "query/query.h"

#include <cctype>

#include "common/strings.h"

namespace xfrag::query {

using algebra::FilterPtr;
namespace filters = algebra::filters;

std::string Query::ToString() const {
  std::string out = "Q_{" + filter->ToString() + "}{";
  for (size_t i = 0; i < terms.size(); ++i) {
    if (i > 0) out += ", ";
    out += terms[i];
  }
  out += "}";
  return out;
}

namespace {

// Recursive-descent parser for the filter mini-language.
class FilterParser {
 public:
  explicit FilterParser(std::string_view input) : input_(input) {}

  StatusOr<FilterPtr> Parse() {
    auto expr = ParseOr();
    if (!expr.ok()) return expr;
    SkipSpace();
    if (pos_ != input_.size()) {
      return Error("unexpected trailing input");
    }
    return expr;
  }

 private:
  Status Error(std::string message) const {
    return Status::ParseError(
        StrFormat("%s at offset %zu in filter expression", message.c_str(),
                  pos_));
  }

  void SkipSpace() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }

  bool ConsumeSymbol(std::string_view symbol) {
    SkipSpace();
    if (input_.substr(pos_, symbol.size()) == symbol) {
      pos_ += symbol.size();
      return true;
    }
    return false;
  }

  // Consumes a keyword (identifier followed by a non-identifier char).
  bool ConsumeWordToken(std::string_view word) {
    SkipSpace();
    size_t end = pos_ + word.size();
    if (AsciiToLower(input_.substr(pos_, word.size())) != word) return false;
    if (end < input_.size() &&
        (std::isalnum(static_cast<unsigned char>(input_[end])) ||
         input_[end] == '_')) {
      return false;
    }
    pos_ = end;
    return true;
  }

  StatusOr<std::string> ParseWord() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < input_.size() &&
           (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
            input_[pos_] == '_' || input_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected word");
    return std::string(input_.substr(start, pos_ - start));
  }

  StatusOr<uint32_t> ParseNumber() {
    SkipSpace();
    size_t start = pos_;
    uint64_t value = 0;
    while (pos_ < input_.size() &&
           std::isdigit(static_cast<unsigned char>(input_[pos_]))) {
      value = value * 10 + static_cast<uint64_t>(input_[pos_] - '0');
      if (value > UINT32_MAX) return Error("number too large");
      ++pos_;
    }
    if (pos_ == start) return Error("expected number");
    return static_cast<uint32_t>(value);
  }

  StatusOr<FilterPtr> ParseOr() {
    auto left = ParseAnd();
    if (!left.ok()) return left;
    FilterPtr acc = std::move(left).value();
    while (true) {
      if (ConsumeSymbol("|") || ConsumeWordToken("or")) {
        auto right = ParseAnd();
        if (!right.ok()) return right;
        acc = filters::Or(acc, std::move(right).value());
      } else {
        return acc;
      }
    }
  }

  StatusOr<FilterPtr> ParseAnd() {
    auto left = ParseUnary();
    if (!left.ok()) return left;
    FilterPtr acc = std::move(left).value();
    while (true) {
      if (ConsumeSymbol("&") || ConsumeWordToken("and")) {
        auto right = ParseUnary();
        if (!right.ok()) return right;
        acc = filters::And(acc, std::move(right).value());
      } else {
        return acc;
      }
    }
  }

  StatusOr<FilterPtr> ParseUnary() {
    if (ConsumeSymbol("!") || ConsumeWordToken("not")) {
      auto inner = ParseUnary();
      if (!inner.ok()) return inner;
      return filters::Not(std::move(inner).value());
    }
    if (ConsumeSymbol("(")) {
      auto inner = ParseOr();
      if (!inner.ok()) return inner;
      if (!ConsumeSymbol(")")) return Error("expected ')'");
      return inner;
    }
    return ParseAtom();
  }

  StatusOr<FilterPtr> ParseAtom() {
    if (ConsumeWordToken("true")) return filters::True();
    if (ConsumeWordToken("size")) {
      if (ConsumeSymbol("<=")) {
        auto n = ParseNumber();
        if (!n.ok()) return n.status();
        return filters::SizeAtMost(n.value());
      }
      if (ConsumeSymbol(">=")) {
        auto n = ParseNumber();
        if (!n.ok()) return n.status();
        return filters::SizeAtLeast(n.value());
      }
      return Error("expected '<=' or '>=' after 'size'");
    }
    if (ConsumeWordToken("height")) {
      if (!ConsumeSymbol("<=")) return Error("expected '<=' after 'height'");
      auto n = ParseNumber();
      if (!n.ok()) return n.status();
      return filters::HeightAtMost(n.value());
    }
    if (ConsumeWordToken("span")) {
      if (!ConsumeSymbol("<=")) return Error("expected '<=' after 'span'");
      auto n = ParseNumber();
      if (!n.ok()) return n.status();
      return filters::SpanAtMost(n.value());
    }
    if (ConsumeWordToken("distance")) {
      if (!ConsumeSymbol("<=")) return Error("expected '<=' after 'distance'");
      auto n = ParseNumber();
      if (!n.ok()) return n.status();
      return filters::DistanceAtMost(n.value());
    }
    if (ConsumeWordToken("root_depth")) {
      bool at_least = ConsumeSymbol(">=");
      if (!at_least && !ConsumeSymbol("<=")) {
        return Error("expected '<=' or '>=' after 'root_depth'");
      }
      auto n = ParseNumber();
      if (!n.ok()) return n.status();
      return at_least ? filters::RootDepthAtLeast(n.value())
                      : filters::RootDepthAtMost(n.value());
    }
    if (ConsumeWordToken("tags_within")) {
      if (!ConsumeSymbol("(")) return Error("expected '(' after 'tags_within'");
      std::vector<std::string> tags;
      while (true) {
        auto word = ParseWord();
        if (!word.ok()) return word.status();
        tags.push_back(std::move(word).value());
        if (ConsumeSymbol(",")) continue;
        if (ConsumeSymbol(")")) break;
        return Error("expected ',' or ')' in tags_within");
      }
      return filters::TagsWithin(std::move(tags));
    }
    if (ConsumeWordToken("keyword")) {
      if (!ConsumeSymbol("=")) return Error("expected '=' after 'keyword'");
      auto word = ParseWord();
      if (!word.ok()) return word.status();
      return filters::ContainsKeyword(std::move(word).value());
    }
    if (ConsumeWordToken("root_tag")) {
      if (!ConsumeSymbol("=")) return Error("expected '=' after 'root_tag'");
      auto word = ParseWord();
      if (!word.ok()) return word.status();
      return filters::RootTagIs(std::move(word).value());
    }
    if (ConsumeWordToken("equal_depth")) {
      if (!ConsumeSymbol("(")) {
        return Error("expected '(' after 'equal_depth'");
      }
      auto first = ParseWord();
      if (!first.ok()) return first.status();
      if (!ConsumeSymbol(",")) return Error("expected ','");
      auto second = ParseWord();
      if (!second.ok()) return second.status();
      if (!ConsumeSymbol(")")) return Error("expected ')'");
      return filters::EqualDepth(std::move(first).value(),
                                 std::move(second).value());
    }
    return Error("expected filter atom");
  }

  std::string_view input_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<FilterPtr> ParseFilterExpression(std::string_view input) {
  return FilterParser(input).Parse();
}

}  // namespace xfrag::query
