// Bottom-up evaluation of logical plans against a document + keyword index.

#ifndef XFRAG_QUERY_EXECUTOR_H_
#define XFRAG_QUERY_EXECUTOR_H_

#include <vector>

#include "algebra/fragment_set.h"
#include "algebra/ops.h"
#include "query/fixed_point_cache.h"
#include "query/plan.h"
#include "text/inverted_index.h"

namespace xfrag::query {

/// Executor configuration.
struct ExecutorOptions {
  /// Limits for literal powerset-join nodes (brute-force strategy).
  algebra::PowersetJoinOptions powerset;
  /// Optional cross-query memo table for FixedPoint-over-Scan plan
  /// fragments. The pointed-to cache must outlive the execution and must
  /// only ever be used with one (document, index) pair. Not thread-safe.
  FixedPointCache* fixed_point_cache = nullptr;
};

/// Per-node observation recorded during execution (EXPLAIN ANALYZE).
struct NodeCardinality {
  const PlanNode* node = nullptr;
  /// Output fragments of this node.
  size_t rows = 0;
};

/// \brief Evaluates `plan` and returns the resulting fragment set.
///
/// `metrics`, when non-null, accumulates operator work counters.
/// `cardinalities`, when non-null, receives one entry per executed plan
/// node with its output size (EXPLAIN ANALYZE support).
StatusOr<algebra::FragmentSet> ExecutePlan(
    const PlanNode& plan, const doc::Document& document,
    const text::InvertedIndex& index, const ExecutorOptions& options = {},
    algebra::OpMetrics* metrics = nullptr,
    std::vector<NodeCardinality>* cardinalities = nullptr);

}  // namespace xfrag::query

#endif  // XFRAG_QUERY_EXECUTOR_H_
