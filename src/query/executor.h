// Bottom-up evaluation of logical plans against a document + keyword index.

#ifndef XFRAG_QUERY_EXECUTOR_H_
#define XFRAG_QUERY_EXECUTOR_H_

#include <atomic>
#include <limits>
#include <vector>

#include "algebra/fragment_set.h"
#include "algebra/ops.h"
#include "common/cancel.h"
#include "common/thread_pool.h"
#include "query/fixed_point_cache.h"
#include "query/plan.h"
#include "text/inverted_index.h"

namespace xfrag::query {

class ScanMemo;  // query/batch.h

/// Executor configuration.
struct ExecutorOptions {
  /// Limits for literal powerset-join nodes (brute-force strategy).
  algebra::PowersetJoinOptions powerset;
  /// Optional cross-query memo table for FixedPoint-over-Scan plan
  /// fragments. The pointed-to cache must outlive the execution and must
  /// only ever be used with one (document, index) pair. Thread-safe.
  FixedPointCache* fixed_point_cache = nullptr;
  /// Kernel parallelism for the join and fixed-point operators: 1 runs the
  /// serial kernels; > 1 runs the pooled kernels of algebra/ops_parallel
  /// with that many workers. Results are bit-identical either way.
  unsigned parallelism = 1;
  /// Optional externally owned pool to run the parallel kernels on (reused
  /// across queries, e.g. by the collection engine). When null and
  /// `parallelism` > 1, ExecutePlan spins up a transient pool of
  /// `parallelism` workers for the duration of the call.
  ThreadPool* thread_pool = nullptr;
  /// Optional per-request deadline/cancellation (owned by the caller, e.g.
  /// one token per server request). Checked before every plan node and
  /// propagated into the unbounded kernels (fixed-point loops, powerset
  /// enumeration); a tripped token makes ExecutePlan return DeadlineExceeded.
  /// Metrics accumulated up to that point remain in `*metrics` — partial
  /// observability for timed-out queries. Partial closures are never stored
  /// in the fixed-point cache.
  const CancelToken* cancel = nullptr;
  /// Initial score floor seeded into the top-k collector (ExecutePlanTopK
  /// only; -inf = none). Soundness is the caller's promise: at least k
  /// distinct answers *somewhere in the query's global scope* — other
  /// documents, other shards — score at or above the floor. Candidates
  /// strictly below it are pruned; the returned prefix is then exactly the
  /// answers of the unseeded evaluation that score >= the floor.
  double score_floor = -std::numeric_limits<double>::infinity();
  /// Optional concurrently-raised floor (distributed threshold updates).
  /// Read with relaxed ordering during the bounded join; must only ever
  /// rise, through sound values, and must outlive the call.
  const std::atomic<double>* live_score_floor = nullptr;
  /// Debug audit of the seeded floor: when true, ExecutePlanTopK fails with
  /// Internal if the floor provably suppressed a top-k answer of *this*
  /// plan's own answer stream (fewer than k retained, or a rejected
  /// candidate outscoring a retained one). Leave false when the floor's
  /// witnesses legitimately live elsewhere (other documents or shards).
  bool audit_score_floor = false;
  /// Optional subtree-class index of `document` (doc/subtree_classes.h).
  /// When set — and the global SetDagCompressionEnabled switch is on — the
  /// join/select/fixed-point kernels evaluate filters and joins once per
  /// subtree equivalence class and replay the outcome for every other
  /// occurrence (DAG-compressed evaluation, docs/ALGEBRA.md). Results and
  /// logical counters are bit-identical to the uncompressed run; only the
  /// dag:* counters of OpMetrics depend on it. The kernels self-gate on each
  /// plan filter's TranslationInvariant(); the top-k path additionally
  /// requires the residue filter to be invariant, and callers must only set
  /// this when their scorer/accept callbacks are translation-invariant too
  /// (the engine's built-ins all are).
  const doc::SubtreeClassIndex* subtree_classes = nullptr;
  /// Optional batch-scoped memo of keyword-scan results (query/batch.h).
  /// Shared by the queries of one term-connected batch group: a kScanKeyword
  /// hit replays the stored fragment set with the scan's exact
  /// filter_evals/filter_rejections deltas instead of re-decoding the
  /// postings, keeping memoized metrics byte-identical to sequential
  /// evaluation (scan metrics depend only on the postings and the filter,
  /// never on execution order). NOT thread-safe — one group, one thread, one
  /// memo. `scan_memo_document` keys entries when one memo spans documents.
  ScanMemo* scan_memo = nullptr;
  size_t scan_memo_document = 0;
};

/// Per-node observation recorded during execution (EXPLAIN ANALYZE).
struct NodeCardinality {
  const PlanNode* node = nullptr;
  /// Output fragments of this node.
  size_t rows = 0;
};

/// \brief Evaluates `plan` and returns the resulting fragment set.
///
/// `metrics`, when non-null, accumulates operator work counters.
/// `cardinalities`, when non-null, receives one entry per executed plan
/// node with its output size (EXPLAIN ANALYZE support).
StatusOr<algebra::FragmentSet> ExecutePlan(
    const PlanNode& plan, const doc::Document& document,
    const text::InvertedIndex& index, const ExecutorOptions& options = {},
    algebra::OpMetrics* metrics = nullptr,
    std::vector<NodeCardinality>* cardinalities = nullptr);

/// \brief Top-k evaluation of `plan`: returns the `k` best answers under
/// (scorer score descending, canonical fragment order ascending) — exactly
/// the length-k prefix of scoring every answer of ExecutePlan and applying
/// `accept` (the engine's answer-mode condition; empty = accept all).
///
/// When the plan root is σ_residue over a final kPairwiseJoin (the shape
/// every fixed-point strategy produces), the children are evaluated normally
/// and the final join runs score-bounded (PairwiseJoinTopK / the pooled
/// variant): pairs whose score upper bound cannot beat the current k-th best
/// answer are rejected in O(1) before any join is materialized. The residual
/// selection and `accept` are applied *before* a candidate enters the heap,
/// so pruning is sound. Any other root shape (single-term fixed point,
/// brute-force powerset join) falls back to full evaluation followed by
/// heap-selection — same results, no pruning.
///
/// `accept` and `scorer` may be called from pool workers and must be
/// thread-safe. Residual filter evaluations on the bounded path are not
/// metered (they are schedule-dependent under pruning; see ops.h).
StatusOr<std::vector<algebra::ScoredFragment>> ExecutePlanTopK(
    const PlanNode& plan, const doc::Document& document,
    const text::InvertedIndex& index, const ExecutorOptions& options,
    const algebra::JoinScorer& scorer, size_t k,
    const algebra::FragmentPredicate& accept = {},
    algebra::OpMetrics* metrics = nullptr,
    std::vector<NodeCardinality>* cardinalities = nullptr);

}  // namespace xfrag::query

#endif  // XFRAG_QUERY_EXECUTOR_H_
