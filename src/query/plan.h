// Logical query plans. A plan is a tree of algebraic operator nodes; the
// rewriter transforms it (Theorem 2: powerset join → fixed points + pairwise
// join; Theorem 3: anti-monotonic selection push-down, the paper's Figure 5),
// and the executor evaluates it bottom-up.

#ifndef XFRAG_QUERY_PLAN_H_
#define XFRAG_QUERY_PLAN_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "algebra/filter.h"
#include "algebra/ops.h"

namespace xfrag::query {

/// Operator kinds in a logical plan.
enum class PlanNodeKind {
  /// Base keyword selection σ_{keyword=k}(nodes(D)): the posting list of
  /// `term` as single-node fragments.
  kScanKeyword,
  /// σ_filter(child).
  kSelect,
  /// Pairwise fragment join of the two children; when `filter` is set, each
  /// produced fragment is tested immediately (push-down form).
  kPairwiseJoin,
  /// Powerset fragment join of the two children, evaluated literally by
  /// subset enumeration (the brute-force strategy).
  kPowersetJoin,
  /// Fixed point of the child; `fixed_point_reduced` selects the Theorem-1
  /// variant; when `filter` is set, the filter is applied inside every
  /// iteration (push-down form).
  kFixedPoint,
};

/// \brief A node in a logical plan tree.
struct PlanNode {
  PlanNodeKind kind;

  /// For kScanKeyword.
  std::string term;

  /// For kSelect (required) and kPairwiseJoin / kFixedPoint (optional
  /// pushed-down anti-monotonic filter; null when absent).
  algebra::FilterPtr filter;

  /// For kFixedPoint: use the Theorem-1 reduced-iteration algorithm instead
  /// of naive convergence checking. Ignored when `filter` is set (the
  /// filtered fixed point always runs with convergence checking).
  bool fixed_point_reduced = false;

  /// Children (0 for scans, 1 for select/fixed point, 2 for joins).
  std::vector<std::unique_ptr<PlanNode>> children;

  /// Deep copy.
  std::unique_ptr<PlanNode> Clone() const;

  /// Multi-line indented rendering (EXPLAIN output).
  std::string ToString() const;

  /// Rendering with a per-node suffix (EXPLAIN ANALYZE output); `annotate`
  /// returns the suffix for each node (may be empty).
  std::string ToStringAnnotated(
      const std::function<std::string(const PlanNode&)>& annotate) const;
};

/// Convenience constructors.
std::unique_ptr<PlanNode> MakeScan(std::string term);
std::unique_ptr<PlanNode> MakeSelect(algebra::FilterPtr filter,
                                     std::unique_ptr<PlanNode> child);
std::unique_ptr<PlanNode> MakePairwiseJoin(std::unique_ptr<PlanNode> left,
                                           std::unique_ptr<PlanNode> right);
std::unique_ptr<PlanNode> MakePowersetJoin(std::unique_ptr<PlanNode> left,
                                           std::unique_ptr<PlanNode> right);
std::unique_ptr<PlanNode> MakeFixedPoint(std::unique_ptr<PlanNode> child,
                                         bool reduced);

/// \brief Builds the canonical initial plan for a query (paper §2.3):
/// σ_P(F1 ⋈* F2 ⋈* ... ⋈* Fm); for m == 1 the plan is σ_P(F1⁺).
std::unique_ptr<PlanNode> BuildInitialPlan(
    const std::vector<std::string>& terms, const algebra::FilterPtr& filter);

/// \brief Theorem 2 rewrite: every kPowersetJoin(A, B) becomes
/// kPairwiseJoin(kFixedPoint(A), kFixedPoint(B)).
///
/// \param reduced_fixed_point chooses the Theorem-1 fixed-point algorithm.
std::unique_ptr<PlanNode> RewritePowersetToFixedPoint(
    std::unique_ptr<PlanNode> plan, bool reduced_fixed_point);

/// \brief Theorem 3 rewrite (Figure 5): splits the top-level selection into
/// its anti-monotonic part Pa and residue, attaches Pa to every join and
/// fixed-point node and inserts σ_Pa over every scan; the residue remains as
/// the final selection.
///
/// Only sound when applied after RewritePowersetToFixedPoint. Filters that
/// are not anti-monotonic are never pushed.
std::unique_ptr<PlanNode> PushDownSelection(std::unique_ptr<PlanNode> plan);

}  // namespace xfrag::query

#endif  // XFRAG_QUERY_PLAN_H_
