// Column storage primitives shared by the document/text/class modules: a
// typed column and a byte blob that either OWN their data (built in memory
// by the parse/index path) or are a zero-copy VIEW over externally owned
// bytes (a storage::MmapFile holding an immutable snapshot — see
// docs/STORAGE.md). Accessors are branch-free either way: consumers read
// through one raw pointer, so a snapshot-backed document pays no abstraction
// tax over the in-memory one.
//
// Views never own lifetime: whoever constructs a view-backed object must
// keep the backing bytes alive (collections anchor the mmap with
// Collection::HoldResource).

#ifndef XFRAG_DOC_COLUMN_H_
#define XFRAG_DOC_COLUMN_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

namespace xfrag::doc {

/// \brief A read-only typed column: owned vector or borrowed pointer.
///
/// Copy and move keep the invariant that `data()` points at this object's
/// own vector when owning (vector moves preserve the heap buffer, copies
/// re-point).
template <typename T>
class ColumnView {
  static_assert(std::is_trivially_copyable_v<T>,
                "columns hold raw fixed-width values");

 public:
  ColumnView() = default;

  /// Takes ownership of `values`.
  static ColumnView Own(std::vector<T> values) {
    ColumnView c;
    c.owned_ = std::move(values);
    c.data_ = c.owned_.data();
    c.size_ = c.owned_.size();
    c.owns_ = true;
    return c;
  }

  /// Borrows `size` values at `data` (caller keeps them alive).
  static ColumnView View(const T* data, size_t size) {
    ColumnView c;
    c.data_ = data;
    c.size_ = size;
    c.owns_ = false;
    return c;
  }

  ColumnView(const ColumnView& other) { *this = other; }
  ColumnView& operator=(const ColumnView& other) {
    if (this == &other) return *this;
    owned_ = other.owned_;
    size_ = other.size_;
    owns_ = other.owns_;
    data_ = owns_ ? owned_.data() : other.data_;
    return *this;
  }
  ColumnView(ColumnView&& other) noexcept { *this = std::move(other); }
  ColumnView& operator=(ColumnView&& other) noexcept {
    if (this == &other) return *this;
    owned_ = std::move(other.owned_);
    size_ = other.size_;
    owns_ = other.owns_;
    data_ = owns_ ? owned_.data() : other.data_;
    other.data_ = nullptr;
    other.size_ = 0;
    other.owns_ = false;
    return *this;
  }

  const T* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  T operator[](size_t i) const { return data_[i]; }

 private:
  const T* data_ = nullptr;
  size_t size_ = 0;
  bool owns_ = false;
  std::vector<T> owned_;
};

/// \brief A read-only byte blob: owned string or borrowed string_view.
class BlobView {
 public:
  BlobView() = default;

  static BlobView Own(std::string bytes) {
    BlobView b;
    b.owned_ = std::move(bytes);
    b.view_ = b.owned_;
    b.owns_ = true;
    return b;
  }

  static BlobView View(std::string_view bytes) {
    BlobView b;
    b.view_ = bytes;
    b.owns_ = false;
    return b;
  }

  BlobView(const BlobView& other) { *this = other; }
  BlobView& operator=(const BlobView& other) {
    if (this == &other) return *this;
    owned_ = other.owned_;
    owns_ = other.owns_;
    view_ = owns_ ? std::string_view(owned_) : other.view_;
    return *this;
  }
  BlobView(BlobView&& other) noexcept { *this = std::move(other); }
  BlobView& operator=(BlobView&& other) noexcept {
    if (this == &other) return *this;
    owned_ = std::move(other.owned_);
    owns_ = other.owns_;
    view_ = owns_ ? std::string_view(owned_) : other.view_;
    other.view_ = {};
    other.owns_ = false;
    return *this;
  }

  std::string_view view() const { return view_; }
  size_t size() const { return view_.size(); }

  /// The substring [begin, end) of the blob.
  std::string_view Slice(uint64_t begin, uint64_t end) const {
    return view_.substr(begin, end - begin);
  }

 private:
  std::string_view view_;
  bool owns_ = false;
  std::string owned_;
};

}  // namespace xfrag::doc

#endif  // XFRAG_DOC_COLUMN_H_
