#include "doc/subtree_classes.h"

#include <unordered_set>

namespace xfrag::doc {

namespace {

inline size_t HashCombine(size_t seed, size_t value) {
  // Boost-style mix; good enough for hash-cons bucketing (equality is exact).
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace

size_t SubtreeClassInterner::ClassKeyHash::operator()(const ClassKey& k) const {
  size_t h = HashCombine(k.tag_id, k.text_id);
  for (SubtreeClassId c : k.children) h = HashCombine(h, c);
  return h;
}

uint32_t SubtreeClassInterner::InternString(std::string_view s) {
  auto it = strings_.find(std::string(s));
  if (it != strings_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(strings_.size());
  strings_.emplace(std::string(s), id);
  return id;
}

SubtreeClassId SubtreeClassInterner::Intern(
    std::string_view tag, std::string_view text,
    const std::vector<SubtreeClassId>& children, uint64_t subtree_nodes) {
  ClassKey key;
  key.tag_id = InternString(tag);
  key.text_id = InternString(text);
  key.children = children;
  auto it = classes_.find(key);
  if (it != classes_.end()) {
    ++occurrences_[it->second];
    return it->second;
  }
  SubtreeClassId id = static_cast<SubtreeClassId>(class_nodes_.size());
  classes_.emplace(std::move(key), id);
  class_nodes_.push_back(subtree_nodes);
  occurrences_.push_back(1);
  unique_subtree_nodes_ += subtree_nodes;
  return id;
}

SubtreeClassIndex SubtreeClassIndex::Build(const Document& document,
                                           SubtreeClassInterner* interner) {
  SubtreeClassIndex index;
  const size_t n = document.size();
  index.class_of_.resize(n);
  index.dup_anchor_.assign(n, kNoNode);
  if (n == 0) return index;

  // Bottom-up interning: in pre-order every child id exceeds its parent's,
  // so a reverse scan sees all children classes before the parent.
  std::vector<SubtreeClassId> child_classes;
  for (size_t i = n; i-- > 0;) {
    const NodeId node = static_cast<NodeId>(i);
    const auto& kids = document.children(node);
    child_classes.clear();
    child_classes.reserve(kids.size());
    for (NodeId c : kids) child_classes.push_back(index.class_of_[c]);
    index.class_of_[node] =
        interner->Intern(document.tag(node), document.text(node),
                         child_classes, document.subtree_size(node));
  }

  // In-document occurrence counts decide duplication anchors: the kernel
  // pair cache only pays off when a class repeats within one document.
  std::unordered_map<SubtreeClassId, uint32_t> local_count;
  local_count.reserve(n);
  for (size_t i = 0; i < n; ++i) ++local_count[index.class_of_[i]];

  std::unordered_set<SubtreeClassId> dup_classes;
  for (NodeId node = 0; node < n; ++node) {
    const NodeId parent = document.parent(node);
    NodeId anchor = (parent == kNoNode) ? kNoNode : index.dup_anchor_[parent];
    if (anchor == kNoNode && local_count[index.class_of_[node]] >= 2) {
      anchor = node;
    }
    index.dup_anchor_[node] = anchor;
    if (anchor != kNoNode) {
      ++index.duplicated_nodes_;
      if (anchor == node) dup_classes.insert(index.class_of_[node]);
    }
  }
  index.duplicated_classes_ = dup_classes.size();
  return index;
}

}  // namespace xfrag::doc
