#include "doc/subtree_classes.h"

#include <unordered_set>

#include "common/logging.h"
#include "common/strings.h"

namespace xfrag::doc {

namespace {

inline size_t HashCombine(size_t seed, size_t value) {
  // Boost-style mix; good enough for hash-cons bucketing (equality is exact).
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace

size_t SubtreeClassInterner::ClassKeyHash::operator()(const ClassKey& k) const {
  size_t h = HashCombine(k.tag_id, k.text_id);
  for (SubtreeClassId c : k.children) h = HashCombine(h, c);
  return h;
}

uint32_t SubtreeClassInterner::InternString(std::string_view s) {
  auto it = strings_.find(std::string(s));
  if (it != strings_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(strings_.size());
  strings_.emplace(std::string(s), id);
  return id;
}

StatusOr<SubtreeClassInterner> SubtreeClassInterner::FromSnapshotStats(
    const uint64_t* class_nodes, const uint64_t* occurrences,
    size_t class_count) {
  if ((class_nodes == nullptr || occurrences == nullptr) && class_count > 0) {
    return Status::InvalidArgument("snapshot class stats column missing");
  }
  SubtreeClassInterner interner;
  interner.frozen_ = true;
  interner.view_class_nodes_ =
      ColumnView<uint64_t>::View(class_nodes, class_count);
  interner.view_occurrences_ =
      ColumnView<uint64_t>::View(occurrences, class_count);
  for (size_t c = 0; c < class_count; ++c) {
    if (class_nodes[c] == 0 || occurrences[c] == 0) {
      return Status::ParseError(
          StrFormat("snapshot class %zu has zero nodes or occurrences", c));
    }
    interner.unique_subtree_nodes_ += class_nodes[c];
  }
  return interner;
}

SubtreeClassId SubtreeClassInterner::Intern(
    std::string_view tag, std::string_view text,
    const std::vector<SubtreeClassId>& children, uint64_t subtree_nodes) {
  XFRAG_CHECK(!frozen_);  // Snapshot-backed class tables are immutable.
  ClassKey key;
  key.tag_id = InternString(tag);
  key.text_id = InternString(text);
  key.children = children;
  auto it = classes_.find(key);
  if (it != classes_.end()) {
    ++occurrences_[it->second];
    return it->second;
  }
  SubtreeClassId id = static_cast<SubtreeClassId>(class_nodes_.size());
  classes_.emplace(std::move(key), id);
  class_nodes_.push_back(subtree_nodes);
  occurrences_.push_back(1);
  unique_subtree_nodes_ += subtree_nodes;
  return id;
}

SubtreeClassIndex SubtreeClassIndex::Build(const Document& document,
                                           SubtreeClassInterner* interner) {
  SubtreeClassIndex index;
  const size_t n = document.size();
  std::vector<SubtreeClassId> class_of(n);
  std::vector<NodeId> dup_anchor(n, kNoNode);

  // Bottom-up interning: in pre-order every child id exceeds its parent's,
  // so a reverse scan sees all children classes before the parent.
  std::vector<SubtreeClassId> child_classes;
  for (size_t i = n; i-- > 0;) {
    const NodeId node = static_cast<NodeId>(i);
    auto kids = document.children(node);
    child_classes.clear();
    child_classes.reserve(kids.size());
    for (NodeId c : kids) child_classes.push_back(class_of[c]);
    class_of[node] =
        interner->Intern(document.tag(node), document.text(node),
                         child_classes, document.subtree_size(node));
  }

  // In-document occurrence counts decide duplication anchors: the kernel
  // pair cache only pays off when a class repeats within one document.
  std::unordered_map<SubtreeClassId, uint32_t> local_count;
  local_count.reserve(n);
  for (size_t i = 0; i < n; ++i) ++local_count[class_of[i]];

  std::unordered_set<SubtreeClassId> dup_classes;
  for (NodeId node = 0; node < n; ++node) {
    const NodeId parent = document.parent(node);
    NodeId anchor = (parent == kNoNode) ? kNoNode : dup_anchor[parent];
    if (anchor == kNoNode && local_count[class_of[node]] >= 2) {
      anchor = node;
    }
    dup_anchor[node] = anchor;
    if (anchor != kNoNode) {
      ++index.duplicated_nodes_;
      if (anchor == node) dup_classes.insert(class_of[node]);
    }
  }
  index.duplicated_classes_ = dup_classes.size();
  index.class_of_ = ColumnView<SubtreeClassId>::Own(std::move(class_of));
  index.dup_anchor_ = ColumnView<NodeId>::Own(std::move(dup_anchor));
  return index;
}

StatusOr<SubtreeClassIndex> SubtreeClassIndex::FromSnapshotColumns(
    const SnapshotColumns& c, const Document& document) {
  const size_t n = c.node_count;
  if (n != document.size()) {
    return Status::ParseError("snapshot class columns disagree with document");
  }
  if (n > 0 && (c.class_of == nullptr || c.dup_anchor == nullptr)) {
    return Status::InvalidArgument("snapshot class column missing");
  }
  if (c.validate) {
    uint64_t duplicated_nodes = 0;
    for (size_t i = 0; i < n; ++i) {
      if (c.class_of[i] >= c.class_count) {
        return Status::ParseError(
            StrFormat("snapshot class of node %zu out of range", i));
      }
      const NodeId anchor = c.dup_anchor[i];
      if (anchor != kNoNode) {
        ++duplicated_nodes;
        if (anchor >= n ||
            !document.IsAncestorOrSelf(anchor, static_cast<NodeId>(i))) {
          return Status::ParseError(StrFormat(
              "snapshot dup anchor of node %zu is not an ancestor", i));
        }
      }
    }
    if (duplicated_nodes != c.duplicated_nodes) {
      return Status::ParseError("snapshot duplicated-node count mismatch");
    }
  }
  SubtreeClassIndex index;
  index.class_of_ = ColumnView<SubtreeClassId>::View(c.class_of, n);
  index.dup_anchor_ = ColumnView<NodeId>::View(c.dup_anchor, n);
  index.duplicated_nodes_ = c.duplicated_nodes;
  index.duplicated_classes_ = c.duplicated_classes;
  return index;
}

}  // namespace xfrag::doc
