// Build-time subtree hash-consing (DAG compression of the corpus forest).
//
// Document-centric corpora are highly repetitive — generated pages,
// boilerplate sections, syndicated articles. Following "Efficient XML
// Keyword Search based on DAG-Compression" (arXiv:1311.6714), we hash-cons
// structurally identical subtrees at collection build time: two nodes are in
// the same *subtree equivalence class* iff their subtrees are isomorphic
// including tags and textual content. The class structure lets the algebra
// evaluate once per class and multiply surviving answers out per occurrence:
//
//  * collection level — two documents whose roots share a class are
//    byte-identical documents; the engine evaluates one representative and
//    replays its answers (node ids, scores, and work counters are identical
//    by construction) for every member;
//  * kernel level — within one document, fragments living in duplicated
//    subtrees are keyed by their *local form* (class of the duplication
//    anchor + offsets relative to it); a join/selection outcome computed for
//    one occurrence is replayed, translated, for every other occurrence.
//
// Classes are interned bottom-up: class(n) = intern(tag(n), text(n),
// [class(c) for c in children(n)]). Equal classes therefore imply equal
// subtree size, equal content, and positionally isomorphic descendants —
// the soundness basis for representative evaluation (docs/ALGEBRA.md,
// "DAG-compressed evaluation").

#ifndef XFRAG_DOC_SUBTREE_CLASSES_H_
#define XFRAG_DOC_SUBTREE_CLASSES_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "doc/document.h"

namespace xfrag::doc {

/// Identifier of a subtree equivalence class, dense from 0.
using SubtreeClassId = uint32_t;

/// \brief Collection-global interner of subtree equivalence classes.
///
/// One interner is shared by every document of a collection, so class ids
/// are comparable across documents (two documents are identical iff their
/// roots intern to the same class). Not thread-safe; collection build is
/// single-threaded.
class SubtreeClassInterner {
 public:
  /// Interns the class keyed by (tag, text, children classes); returns the
  /// existing id when an identical subtree was seen before. `subtree_nodes`
  /// is the node count of the subtree (1 + children subtree sizes), recorded
  /// once per class for compression statistics. Must not be called on a
  /// snapshot-backed interner (the class table is frozen in the file).
  SubtreeClassId Intern(std::string_view tag, std::string_view text,
                        const std::vector<SubtreeClassId>& children,
                        uint64_t subtree_nodes);

  /// \brief Zero-copy interner over a snapshot's class table. Only the
  /// per-class statistics survive serialization (the hash-cons keys are a
  /// build-time artifact); Intern is forbidden on the result.
  static StatusOr<SubtreeClassInterner> FromSnapshotStats(
      const uint64_t* class_nodes, const uint64_t* occurrences,
      size_t class_count);

  /// Number of distinct classes interned so far.
  size_t size() const {
    return frozen_ ? view_class_nodes_.size() : class_nodes_.size();
  }

  /// Total occurrences recorded across all documents for `cls`.
  uint64_t occurrences(SubtreeClassId cls) const {
    return frozen_ ? view_occurrences_[cls] : occurrences_[cls];
  }

  /// Node count of the subtree every member of `cls` roots.
  uint64_t class_nodes(SubtreeClassId cls) const {
    return frozen_ ? view_class_nodes_[cls] : class_nodes_[cls];
  }

  /// Sum over classes of the per-class subtree node count — the node count
  /// of the deduplicated forest ("unique nodes"). The collection-wide
  /// compression ratio is total corpus nodes / unique subtree nodes... but
  /// since nested duplicates share structure, the headline ratio reported by
  /// /metrics uses total nodes vs nodes outside duplicated subtrees; this
  /// accessor feeds the raw class table stats.
  uint64_t unique_subtree_nodes() const { return unique_subtree_nodes_; }

 private:
  struct ClassKey {
    uint32_t tag_id = 0;
    uint32_t text_id = 0;
    std::vector<SubtreeClassId> children;
    bool operator==(const ClassKey& o) const {
      return tag_id == o.tag_id && text_id == o.text_id &&
             children == o.children;
    }
  };
  struct ClassKeyHash {
    size_t operator()(const ClassKey& k) const;
  };

  uint32_t InternString(std::string_view s);

  std::unordered_map<std::string, uint32_t> strings_;
  std::unordered_map<ClassKey, SubtreeClassId, ClassKeyHash> classes_;
  std::vector<uint64_t> class_nodes_;  // Subtree node count per class.
  std::vector<uint64_t> occurrences_;  // Total members per class.
  uint64_t unique_subtree_nodes_ = 0;
  // Snapshot view mode: the stats columns borrow from the mapping and the
  // interner rejects further Intern calls.
  bool frozen_ = false;
  ColumnView<uint64_t> view_class_nodes_;
  ColumnView<uint64_t> view_occurrences_;
};

/// \brief Per-document view of the subtree class structure.
///
/// Immutable once built; safe to share across query threads. `class_of(n)`
/// is n's subtree class. `dup_anchor(n)` is the *duplication anchor*: the
/// highest ancestor-or-self of n whose class occurs at least twice in this
/// document, or kNoNode when no such ancestor exists. Fragments whose roots
/// share a duplication anchor live inside isomorphic copies of the same
/// subtree, which is what the kernel-level class-aware path keys on;
/// documents where every dup_anchor is kNoNode take a zero-cost bypass
/// (has_duplication() == false).
class SubtreeClassIndex {
 public:
  /// \brief The raw class columns of one document inside a snapshot (see
  /// doc/document.h SnapshotDocumentColumns for the borrowing contract).
  struct SnapshotColumns {
    size_t node_count = 0;
    const SubtreeClassId* class_of = nullptr;  // [node_count]
    const NodeId* dup_anchor = nullptr;        // [node_count]
    uint64_t duplicated_nodes = 0;
    uint64_t duplicated_classes = 0;
    size_t class_count = 0;  // Collection-global class table size.
    bool validate = true;
  };

  /// Builds the index for `document`, interning into `interner` (shared
  /// across the collection). Records one occurrence per node.
  static SubtreeClassIndex Build(const Document& document,
                                 SubtreeClassInterner* interner);

  /// \brief Zero-copy index over snapshot columns. With `columns.validate`
  /// (default) every class id is ranged against the class table and every
  /// duplication anchor is checked to be an ancestor-or-self, so corrupt
  /// columns yield ParseError rather than out-of-bounds reads later.
  static StatusOr<SubtreeClassIndex> FromSnapshotColumns(
      const SnapshotColumns& columns, const Document& document);

  SubtreeClassId class_of(NodeId n) const { return class_of_[n]; }
  NodeId dup_anchor(NodeId n) const { return dup_anchor_[n]; }

  /// Class of the document root — equal across byte-identical documents.
  SubtreeClassId root_class() const { return class_of_[0]; }

  /// True iff some subtree occurs >= 2 times within this document.
  bool has_duplication() const { return duplicated_nodes_ > 0; }

  /// Nodes covered by a duplicated subtree (dup_anchor != kNoNode).
  uint64_t duplicated_nodes() const { return duplicated_nodes_; }

  /// Distinct classes occurring >= 2 times within this document.
  uint64_t duplicated_classes() const { return duplicated_classes_; }

  size_t size() const { return class_of_.size(); }

 private:
  ColumnView<SubtreeClassId> class_of_;
  ColumnView<NodeId> dup_anchor_;
  uint64_t duplicated_nodes_ = 0;
  uint64_t duplicated_classes_ = 0;
};

}  // namespace xfrag::doc

#endif  // XFRAG_DOC_SUBTREE_CLASSES_H_
