#include "doc/document.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"
#include "common/strings.h"

namespace xfrag::doc {

namespace {

// Collects one document node per DOM element, numbering by pre-order.
void FlattenElement(const xml::XmlElement& element, NodeId parent,
                    std::vector<NodeId>* parents,
                    std::vector<std::string>* tags,
                    std::vector<std::string>* texts) {
  NodeId id = static_cast<NodeId>(parents->size());
  parents->push_back(parent);
  tags->push_back(element.tag());
  std::string text = element.DirectText();
  for (const auto& attr : element.attributes()) {
    if (!text.empty()) text.push_back(' ');
    text += attr.value;
  }
  texts->push_back(std::move(text));
  for (const auto& child : element.children()) {
    if (child->IsElement()) {
      FlattenElement(child->AsElement(), id, parents, tags, texts);
    }
  }
}

// Checks that `parents` is a valid depth-first pre-order numbering: node i's
// parent must lie on the current rightmost path (otherwise subtrees would
// not be contiguous id ranges, breaking the interval-based ancestor tests).
Status ValidatePreorderParents(const NodeId* parents, size_t n) {
  if (n == 0) {
    return Status::InvalidArgument("document must have at least one node");
  }
  if (parents[0] != kNoNode) {
    return Status::InvalidArgument("node 0 must be the root (parent kNoNode)");
  }
  std::vector<NodeId> path{0};
  for (size_t i = 1; i < n; ++i) {
    if (parents[i] >= i) {
      return Status::InvalidArgument(StrFormat(
          "parent of node %zu is %u; pre-order requires parent < node", i,
          parents[i]));
    }
    while (!path.empty() && path.back() != parents[i]) path.pop_back();
    if (path.empty()) {
      return Status::InvalidArgument(StrFormat(
          "node %zu has parent %u, which is not on the rightmost path; "
          "the numbering is not a depth-first pre-order",
          i, parents[i]));
    }
    path.push_back(static_cast<NodeId>(i));
  }
  return Status::OK();
}

}  // namespace

StatusOr<Document> Document::FromDom(const xml::XmlDocument& dom) {
  if (!dom.has_root()) {
    return Status::InvalidArgument("document has no root element");
  }
  std::vector<NodeId> parents;
  std::vector<std::string> tags;
  std::vector<std::string> texts;
  FlattenElement(dom.root(), kNoNode, &parents, &tags, &texts);
  return FromParents(std::move(parents), std::move(tags), std::move(texts));
}

StatusOr<Document> Document::FromParents(std::vector<NodeId> parents,
                                         std::vector<std::string> tags,
                                         std::vector<std::string> texts) {
  if (parents.empty()) {
    return Status::InvalidArgument("document must have at least one node");
  }
  if (parents.size() != tags.size() || parents.size() != texts.size()) {
    return Status::InvalidArgument("parents/tags/texts sizes differ");
  }
  XFRAG_RETURN_NOT_OK(ValidatePreorderParents(parents.data(), parents.size()));
  const size_t n = parents.size();

  Document docm;

  // Dictionary-encode tags (first-occurrence order) into an offsets + blob
  // pair — the same shape a snapshot stores, so accessors are uniform.
  {
    std::unordered_map<std::string_view, uint32_t> ids;
    std::vector<uint32_t> tag_ids;
    std::vector<uint64_t> offsets{0};
    std::string blob;
    tag_ids.reserve(n);
    for (const std::string& tag : tags) {
      auto [it, inserted] =
          ids.emplace(tag, static_cast<uint32_t>(offsets.size() - 1));
      if (inserted) {
        blob += tag;
        offsets.push_back(blob.size());
        // The map key views `tag` (the caller's vector), which stays alive
        // until the end of this scope — by then the map is done.
      }
      tag_ids.push_back(it->second);
    }
    docm.tag_ids_ = ColumnView<uint32_t>::Own(std::move(tag_ids));
    docm.tag_offsets_ = ColumnView<uint64_t>::Own(std::move(offsets));
    docm.tag_blob_ = BlobView::Own(std::move(blob));
  }

  // Concatenate texts into a blob with n+1 cumulative offsets.
  {
    std::vector<uint64_t> offsets;
    offsets.reserve(n + 1);
    offsets.push_back(0);
    std::string blob;
    for (const std::string& text : texts) {
      blob += text;
      offsets.push_back(blob.size());
    }
    docm.text_offsets_ = ColumnView<uint64_t>::Own(std::move(offsets));
    docm.text_blob_ = BlobView::Own(std::move(blob));
  }

  docm.BuildIndexes(parents);
  docm.parent_ = ColumnView<NodeId>::Own(std::move(parents));
  return docm;
}

StatusOr<Document> Document::FromSnapshotColumns(
    const SnapshotDocumentColumns& c) {
  const size_t n = c.node_count;
  if (n == 0) {
    return Status::ParseError("snapshot document with zero nodes");
  }
  if (c.parents == nullptr || c.depths == nullptr ||
      c.subtree_sizes == nullptr || c.child_offsets == nullptr ||
      c.child_ids == nullptr || c.tag_ids == nullptr ||
      c.tag_offsets == nullptr || c.text_offsets == nullptr) {
    return Status::InvalidArgument("snapshot document column missing");
  }

  if (c.validate) {
    {
      Status preorder = ValidatePreorderParents(c.parents, n);
      if (!preorder.ok()) {
        return Status::ParseError("snapshot document parents invalid: " +
                                  preorder.message());
      }
    }
    // Depths follow parents; subtree sizes match a bottom-up recount.
    if (c.depths[0] != 0) {
      return Status::ParseError("snapshot root depth is not 0");
    }
    for (size_t i = 1; i < n; ++i) {
      if (c.depths[i] != c.depths[c.parents[i]] + 1) {
        return Status::ParseError(
            StrFormat("snapshot depth of node %zu is inconsistent", i));
      }
    }
    {
      std::vector<uint32_t> sizes(n, 1);
      for (size_t i = n; i-- > 1;) sizes[c.parents[i]] += sizes[i];
      for (size_t i = 0; i < n; ++i) {
        if (c.subtree_sizes[i] != sizes[i]) {
          return Status::ParseError(
              StrFormat("snapshot subtree size of node %zu is inconsistent",
                        i));
        }
      }
    }
    // Children CSR: monotone offsets covering exactly n-1 child slots, each
    // list sorted and agreeing with the parent column. Together with the
    // pre-order check above this pins the CSR to the unique children lists.
    const uint64_t child_base = c.child_offsets[0];
    for (size_t i = 0; i < n; ++i) {
      if (c.child_offsets[i + 1] < c.child_offsets[i]) {
        return Status::ParseError("snapshot child offsets not monotone");
      }
    }
    if (c.child_offsets[n] - child_base != n - 1) {
      return Status::ParseError("snapshot child count != node count - 1");
    }
    // The offsets are data: anchor them to the child-id column's extent
    // before dereferencing, or a crafted file could shift the whole slice
    // past the mapped section. Monotonicity then bounds every k below.
    if (c.child_offsets[n] > c.child_id_count) {
      return Status::ParseError(
          "snapshot child offsets exceed the child-id column");
    }
    for (size_t i = 0; i < n; ++i) {
      NodeId previous = 0;
      for (uint32_t k = c.child_offsets[i]; k < c.child_offsets[i + 1]; ++k) {
        NodeId child = c.child_ids[k];
        if (child >= n || c.parents[child] != i) {
          return Status::ParseError(
              StrFormat("snapshot child list of node %zu names a non-child",
                        i));
        }
        if (k > c.child_offsets[i] && child <= previous) {
          return Status::ParseError(
              StrFormat("snapshot child list of node %zu is not sorted", i));
        }
        previous = child;
      }
    }
    // Tag ids stay inside the dictionary; dictionary offsets stay inside
    // the blob.
    for (size_t t = 0; t < c.tag_dict_count; ++t) {
      if (c.tag_offsets[t + 1] < c.tag_offsets[t]) {
        return Status::ParseError("snapshot tag dictionary not monotone");
      }
    }
    if (c.tag_dict_count == 0 ||
        c.tag_offsets[c.tag_dict_count] > c.tag_blob.size()) {
      return Status::ParseError("snapshot tag dictionary exceeds its blob");
    }
    for (size_t i = 0; i < n; ++i) {
      if (c.tag_ids[i] >= c.tag_dict_count) {
        return Status::ParseError(
            StrFormat("snapshot tag id of node %zu out of range", i));
      }
    }
    // Text offsets are monotone and inside the blob.
    for (size_t i = 0; i < n; ++i) {
      if (c.text_offsets[i + 1] < c.text_offsets[i]) {
        return Status::ParseError("snapshot text offsets not monotone");
      }
    }
    if (c.text_offsets[n] > c.text_blob.size()) {
      return Status::ParseError("snapshot text offsets exceed the blob");
    }
  }

  Document docm;
  docm.snapshot_backed_ = true;
  docm.parent_ = ColumnView<NodeId>::View(c.parents, n);
  docm.depth_ = ColumnView<uint32_t>::View(c.depths, n);
  docm.subtree_size_ = ColumnView<uint32_t>::View(c.subtree_sizes, n);
  docm.child_offsets_ = ColumnView<uint32_t>::View(c.child_offsets, n + 1);
  // The ids column is indexed through the (possibly global) offsets, so keep
  // the global base; its logical extent for this document is [offsets[0],
  // offsets[n]).
  docm.child_ids_ =
      ColumnView<NodeId>::View(c.child_ids, c.child_offsets[n]);
  docm.tag_ids_ = ColumnView<uint32_t>::View(c.tag_ids, n);
  docm.tag_offsets_ =
      ColumnView<uint64_t>::View(c.tag_offsets, c.tag_dict_count + 1);
  docm.tag_blob_ = BlobView::View(c.tag_blob);
  docm.text_offsets_ = ColumnView<uint64_t>::View(c.text_offsets, n + 1);
  docm.text_blob_ = BlobView::View(c.text_blob);
  uint32_t height = 0;
  for (size_t i = 0; i < n; ++i) height = std::max(height, c.depths[i]);
  docm.height_ = height;
  return docm;
}

void Document::BuildIndexes(const std::vector<NodeId>& parents) {
  const size_t n = parents.size();
  std::vector<uint32_t> depth(n, 0);
  std::vector<uint32_t> subtree(n, 1);
  std::vector<uint32_t> child_offsets(n + 1, 0);
  std::vector<NodeId> child_ids(n > 0 ? n - 1 : 0);
  height_ = 0;
  for (size_t i = 1; i < n; ++i) {
    depth[i] = depth[parents[i]] + 1;
    height_ = std::max(height_, depth[i]);
    ++child_offsets[parents[i] + 1];
  }
  for (size_t i = 0; i < n; ++i) child_offsets[i + 1] += child_offsets[i];
  {
    std::vector<uint32_t> cursor(child_offsets.begin(),
                                 child_offsets.end() - 1);
    for (size_t i = 1; i < n; ++i) {
      child_ids[cursor[parents[i]]++] = static_cast<NodeId>(i);
    }
  }
  for (size_t i = n; i-- > 1;) subtree[parents[i]] += subtree[i];

  // Euler tour (iterative DFS): 2n-1 entries.
  euler_.clear();
  euler_.reserve(2 * n);
  first_visit_.assign(n, 0);
  std::vector<std::pair<NodeId, size_t>> stack;  // (node, next child index)
  stack.emplace_back(0, 0);
  first_visit_[0] = 0;
  euler_.push_back(0);
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    size_t child_count = child_offsets[node + 1] - child_offsets[node];
    if (next_child < child_count) {
      NodeId child = child_ids[child_offsets[node] + next_child++];
      first_visit_[child] = static_cast<uint32_t>(euler_.size());
      euler_.push_back(child);
      stack.emplace_back(child, 0);
    } else {
      stack.pop_back();
      if (!stack.empty()) euler_.push_back(stack.back().first);
    }
  }

  // Sparse table of argmin-by-depth over the Euler sequence.
  const size_t m = euler_.size();
  log2_.assign(m + 1, 0);
  for (size_t i = 2; i <= m; ++i) log2_[i] = log2_[i / 2] + 1;
  size_t levels = static_cast<size_t>(log2_[m]) + 1;
  sparse_.assign(levels, std::vector<uint32_t>(m));
  for (size_t i = 0; i < m; ++i) sparse_[0][i] = static_cast<uint32_t>(i);
  for (size_t level = 1; level < levels; ++level) {
    size_t half = size_t{1} << (level - 1);
    for (size_t i = 0; i + (size_t{1} << level) <= m; ++i) {
      uint32_t left = sparse_[level - 1][i];
      uint32_t right = sparse_[level - 1][i + half];
      sparse_[level][i] =
          depth[euler_[left]] <= depth[euler_[right]] ? left : right;
    }
  }

  depth_ = ColumnView<uint32_t>::Own(std::move(depth));
  subtree_size_ = ColumnView<uint32_t>::Own(std::move(subtree));
  child_offsets_ = ColumnView<uint32_t>::Own(std::move(child_offsets));
  child_ids_ = ColumnView<NodeId>::Own(std::move(child_ids));
}

NodeId Document::Lca(NodeId a, NodeId b) const {
  XFRAG_DCHECK(a < size() && b < size());
  if (a == b) return a;
  if (sparse_.empty()) {
    // Snapshot-backed: climb from `a` until its subtree interval covers `b`.
    // The first such ancestor-or-self is the LCA; document trees are
    // shallow, so this is effectively constant time without the Euler
    // tables' O(n log n) snapshot footprint.
    NodeId up = a;
    while (!IsAncestorOrSelf(up, b)) up = parent_[up];
    return up;
  }
  uint32_t i = first_visit_[a];
  uint32_t j = first_visit_[b];
  if (i > j) std::swap(i, j);
  uint32_t level = log2_[j - i + 1];
  uint32_t left = sparse_[level][i];
  uint32_t right = sparse_[level][j - (uint32_t{1} << level) + 1];
  uint32_t arg = depth_[euler_[left]] <= depth_[euler_[right]] ? left : right;
  return euler_[arg];
}

NodeId Document::Lca(const std::vector<NodeId>& nodes) const {
  XFRAG_CHECK(!nodes.empty());
  NodeId acc = nodes[0];
  for (size_t i = 1; i < nodes.size(); ++i) acc = Lca(acc, nodes[i]);
  return acc;
}

std::vector<NodeId> Document::PathToAncestor(NodeId a, NodeId b) const {
  XFRAG_DCHECK(IsAncestorOrSelf(b, a));
  std::vector<NodeId> path;
  NodeId cur = a;
  while (true) {
    path.push_back(cur);
    if (cur == b) break;
    cur = parent_[cur];
  }
  return path;
}

uint32_t Document::Distance(NodeId a, NodeId b) const {
  NodeId l = Lca(a, b);
  return depth_[a] + depth_[b] - 2 * depth_[l];
}

}  // namespace xfrag::doc
