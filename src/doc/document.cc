#include "doc/document.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"

namespace xfrag::doc {

namespace {

// Collects one document node per DOM element, numbering by pre-order.
void FlattenElement(const xml::XmlElement& element, NodeId parent,
                    std::vector<NodeId>* parents,
                    std::vector<std::string>* tags,
                    std::vector<std::string>* texts) {
  NodeId id = static_cast<NodeId>(parents->size());
  parents->push_back(parent);
  tags->push_back(element.tag());
  std::string text = element.DirectText();
  for (const auto& attr : element.attributes()) {
    if (!text.empty()) text.push_back(' ');
    text += attr.value;
  }
  texts->push_back(std::move(text));
  for (const auto& child : element.children()) {
    if (child->IsElement()) {
      FlattenElement(child->AsElement(), id, parents, tags, texts);
    }
  }
}

}  // namespace

StatusOr<Document> Document::FromDom(const xml::XmlDocument& dom) {
  if (!dom.has_root()) {
    return Status::InvalidArgument("document has no root element");
  }
  std::vector<NodeId> parents;
  std::vector<std::string> tags;
  std::vector<std::string> texts;
  FlattenElement(dom.root(), kNoNode, &parents, &tags, &texts);
  return FromParents(std::move(parents), std::move(tags), std::move(texts));
}

StatusOr<Document> Document::FromParents(std::vector<NodeId> parents,
                                         std::vector<std::string> tags,
                                         std::vector<std::string> texts) {
  if (parents.empty()) {
    return Status::InvalidArgument("document must have at least one node");
  }
  if (parents.size() != tags.size() || parents.size() != texts.size()) {
    return Status::InvalidArgument("parents/tags/texts sizes differ");
  }
  if (parents[0] != kNoNode) {
    return Status::InvalidArgument("node 0 must be the root (parent kNoNode)");
  }
  // Pre-order validity: node i's parent must lie on the current rightmost
  // path (otherwise subtrees would not be contiguous id ranges, breaking
  // the interval-based ancestor tests).
  {
    std::vector<NodeId> path{0};
    for (size_t i = 1; i < parents.size(); ++i) {
      if (parents[i] >= i) {
        return Status::InvalidArgument(StrFormat(
            "parent of node %zu is %u; pre-order requires parent < node", i,
            parents[i]));
      }
      while (!path.empty() && path.back() != parents[i]) path.pop_back();
      if (path.empty()) {
        return Status::InvalidArgument(StrFormat(
            "node %zu has parent %u, which is not on the rightmost path; "
            "the numbering is not a depth-first pre-order",
            i, parents[i]));
      }
      path.push_back(static_cast<NodeId>(i));
    }
  }
  Document docm;
  docm.parent_ = std::move(parents);
  docm.tag_ = std::move(tags);
  docm.text_ = std::move(texts);
  docm.BuildIndexes();
  return docm;
}

void Document::BuildIndexes() {
  const size_t n = parent_.size();
  children_.assign(n, {});
  depth_.assign(n, 0);
  subtree_size_.assign(n, 1);
  height_ = 0;
  for (NodeId i = 1; i < n; ++i) {
    children_[parent_[i]].push_back(i);
    depth_[i] = depth_[parent_[i]] + 1;
    height_ = std::max(height_, depth_[i]);
  }
  for (NodeId i = static_cast<NodeId>(n); i-- > 1;) {
    subtree_size_[parent_[i]] += subtree_size_[i];
  }

  // Euler tour (iterative DFS): 2n-1 entries.
  euler_.clear();
  euler_.reserve(2 * n);
  first_visit_.assign(n, 0);
  std::vector<std::pair<NodeId, size_t>> stack;  // (node, next child index)
  stack.emplace_back(0, 0);
  first_visit_[0] = 0;
  euler_.push_back(0);
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    if (next_child < children_[node].size()) {
      NodeId child = children_[node][next_child++];
      first_visit_[child] = static_cast<uint32_t>(euler_.size());
      euler_.push_back(child);
      stack.emplace_back(child, 0);
    } else {
      stack.pop_back();
      if (!stack.empty()) euler_.push_back(stack.back().first);
    }
  }

  // Sparse table of argmin-by-depth over the Euler sequence.
  const size_t m = euler_.size();
  log2_.assign(m + 1, 0);
  for (size_t i = 2; i <= m; ++i) log2_[i] = log2_[i / 2] + 1;
  size_t levels = static_cast<size_t>(log2_[m]) + 1;
  sparse_.assign(levels, std::vector<uint32_t>(m));
  for (size_t i = 0; i < m; ++i) sparse_[0][i] = static_cast<uint32_t>(i);
  for (size_t level = 1; level < levels; ++level) {
    size_t half = size_t{1} << (level - 1);
    for (size_t i = 0; i + (size_t{1} << level) <= m; ++i) {
      uint32_t left = sparse_[level - 1][i];
      uint32_t right = sparse_[level - 1][i + half];
      sparse_[level][i] =
          depth_[euler_[left]] <= depth_[euler_[right]] ? left : right;
    }
  }
}

NodeId Document::Lca(NodeId a, NodeId b) const {
  XFRAG_DCHECK(a < size() && b < size());
  if (a == b) return a;
  uint32_t i = first_visit_[a];
  uint32_t j = first_visit_[b];
  if (i > j) std::swap(i, j);
  uint32_t level = log2_[j - i + 1];
  uint32_t left = sparse_[level][i];
  uint32_t right = sparse_[level][j - (uint32_t{1} << level) + 1];
  uint32_t arg = depth_[euler_[left]] <= depth_[euler_[right]] ? left : right;
  return euler_[arg];
}

NodeId Document::Lca(const std::vector<NodeId>& nodes) const {
  XFRAG_CHECK(!nodes.empty());
  NodeId acc = nodes[0];
  for (size_t i = 1; i < nodes.size(); ++i) acc = Lca(acc, nodes[i]);
  return acc;
}

std::vector<NodeId> Document::PathToAncestor(NodeId a, NodeId b) const {
  XFRAG_DCHECK(IsAncestorOrSelf(b, a));
  std::vector<NodeId> path;
  NodeId cur = a;
  while (true) {
    path.push_back(cur);
    if (cur == b) break;
    cur = parent_[cur];
  }
  return path;
}

uint32_t Document::Distance(NodeId a, NodeId b) const {
  NodeId l = Lca(a, b);
  return depth_[a] + depth_[b] - 2 * depth_[l];
}

}  // namespace xfrag::doc
