// The paper's Definition 1: an XML document as a rooted ordered tree whose
// nodes carry representative keywords. This module flattens a parsed DOM into
// immutable pre-order arrays and provides the structural primitives the
// fragment algebra needs: parent/depth lookups, ancestor tests in O(1) via
// pre/post intervals, O(1) LCA via an Euler tour + sparse table, and
// root-to-node path extraction.
//
// Storage model: every per-node attribute is a flat column (doc/column.h) —
// parents, depths, subtree sizes, a CSR children list, dictionary-encoded
// tags, and a text blob with per-node offsets. Columns either own their data
// (FromDom/FromParents: the parse path) or borrow it zero-copy from an
// mmap-ed immutable snapshot (FromSnapshotColumns — see docs/STORAGE.md), so
// a multi-GB corpus opens without rebuilding anything; the columns double as
// the precomputed inputs of fragment summary headers (size/depth/interval
// bounds), which is why snapshots persist the derived columns too.
//
// Snapshot-backed documents answer Lca by climbing parents from the deeper
// node (O(depth), and document trees are shallow) instead of carrying the
// Euler/sparse tables, whose O(n log n) footprint would dominate the
// snapshot; both implementations return the identical node.

#ifndef XFRAG_DOC_DOCUMENT_H_
#define XFRAG_DOC_DOCUMENT_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "doc/column.h"
#include "xml/dom.h"

namespace xfrag::doc {

/// Identifier of a document node; equals the node's pre-order rank, so the
/// paper's `n17` is NodeId 17 in the reconstructed Figure-1 document.
using NodeId = uint32_t;

/// Sentinel for "no node" (the root's parent).
inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

/// \brief The raw columns of one document inside an immutable snapshot —
/// the zero-copy construction path (storage::SnapshotReader produces these).
///
/// All pointers borrow from the snapshot mapping and must stay valid for the
/// document's lifetime. `child_offsets`/`text_offsets` may be slices of
/// collection-global cumulative arrays: `child_ids` and `text_blob` are then
/// the *global* base so that `child_ids + child_offsets[n]` and
/// `text_blob[text_offsets[n]]` land inside this document's range. The tag
/// dictionary is collection-global.
struct SnapshotDocumentColumns {
  size_t node_count = 0;
  const NodeId* parents = nullptr;         // [node_count], local ids
  const uint32_t* depths = nullptr;        // [node_count]
  const uint32_t* subtree_sizes = nullptr; // [node_count]
  const uint32_t* child_offsets = nullptr; // [node_count + 1], cumulative
  const NodeId* child_ids = nullptr;       // base of the child-id column
  /// Entries in the child-id column. `child_offsets` indexes into it, so
  /// validation must know its extent: offsets are data, and a crafted file
  /// could otherwise point them arbitrarily far past the mapped section.
  size_t child_id_count = 0;
  const uint32_t* tag_ids = nullptr;       // [node_count], into the dict
  const uint64_t* tag_offsets = nullptr;   // [tag_dict_count + 1]
  size_t tag_dict_count = 0;
  std::string_view tag_blob;
  const uint64_t* text_offsets = nullptr;  // [node_count + 1], cumulative
  std::string_view text_blob;
  /// Validate every structural invariant (pre-order parents, CSR/depth/
  /// subtree consistency, offset monotonicity) before trusting the columns.
  /// Leave on unless the snapshot comes from a trusted local build; off
  /// skips the O(n) scans for true O(1) opens.
  bool validate = true;
};

/// \brief Immutable tree model of one XML document.
///
/// Only element nodes become document nodes (the paper's logical components:
/// <section>, <par>, ...). The text beneath an element — direct text children
/// plus attribute values — forms that node's textual content, from which
/// `keywords(n)` is derived by the text module's indexer.
class Document {
 public:
  /// \brief Builds a Document from a parsed DOM.
  ///
  /// Nodes are numbered by depth-first pre-order, preserving document
  /// topology as Definition 1 requires.
  static StatusOr<Document> FromDom(const xml::XmlDocument& dom);

  /// \brief Builds a Document directly from parallel arrays (for tests and
  /// synthetic corpora). `parents[i]` must be kNoNode for i == 0 and < i
  /// otherwise (pre-order consistency).
  static StatusOr<Document> FromParents(std::vector<NodeId> parents,
                                        std::vector<std::string> tags,
                                        std::vector<std::string> texts);

  /// \brief Builds a zero-copy Document over snapshot columns. With
  /// `columns.validate` set (default), every structural invariant is checked
  /// so no subsequent accessor can read out of bounds even on an adversarial
  /// snapshot; corrupt columns yield ParseError, never UB.
  static StatusOr<Document> FromSnapshotColumns(
      const SnapshotDocumentColumns& columns);

  /// Number of nodes.
  size_t size() const { return parent_.size(); }

  /// The root node id (always 0).
  NodeId root() const { return 0; }

  /// Parent of `n`; kNoNode for the root.
  NodeId parent(NodeId n) const { return parent_[n]; }

  /// Depth of `n`; the root has depth 0.
  uint32_t depth(NodeId n) const { return depth_[n]; }

  /// Tag name of `n` (a view into the tag dictionary).
  std::string_view tag(NodeId n) const {
    uint32_t id = tag_ids_[n];
    return tag_blob_.Slice(tag_offsets_[id], tag_offsets_[id + 1]);
  }

  /// Direct textual content of `n` (own text + attribute values, not
  /// descendants' text). A view into the text blob.
  std::string_view text(NodeId n) const {
    return text_blob_.Slice(text_offsets_[n], text_offsets_[n + 1]);
  }

  /// Ids of `n`'s children, in document order.
  std::span<const NodeId> children(NodeId n) const {
    uint32_t begin = child_offsets_[n];
    return {child_ids_.data() + begin, child_offsets_[n + 1] - begin};
  }

  /// Number of nodes in the subtree rooted at `n` (including `n`).
  uint32_t subtree_size(NodeId n) const { return subtree_size_[n]; }

  /// True iff `a` is an ancestor of `d` or a == d. O(1).
  bool IsAncestorOrSelf(NodeId a, NodeId d) const {
    return a <= d && d < a + subtree_size_[a];
  }

  /// True iff `a` is a strict ancestor of `d`. O(1).
  bool IsAncestor(NodeId a, NodeId d) const {
    return a != d && IsAncestorOrSelf(a, d);
  }

  /// Lowest common ancestor of `a` and `b`. O(1) for built documents
  /// (Euler + sparse table); O(depth) parent climb for snapshot-backed ones.
  NodeId Lca(NodeId a, NodeId b) const;

  /// Lowest common ancestor of all nodes in `nodes` (must be non-empty).
  NodeId Lca(const std::vector<NodeId>& nodes) const;

  /// Nodes on the path from `a` up to `b` inclusive; `b` must be an ancestor
  /// of (or equal to) `a`. Returned bottom-up (a first).
  std::vector<NodeId> PathToAncestor(NodeId a, NodeId b) const;

  /// Distance (number of edges) between `a` and `b`.
  uint32_t Distance(NodeId a, NodeId b) const;

  /// Height of the whole tree (max depth).
  uint32_t height() const { return height_; }

  /// Number of distinct tags (the tag dictionary size).
  size_t tag_dictionary_size() const { return tag_offsets_.size() - 1; }

  /// True when the columns borrow from a snapshot mapping (zero-copy mode).
  bool snapshot_backed() const { return snapshot_backed_; }

 private:
  Document() = default;

  // Builds derived structures for owned columns (children CSR, subtree
  // sizes, Euler/LCA) from parents/depths.
  void BuildIndexes(const std::vector<NodeId>& parents);

  ColumnView<NodeId> parent_;
  ColumnView<uint32_t> depth_;
  ColumnView<uint32_t> subtree_size_;
  ColumnView<uint32_t> child_offsets_;  // size()+1 cumulative positions.
  ColumnView<NodeId> child_ids_;        // Base of the child-id array.
  ColumnView<uint32_t> tag_ids_;        // Per-node dictionary ids.
  ColumnView<uint64_t> tag_offsets_;    // Dictionary entry boundaries.
  BlobView tag_blob_;
  ColumnView<uint64_t> text_offsets_;   // size()+1 cumulative byte offsets.
  BlobView text_blob_;
  uint32_t height_ = 0;
  bool snapshot_backed_ = false;

  // Euler tour + sparse table for O(1) LCA (owned documents only; snapshot
  // documents climb parents instead).
  std::vector<uint32_t> euler_;        // Node ids in Euler-tour order.
  std::vector<uint32_t> first_visit_;  // First index of node in euler_.
  std::vector<std::vector<uint32_t>> sparse_;  // Min-depth index table.
  std::vector<uint32_t> log2_;                 // Floor log2 lookup.
};

}  // namespace xfrag::doc

#endif  // XFRAG_DOC_DOCUMENT_H_
