// The paper's Definition 1: an XML document as a rooted ordered tree whose
// nodes carry representative keywords. This module flattens a parsed DOM into
// immutable pre-order arrays and provides the structural primitives the
// fragment algebra needs: parent/depth lookups, ancestor tests in O(1) via
// pre/post intervals, O(1) LCA via an Euler tour + sparse table, and
// root-to-node path extraction.

#ifndef XFRAG_DOC_DOCUMENT_H_
#define XFRAG_DOC_DOCUMENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "xml/dom.h"

namespace xfrag::doc {

/// Identifier of a document node; equals the node's pre-order rank, so the
/// paper's `n17` is NodeId 17 in the reconstructed Figure-1 document.
using NodeId = uint32_t;

/// Sentinel for "no node" (the root's parent).
inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

/// \brief Immutable tree model of one XML document.
///
/// Only element nodes become document nodes (the paper's logical components:
/// <section>, <par>, ...). The text beneath an element — direct text children
/// plus attribute values — forms that node's textual content, from which
/// `keywords(n)` is derived by the text module's indexer.
class Document {
 public:
  /// \brief Builds a Document from a parsed DOM.
  ///
  /// Nodes are numbered by depth-first pre-order, preserving document
  /// topology as Definition 1 requires.
  static StatusOr<Document> FromDom(const xml::XmlDocument& dom);

  /// \brief Builds a Document directly from parallel arrays (for tests and
  /// synthetic corpora). `parents[i]` must be kNoNode for i == 0 and < i
  /// otherwise (pre-order consistency).
  static StatusOr<Document> FromParents(std::vector<NodeId> parents,
                                        std::vector<std::string> tags,
                                        std::vector<std::string> texts);

  /// Number of nodes.
  size_t size() const { return parent_.size(); }

  /// The root node id (always 0).
  NodeId root() const { return 0; }

  /// Parent of `n`; kNoNode for the root.
  NodeId parent(NodeId n) const { return parent_[n]; }

  /// Depth of `n`; the root has depth 0.
  uint32_t depth(NodeId n) const { return depth_[n]; }

  /// Tag name of `n`.
  const std::string& tag(NodeId n) const { return tag_[n]; }

  /// Direct textual content of `n` (own text + attribute values, not
  /// descendants' text).
  const std::string& text(NodeId n) const { return text_[n]; }

  /// Ids of `n`'s children, in document order.
  const std::vector<NodeId>& children(NodeId n) const { return children_[n]; }

  /// Number of nodes in the subtree rooted at `n` (including `n`).
  uint32_t subtree_size(NodeId n) const { return subtree_size_[n]; }

  /// True iff `a` is an ancestor of `d` or a == d. O(1).
  bool IsAncestorOrSelf(NodeId a, NodeId d) const {
    return a <= d && d < a + subtree_size_[a];
  }

  /// True iff `a` is a strict ancestor of `d`. O(1).
  bool IsAncestor(NodeId a, NodeId d) const {
    return a != d && IsAncestorOrSelf(a, d);
  }

  /// Lowest common ancestor of `a` and `b`. O(1).
  NodeId Lca(NodeId a, NodeId b) const;

  /// Lowest common ancestor of all nodes in `nodes` (must be non-empty).
  NodeId Lca(const std::vector<NodeId>& nodes) const;

  /// Nodes on the path from `a` up to `b` inclusive; `b` must be an ancestor
  /// of (or equal to) `a`. Returned bottom-up (a first).
  std::vector<NodeId> PathToAncestor(NodeId a, NodeId b) const;

  /// Distance (number of edges) between `a` and `b`.
  uint32_t Distance(NodeId a, NodeId b) const;

  /// Height of the whole tree (max depth).
  uint32_t height() const { return height_; }

 private:
  Document() = default;

  // Builds derived structures (children lists, subtree sizes, Euler/LCA).
  void BuildIndexes();

  std::vector<NodeId> parent_;
  std::vector<uint32_t> depth_;
  std::vector<std::string> tag_;
  std::vector<std::string> text_;
  std::vector<std::vector<NodeId>> children_;
  std::vector<uint32_t> subtree_size_;
  uint32_t height_ = 0;

  // Euler tour + sparse table for O(1) LCA.
  std::vector<uint32_t> euler_;        // Node ids in Euler-tour order.
  std::vector<uint32_t> first_visit_;  // First index of node in euler_.
  std::vector<std::vector<uint32_t>> sparse_;  // Min-depth index table.
  std::vector<uint32_t> log2_;                 // Floor log2 lookup.
};

}  // namespace xfrag::doc

#endif  // XFRAG_DOC_DOCUMENT_H_
