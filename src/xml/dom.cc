#include "xml/dom.h"

#include "common/logging.h"

namespace xfrag::xml {

const XmlElement& XmlNode::AsElement() const {
  XFRAG_CHECK(IsElement());
  return static_cast<const XmlElement&>(*this);
}

XmlElement& XmlNode::AsElement() {
  XFRAG_CHECK(IsElement());
  return static_cast<XmlElement&>(*this);
}

const std::string* XmlElement::FindAttribute(std::string_view name) const {
  for (const auto& attr : attributes_) {
    if (attr.name == name) return &attr.value;
  }
  return nullptr;
}

XmlElement* XmlElement::AddElement(std::string tag) {
  auto child = std::make_unique<XmlElement>(std::move(tag));
  XmlElement* raw = child.get();
  children_.push_back(std::move(child));
  return raw;
}

void XmlElement::AddText(std::string text) {
  children_.push_back(std::make_unique<XmlCharacterData>(XmlNodeKind::kText,
                                                         std::move(text)));
}

std::vector<const XmlElement*> XmlElement::ChildElements() const {
  std::vector<const XmlElement*> out;
  for (const auto& child : children_) {
    if (child->IsElement()) out.push_back(&child->AsElement());
  }
  return out;
}

const XmlElement* XmlElement::FindChild(std::string_view tag) const {
  for (const auto& child : children_) {
    if (child->IsElement() && child->AsElement().tag() == tag) {
      return &child->AsElement();
    }
  }
  return nullptr;
}

std::string XmlElement::DirectText() const {
  std::string out;
  for (const auto& child : children_) {
    if (child->IsTextual()) {
      out += static_cast<const XmlCharacterData&>(*child).data();
    }
  }
  return out;
}

std::string XmlElement::DeepText() const {
  std::string out;
  for (const auto& child : children_) {
    if (child->IsTextual()) {
      out += static_cast<const XmlCharacterData&>(*child).data();
    } else if (child->IsElement()) {
      out += child->AsElement().DeepText();
    }
  }
  return out;
}

size_t XmlElement::SubtreeElementCount() const {
  size_t count = 1;
  for (const auto& child : children_) {
    if (child->IsElement()) count += child->AsElement().SubtreeElementCount();
  }
  return count;
}

}  // namespace xfrag::xml
