// A minimal in-memory DOM for parsed XML. Nodes are owned by their parent
// through unique_ptr; the tree shape is immutable from the outside except
// through XmlElement's builder-style mutators, which the corpus generator
// uses to synthesize documents.

#ifndef XFRAG_XML_DOM_H_
#define XFRAG_XML_DOM_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace xfrag::xml {

/// Kind of a DOM node.
enum class XmlNodeKind {
  kElement,
  kText,
  kCData,
  kComment,
  kProcessingInstruction,
};

class XmlElement;

/// \brief Base class of all DOM nodes.
class XmlNode {
 public:
  virtual ~XmlNode() = default;

  /// The node kind.
  virtual XmlNodeKind kind() const = 0;

  /// True iff this node is an element.
  bool IsElement() const { return kind() == XmlNodeKind::kElement; }
  /// True iff this node is a text or CDATA node.
  bool IsTextual() const {
    return kind() == XmlNodeKind::kText || kind() == XmlNodeKind::kCData;
  }

  /// Downcasts to XmlElement; requires IsElement().
  const XmlElement& AsElement() const;
  XmlElement& AsElement();
};

/// \brief A text, CDATA, comment, or processing-instruction node.
class XmlCharacterData : public XmlNode {
 public:
  XmlCharacterData(XmlNodeKind kind, std::string data)
      : kind_(kind), data_(std::move(data)) {}

  XmlNodeKind kind() const override { return kind_; }

  /// The (entity-decoded) character content.
  const std::string& data() const { return data_; }

  /// For processing instructions, the target name ("xml-stylesheet" in
  /// `<?xml-stylesheet ...?>`); empty otherwise.
  const std::string& pi_target() const { return pi_target_; }
  void set_pi_target(std::string target) { pi_target_ = std::move(target); }

 private:
  XmlNodeKind kind_;
  std::string data_;
  std::string pi_target_;
};

/// \brief A single name="value" attribute.
struct XmlAttribute {
  std::string name;
  std::string value;
};

/// \brief An element node with a tag, attributes, and ordered children.
class XmlElement : public XmlNode {
 public:
  explicit XmlElement(std::string tag) : tag_(std::move(tag)) {}

  XmlNodeKind kind() const override { return XmlNodeKind::kElement; }

  /// The element's tag name.
  const std::string& tag() const { return tag_; }

  /// All attributes, in document order.
  const std::vector<XmlAttribute>& attributes() const { return attributes_; }

  /// Returns the value of attribute `name`, or nullptr when absent.
  const std::string* FindAttribute(std::string_view name) const;

  /// Appends an attribute (no duplicate checking; parser enforces that).
  void AddAttribute(std::string name, std::string value) {
    attributes_.push_back({std::move(name), std::move(value)});
  }

  /// Ordered child nodes.
  const std::vector<std::unique_ptr<XmlNode>>& children() const {
    return children_;
  }

  /// Appends a child node and returns a reference to it.
  XmlNode* AddChild(std::unique_ptr<XmlNode> child) {
    children_.push_back(std::move(child));
    return children_.back().get();
  }

  /// Convenience: appends and returns a child element with tag `tag`.
  XmlElement* AddElement(std::string tag);

  /// Convenience: appends a text child.
  void AddText(std::string text);

  /// Child elements only (skipping text/comments), in order.
  std::vector<const XmlElement*> ChildElements() const;

  /// First child element with tag `tag`, or nullptr.
  const XmlElement* FindChild(std::string_view tag) const;

  /// Concatenation of all directly-contained text/CDATA children.
  std::string DirectText() const;

  /// Concatenation of all text in this element's entire subtree.
  std::string DeepText() const;

  /// Number of element nodes in this subtree, including this one.
  size_t SubtreeElementCount() const;

 private:
  std::string tag_;
  std::vector<XmlAttribute> attributes_;
  std::vector<std::unique_ptr<XmlNode>> children_;
};

/// \brief A parsed XML document: prolog metadata plus a root element.
class XmlDocument {
 public:
  XmlDocument() = default;

  /// The root element; never null for a successfully parsed document.
  const XmlElement& root() const { return *root_; }
  XmlElement& root() { return *root_; }
  bool has_root() const { return root_ != nullptr; }

  /// Installs the root element.
  void set_root(std::unique_ptr<XmlElement> root) { root_ = std::move(root); }

  /// The declared XML version (default "1.0").
  const std::string& version() const { return version_; }
  void set_version(std::string v) { version_ = std::move(v); }

  /// The declared encoding; empty when not declared.
  const std::string& encoding() const { return encoding_; }
  void set_encoding(std::string e) { encoding_ = std::move(e); }

 private:
  std::unique_ptr<XmlElement> root_;
  std::string version_ = "1.0";
  std::string encoding_;
};

}  // namespace xfrag::xml

#endif  // XFRAG_XML_DOM_H_
