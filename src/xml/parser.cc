#include "xml/parser.h"

#include <cctype>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/strings.h"

namespace xfrag::xml {

namespace {

// Appends the UTF-8 encoding of `cp` to `out`. Returns false for invalid
// code points (surrogates, out of range).
bool AppendUtf8(uint32_t cp, std::string* out) {
  if (cp > 0x10FFFF || (cp >= 0xD800 && cp <= 0xDFFF)) return false;
  if (cp < 0x80) {
    out->push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
  return true;
}

bool IsNameStartChar(unsigned char c) {
  return std::isalpha(c) || c == '_' || c == ':' || c >= 0x80;
}

bool IsNameChar(unsigned char c) {
  return IsNameStartChar(c) || std::isdigit(c) || c == '-' || c == '.';
}

// Recursive-descent parser with explicit position tracking.
class Parser {
 public:
  Parser(std::string_view input, const ParseOptions& options)
      : input_(input), options_(options) {}

  StatusOr<XmlDocument> ParseDocument() {
    XmlDocument doc;
    XFRAG_RETURN_NOT_OK(ParseProlog(&doc));
    SkipMisc();
    if (AtEnd() || Peek() != '<') {
      return Error("expected root element");
    }
    auto root = ParseElement(0);
    if (!root.ok()) return root.status();
    doc.set_root(std::move(root).value());
    SkipMisc();
    if (!AtEnd()) {
      return Error("unexpected content after root element");
    }
    return doc;
  }

 private:
  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  char PeekAt(size_t offset) const {
    size_t p = pos_ + offset;
    return p < input_.size() ? input_[p] : '\0';
  }

  void Advance() {
    if (input_[pos_] == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    ++pos_;
  }

  void AdvanceBy(size_t n) {
    for (size_t i = 0; i < n && !AtEnd(); ++i) Advance();
  }

  bool ConsumePrefix(std::string_view prefix) {
    if (input_.substr(pos_, prefix.size()) != prefix) return false;
    AdvanceBy(prefix.size());
    return true;
  }

  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      Advance();
    }
  }

  Status Error(std::string message) const {
    return Status::ParseError(StrFormat("%s at %zu:%zu", message.c_str(),
                                        line_, column_));
  }

  // Skips comments, PIs and whitespace outside the root element.
  void SkipMisc() {
    while (true) {
      SkipWhitespace();
      if (ConsumePrefixAtComment()) continue;
      if (input_.substr(pos_, 2) == "<?") {
        // Processing instruction outside root: skip to "?>".
        size_t end = input_.find("?>", pos_);
        if (end == std::string_view::npos) {
          AdvanceBy(input_.size() - pos_);
        } else {
          AdvanceBy(end + 2 - pos_);
        }
        continue;
      }
      break;
    }
  }

  bool ConsumePrefixAtComment() {
    if (input_.substr(pos_, 4) != "<!--") return false;
    size_t end = input_.find("-->", pos_ + 4);
    if (end == std::string_view::npos) {
      AdvanceBy(input_.size() - pos_);
    } else {
      AdvanceBy(end + 3 - pos_);
    }
    return true;
  }

  Status ParseProlog(XmlDocument* doc) {
    // Optional XML declaration.
    if (input_.substr(pos_, 5) == "<?xml" &&
        std::isspace(static_cast<unsigned char>(PeekAt(5)))) {
      size_t end = input_.find("?>", pos_);
      if (end == std::string_view::npos) {
        return Error("unterminated XML declaration");
      }
      std::string_view decl = input_.substr(pos_ + 5, end - pos_ - 5);
      ExtractPseudoAttribute(decl, "version", doc, /*is_version=*/true);
      ExtractPseudoAttribute(decl, "encoding", doc, /*is_version=*/false);
      AdvanceBy(end + 2 - pos_);
    }
    SkipMisc();
    // Optional DOCTYPE: skipped, balancing brackets for an internal subset.
    if (input_.substr(pos_, 9) == "<!DOCTYPE") {
      int bracket_depth = 0;
      while (!AtEnd()) {
        char c = Peek();
        Advance();
        if (c == '[') {
          ++bracket_depth;
        } else if (c == ']') {
          --bracket_depth;
        } else if (c == '>' && bracket_depth == 0) {
          return Status::OK();
        }
      }
      return Error("unterminated DOCTYPE");
    }
    return Status::OK();
  }

  static void ExtractPseudoAttribute(std::string_view decl,
                                     std::string_view name, XmlDocument* doc,
                                     bool is_version) {
    size_t p = decl.find(name);
    if (p == std::string_view::npos) return;
    p = decl.find_first_of("\"'", p);
    if (p == std::string_view::npos) return;
    char quote = decl[p];
    size_t end = decl.find(quote, p + 1);
    if (end == std::string_view::npos) return;
    std::string value(decl.substr(p + 1, end - p - 1));
    if (is_version) {
      doc->set_version(std::move(value));
    } else {
      doc->set_encoding(std::move(value));
    }
  }

  StatusOr<std::string> ParseName() {
    if (AtEnd() || !IsNameStartChar(static_cast<unsigned char>(Peek()))) {
      return Error("expected name");
    }
    size_t start = pos_;
    while (!AtEnd() && IsNameChar(static_cast<unsigned char>(Peek()))) {
      Advance();
    }
    return std::string(input_.substr(start, pos_ - start));
  }

  StatusOr<std::unique_ptr<XmlElement>> ParseElement(int depth) {
    // `depth` is zero-based, so max_depth counts allowed nesting levels.
    if (depth >= options_.max_depth) {
      return Error("maximum element nesting depth exceeded");
    }
    if (!ConsumePrefix("<")) return Error("expected '<'");
    auto name = ParseName();
    if (!name.ok()) return name.status();
    auto element = std::make_unique<XmlElement>(std::move(name).value());

    // Attributes.
    while (true) {
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated start tag");
      char c = Peek();
      if (c == '>' || c == '/') break;
      auto attr_name = ParseName();
      if (!attr_name.ok()) return attr_name.status();
      SkipWhitespace();
      if (!ConsumePrefix("=")) return Error("expected '=' in attribute");
      SkipWhitespace();
      if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
        return Error("expected quoted attribute value");
      }
      char quote = Peek();
      Advance();
      size_t start = pos_;
      while (!AtEnd() && Peek() != quote) {
        if (Peek() == '<') return Error("'<' in attribute value");
        Advance();
      }
      if (AtEnd()) return Error("unterminated attribute value");
      auto decoded = DecodeEntities(input_.substr(start, pos_ - start));
      if (!decoded.ok()) return decoded.status();
      Advance();  // Closing quote.
      if (element->FindAttribute(attr_name.value()) != nullptr) {
        return Error("duplicate attribute '" + attr_name.value() + "'");
      }
      element->AddAttribute(std::move(attr_name).value(),
                            std::move(decoded).value());
    }

    if (ConsumePrefix("/>")) return element;
    if (!ConsumePrefix(">")) return Error("malformed start tag");

    // Content until the matching end tag.
    XFRAG_RETURN_NOT_OK(ParseContent(element.get(), depth));

    // End tag.
    if (!ConsumePrefix("</")) return Error("expected end tag");
    auto end_name = ParseName();
    if (!end_name.ok()) return end_name.status();
    if (end_name.value() != element->tag()) {
      return Error("mismatched end tag '" + end_name.value() +
                   "' (expected '" + element->tag() + "')");
    }
    SkipWhitespace();
    if (!ConsumePrefix(">")) return Error("malformed end tag");
    return element;
  }

  Status ParseContent(XmlElement* element, int depth) {
    std::string pending_text;
    auto flush_text = [&]() -> Status {
      if (pending_text.empty()) return Status::OK();
      bool only_space = true;
      for (char c : pending_text) {
        if (!std::isspace(static_cast<unsigned char>(c))) {
          only_space = false;
          break;
        }
      }
      if (!(only_space && options_.drop_ignorable_whitespace)) {
        auto decoded = DecodeEntities(pending_text);
        if (!decoded.ok()) return decoded.status();
        element->AddChild(std::make_unique<XmlCharacterData>(
            XmlNodeKind::kText, std::move(decoded).value()));
      }
      pending_text.clear();
      return Status::OK();
    };

    while (true) {
      if (AtEnd()) return Error("unterminated element '" + element->tag() + "'");
      char c = Peek();
      if (c != '<') {
        pending_text.push_back(c);
        Advance();
        continue;
      }
      if (input_.substr(pos_, 2) == "</") {
        return flush_text();
      }
      if (input_.substr(pos_, 4) == "<!--") {
        XFRAG_RETURN_NOT_OK(flush_text());
        size_t end = input_.find("-->", pos_ + 4);
        if (end == std::string_view::npos) return Error("unterminated comment");
        std::string body(input_.substr(pos_ + 4, end - pos_ - 4));
        element->AddChild(std::make_unique<XmlCharacterData>(
            XmlNodeKind::kComment, std::move(body)));
        AdvanceBy(end + 3 - pos_);
        continue;
      }
      if (input_.substr(pos_, 9) == "<![CDATA[") {
        XFRAG_RETURN_NOT_OK(flush_text());
        size_t end = input_.find("]]>", pos_ + 9);
        if (end == std::string_view::npos) {
          return Error("unterminated CDATA section");
        }
        std::string body(input_.substr(pos_ + 9, end - pos_ - 9));
        element->AddChild(std::make_unique<XmlCharacterData>(
            XmlNodeKind::kCData, std::move(body)));
        AdvanceBy(end + 3 - pos_);
        continue;
      }
      if (input_.substr(pos_, 2) == "<?") {
        XFRAG_RETURN_NOT_OK(flush_text());
        AdvanceBy(2);
        auto target = ParseName();
        if (!target.ok()) return target.status();
        size_t end = input_.find("?>", pos_);
        if (end == std::string_view::npos) {
          return Error("unterminated processing instruction");
        }
        std::string body(
            StripAsciiWhitespace(input_.substr(pos_, end - pos_)));
        auto pi = std::make_unique<XmlCharacterData>(
            XmlNodeKind::kProcessingInstruction, std::move(body));
        pi->set_pi_target(std::move(target).value());
        element->AddChild(std::move(pi));
        AdvanceBy(end + 2 - pos_);
        continue;
      }
      // Child element.
      XFRAG_RETURN_NOT_OK(flush_text());
      auto child = ParseElement(depth + 1);
      if (!child.ok()) return child.status();
      element->AddChild(std::move(child).value());
    }
  }

  std::string_view input_;
  ParseOptions options_;
  size_t pos_ = 0;
  size_t line_ = 1;
  size_t column_ = 1;
};

}  // namespace

StatusOr<std::string> DecodeEntities(std::string_view input) {
  std::string out;
  out.reserve(input.size());
  size_t i = 0;
  while (i < input.size()) {
    char c = input[i];
    if (c != '&') {
      out.push_back(c);
      ++i;
      continue;
    }
    size_t semi = input.find(';', i + 1);
    if (semi == std::string_view::npos || semi == i + 1) {
      return Status::ParseError("malformed entity reference");
    }
    std::string_view entity = input.substr(i + 1, semi - i - 1);
    if (entity == "lt") {
      out.push_back('<');
    } else if (entity == "gt") {
      out.push_back('>');
    } else if (entity == "amp") {
      out.push_back('&');
    } else if (entity == "apos") {
      out.push_back('\'');
    } else if (entity == "quot") {
      out.push_back('"');
    } else if (entity[0] == '#') {
      uint32_t cp = 0;
      bool hex = entity.size() > 1 && (entity[1] == 'x' || entity[1] == 'X');
      std::string_view digits = entity.substr(hex ? 2 : 1);
      if (digits.empty()) {
        return Status::ParseError("empty character reference");
      }
      for (char d : digits) {
        uint32_t v;
        if (d >= '0' && d <= '9') {
          v = static_cast<uint32_t>(d - '0');
        } else if (hex && d >= 'a' && d <= 'f') {
          v = static_cast<uint32_t>(d - 'a' + 10);
        } else if (hex && d >= 'A' && d <= 'F') {
          v = static_cast<uint32_t>(d - 'A' + 10);
        } else {
          return Status::ParseError("invalid character reference '&" +
                                    std::string(entity) + ";'");
        }
        cp = cp * (hex ? 16 : 10) + v;
        if (cp > 0x10FFFF) break;
      }
      if (!AppendUtf8(cp, &out)) {
        return Status::ParseError("character reference out of range");
      }
    } else {
      return Status::ParseError("unknown entity '&" + std::string(entity) +
                                ";'");
    }
    i = semi + 1;
  }
  return out;
}

StatusOr<XmlDocument> Parse(std::string_view input,
                            const ParseOptions& options) {
  Parser parser(input, options);
  return parser.ParseDocument();
}

}  // namespace xfrag::xml
