// Serializes a DOM back to XML text. Round-tripping a parsed document
// through Serialize + Parse yields an equal tree (modulo ignorable
// whitespace), which the tests verify.

#ifndef XFRAG_XML_SERIALIZER_H_
#define XFRAG_XML_SERIALIZER_H_

#include <string>
#include <string_view>

#include "xml/dom.h"

namespace xfrag::xml {

/// Serializer configuration.
struct SerializeOptions {
  /// When true, children are placed on indented lines.
  bool pretty = false;
  /// Indentation width when pretty-printing.
  int indent = 2;
  /// When true, an `<?xml version=...?>` declaration is emitted.
  bool emit_declaration = true;
};

/// \brief Escapes text content (&, <, >).
std::string EscapeText(std::string_view text);

/// \brief Escapes an attribute value (&, <, >, ").
std::string EscapeAttribute(std::string_view value);

/// \brief Serializes a whole document.
std::string Serialize(const XmlDocument& doc, const SerializeOptions& options = {});

/// \brief Serializes a single element subtree.
std::string SerializeElement(const XmlElement& element,
                             const SerializeOptions& options = {});

}  // namespace xfrag::xml

#endif  // XFRAG_XML_SERIALIZER_H_
