// Non-validating XML 1.0 parser. Supports the subset needed for
// document-centric corpora: prolog, DOCTYPE (skipped), elements, attributes,
// text, CDATA sections, comments, processing instructions, the five
// predefined entities, and numeric character references (decimal and hex,
// encoded back as UTF-8). Namespaces are treated lexically (prefix kept as
// part of the tag name). DTD-defined entities are not supported.

#ifndef XFRAG_XML_PARSER_H_
#define XFRAG_XML_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "xml/dom.h"

namespace xfrag::xml {

/// Parser configuration.
struct ParseOptions {
  /// When true, text nodes that consist solely of whitespace between two
  /// element siblings are dropped (typical for pretty-printed documents).
  bool drop_ignorable_whitespace = true;

  /// Upper bound on element nesting depth, to guard against stack abuse.
  int max_depth = 512;
};

/// \brief Parses `input` into an XmlDocument.
///
/// Errors carry a one-based line:column position of the offending byte.
StatusOr<XmlDocument> Parse(std::string_view input,
                            const ParseOptions& options = {});

/// \brief Decodes predefined entities and character references in `input`.
///
/// Exposed for tests; the parser calls this on text and attribute content.
StatusOr<std::string> DecodeEntities(std::string_view input);

}  // namespace xfrag::xml

#endif  // XFRAG_XML_PARSER_H_
