#include "xml/serializer.h"

namespace xfrag::xml {

namespace {

void AppendEscaped(std::string_view text, bool for_attribute,
                   std::string* out) {
  for (char c : text) {
    switch (c) {
      case '&':
        out->append("&amp;");
        break;
      case '<':
        out->append("&lt;");
        break;
      case '>':
        out->append("&gt;");
        break;
      case '"':
        if (for_attribute) {
          out->append("&quot;");
        } else {
          out->push_back(c);
        }
        break;
      default:
        out->push_back(c);
    }
  }
}

void SerializeNode(const XmlNode& node, const SerializeOptions& options,
                   int depth, std::string* out);

void Indent(const SerializeOptions& options, int depth, std::string* out) {
  if (!options.pretty) return;
  out->push_back('\n');
  out->append(static_cast<size_t>(depth * options.indent), ' ');
}

void SerializeElementAt(const XmlElement& element,
                        const SerializeOptions& options, int depth,
                        std::string* out) {
  out->push_back('<');
  out->append(element.tag());
  for (const auto& attr : element.attributes()) {
    out->push_back(' ');
    out->append(attr.name);
    out->append("=\"");
    AppendEscaped(attr.value, /*for_attribute=*/true, out);
    out->push_back('"');
  }
  if (element.children().empty()) {
    out->append("/>");
    return;
  }
  out->push_back('>');
  bool any_child_element = false;
  bool any_textual_child = false;
  for (const auto& child : element.children()) {
    if (child->IsElement()) any_child_element = true;
    if (child->IsTextual()) any_textual_child = true;
  }
  // Mixed content (text + elements) must not be indented: inserted
  // whitespace would change the text and break round-tripping.
  bool indent_children =
      options.pretty && any_child_element && !any_textual_child;
  for (const auto& child : element.children()) {
    if (indent_children) Indent(options, depth + 1, out);
    SerializeNode(*child, options, depth + 1, out);
  }
  if (indent_children) Indent(options, depth, out);
  out->append("</");
  out->append(element.tag());
  out->push_back('>');
}

void SerializeNode(const XmlNode& node, const SerializeOptions& options,
                   int depth, std::string* out) {
  switch (node.kind()) {
    case XmlNodeKind::kElement:
      SerializeElementAt(node.AsElement(), options, depth, out);
      break;
    case XmlNodeKind::kText:
      AppendEscaped(static_cast<const XmlCharacterData&>(node).data(),
                    /*for_attribute=*/false, out);
      break;
    case XmlNodeKind::kCData:
      out->append("<![CDATA[");
      out->append(static_cast<const XmlCharacterData&>(node).data());
      out->append("]]>");
      break;
    case XmlNodeKind::kComment:
      out->append("<!--");
      out->append(static_cast<const XmlCharacterData&>(node).data());
      out->append("-->");
      break;
    case XmlNodeKind::kProcessingInstruction: {
      const auto& pi = static_cast<const XmlCharacterData&>(node);
      out->append("<?");
      out->append(pi.pi_target());
      if (!pi.data().empty()) {
        out->push_back(' ');
        out->append(pi.data());
      }
      out->append("?>");
      break;
    }
  }
}

}  // namespace

std::string EscapeText(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  AppendEscaped(text, /*for_attribute=*/false, &out);
  return out;
}

std::string EscapeAttribute(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  AppendEscaped(value, /*for_attribute=*/true, &out);
  return out;
}

std::string Serialize(const XmlDocument& doc, const SerializeOptions& options) {
  std::string out;
  if (options.emit_declaration) {
    out.append("<?xml version=\"");
    out.append(doc.version());
    out.push_back('"');
    if (!doc.encoding().empty()) {
      out.append(" encoding=\"");
      out.append(doc.encoding());
      out.push_back('"');
    }
    out.append("?>");
    if (options.pretty) out.push_back('\n');
  }
  if (doc.has_root()) {
    SerializeElementAt(doc.root(), options, 0, &out);
  }
  if (options.pretty) out.push_back('\n');
  return out;
}

std::string SerializeElement(const XmlElement& element,
                             const SerializeOptions& options) {
  std::string out;
  SerializeElementAt(element, options, 0, &out);
  return out;
}

}  // namespace xfrag::xml
