// xfrag_snapshot — compile XML documents into an immutable mmap snapshot,
// inspect one, or verify one end to end.
//
//   usage: xfrag_snapshot build -o <out.snap> <file.xml|file.xdb>...
//          xfrag_snapshot info <file.snap>
//          xfrag_snapshot verify <file.snap>
//
// `build` runs the full parse → index → hash-cons pipeline once and writes
// the snapshot atomically; serving processes then open it in O(1) with
// xfragd --snapshot. `verify` recomputes every section checksum and then
// performs a fully validated load (the same scans xfragd runs at startup).

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "collection/collection.h"
#include "common/strings.h"
#include "common/version.h"
#include "storage/snapshot.h"
#include "storage/storage.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s build -o <out.snap> <file.xml|file.xdb>...\n"
               "       %s info <file.snap>\n"
               "       %s verify <file.snap>\n"
               "       %s --version\n",
               argv0, argv0, argv0, argv0);
  return 2;
}

xfrag::StatusOr<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return xfrag::Status::NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

int Build(const std::string& out_path, const std::vector<std::string>& files) {
  xfrag::text::IndexOptions index_options;
  xfrag::collection::Collection collection(index_options);
  for (const std::string& path : files) {
    if (xfrag::EndsWith(path, ".xdb")) {
      auto bundle = xfrag::storage::LoadBundleFromFile(path);
      if (!bundle.ok()) {
        std::fprintf(stderr, "%s\n", bundle.status().ToString().c_str());
        return 1;
      }
      auto status = collection.Add(path, std::move(bundle->document));
      if (!status.ok()) {
        std::fprintf(stderr, "%s\n", status.ToString().c_str());
        return 1;
      }
    } else {
      auto content = ReadFile(path);
      if (!content.ok()) {
        std::fprintf(stderr, "%s\n", content.status().ToString().c_str());
        return 1;
      }
      auto status = collection.AddXml(path, *content);
      if (!status.ok()) {
        std::fprintf(stderr, "%s: %s\n", path.c_str(),
                     status.ToString().c_str());
        return 1;
      }
    }
  }
  auto written =
      xfrag::storage::WriteSnapshot(collection, index_options, out_path);
  if (!written.ok()) {
    std::fprintf(stderr, "%s\n", written.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s (%zu documents, %zu nodes)\n", out_path.c_str(),
              collection.size(), collection.TotalNodes());
  return 0;
}

int Info(const std::string& path) {
  auto reader = xfrag::storage::SnapshotReader::Open(path);
  if (!reader.ok()) {
    std::fprintf(stderr, "%s\n", reader.status().ToString().c_str());
    return 1;
  }
  const auto& meta = (*reader)->meta();
  const auto& stats = (*reader)->open_stats();
  std::printf("%s\n", path.c_str());
  std::printf("  format v%llu, written by xfrag %s\n",
              static_cast<unsigned long long>(
                  xfrag::storage::kSnapshotFormatVersion),
              meta.tool_version.c_str());
  std::printf("  %llu documents, %llu nodes, %llu tag(s), %llu class(es)\n",
              static_cast<unsigned long long>(meta.doc_count),
              static_cast<unsigned long long>(meta.node_count),
              static_cast<unsigned long long>(meta.tag_dict_count),
              static_cast<unsigned long long>(meta.class_count));
  std::printf("  %llu terms, %llu postings (%llu blob bytes)\n",
              static_cast<unsigned long long>(meta.term_entry_count),
              static_cast<unsigned long long>(meta.posting_count),
              static_cast<unsigned long long>(meta.postings_bytes));
  std::printf("  tokenizer: stopwords=%d min_len=%zu plurals=%d tags=%d\n",
              meta.index_options.tokenizer.remove_stopwords ? 1 : 0,
              meta.index_options.tokenizer.min_token_length,
              meta.index_options.tokenizer.fold_plurals ? 1 : 0,
              meta.index_options.index_tag_names ? 1 : 0);
  std::printf("  %llu file bytes, open %.3f ms\n",
              static_cast<unsigned long long>(stats.file_bytes),
              stats.open_ms);
  for (const auto& d : (*reader)->documents()) {
    std::printf("  - %s: %llu nodes, %llu terms, %llu postings\n",
                d.name.c_str(),
                static_cast<unsigned long long>(d.node_count),
                static_cast<unsigned long long>(d.term_count),
                static_cast<unsigned long long>(d.posting_count));
  }
  return 0;
}

int Verify(const std::string& path) {
  auto reader = xfrag::storage::SnapshotReader::Open(path);
  if (!reader.ok()) {
    std::fprintf(stderr, "%s\n", reader.status().ToString().c_str());
    return 1;
  }
  auto checksums = (*reader)->VerifyChecksums();
  if (!checksums.ok()) {
    std::fprintf(stderr, "%s\n", checksums.ToString().c_str());
    return 1;
  }
  xfrag::storage::SnapshotOpenOptions options;
  options.validate_structure = true;
  auto loaded = xfrag::storage::LoadCollectionFromSnapshot(path, options);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  std::printf("%s: OK (%zu documents, %zu nodes, %.3f ms validated load)\n",
              path.c_str(), loaded->collection.size(),
              loaded->collection.TotalNodes(), loaded->stats.open_ms);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage(argv[0]);
  std::string command = argv[1];
  if (command == "--version") {
    std::printf("%s\n", xfrag::BuildInfo("xfrag_snapshot").c_str());
    return 0;
  }
  if (command == "build") {
    std::string out_path;
    std::vector<std::string> files;
    for (int i = 2; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg == "-o" && i + 1 < argc) {
        out_path = argv[++i];
      } else if (arg.rfind("--", 0) == 0) {
        return Usage(argv[0]);
      } else {
        files.push_back(arg);
      }
    }
    if (out_path.empty() || files.empty()) return Usage(argv[0]);
    return Build(out_path, files);
  }
  if (command == "info" && argc == 3) return Info(argv[2]);
  if (command == "verify" && argc == 3) return Verify(argv[2]);
  return Usage(argv[0]);
}
