// Low-level binary encoding primitives for the storage module: LEB128
// varints, length-prefixed strings, and a 64-bit payload checksum. The
// encoding is little-endian-independent (byte-oriented) and fully covered by
// round-trip tests.

#ifndef XFRAG_STORAGE_FORMAT_H_
#define XFRAG_STORAGE_FORMAT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace xfrag::storage {

/// Longest valid LEB128 encoding of a uint64_t (10 * 7 bits >= 64). Reader
/// rejects longer runs of continuation bytes with ParseError instead of
/// shifting past the word width.
inline constexpr int kMaxVarintBytes = 10;

/// \brief Appends an unsigned LEB128 varint.
void PutVarint(uint64_t value, std::string* out);

/// \brief Appends a length-prefixed string.
void PutString(std::string_view value, std::string* out);

/// \brief Appends a fixed 8-byte little-endian value.
void PutFixed64(uint64_t value, std::string* out);

/// \brief Sequential decoder over a byte buffer.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  /// Reads one varint.
  StatusOr<uint64_t> ReadVarint();

  /// Reads one length-prefixed string.
  StatusOr<std::string> ReadString();

  /// Reads a fixed 8-byte value.
  StatusOr<uint64_t> ReadFixed64();

  /// Bytes remaining.
  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ >= data_.size(); }
  /// Bytes consumed so far (offset of the next read).
  size_t position() const { return pos_; }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

/// \brief 64-bit checksum (FNV-1a with avalanche) of `data`.
uint64_t Checksum(std::string_view data);

/// \brief Atomically and durably replaces `path` with `data`: writes a
/// sibling temp file, fsyncs it, renames it over `path`, then fsyncs the
/// parent directory so the rename survives power loss. Without the fsyncs
/// the rename can legally land with empty or partial contents after a
/// crash, destroying the previously-good file at `path`. On failure the
/// temp file is removed and `path` is untouched.
Status WriteFileDurable(const std::string& path, std::string_view data);

}  // namespace xfrag::storage

#endif  // XFRAG_STORAGE_FORMAT_H_
