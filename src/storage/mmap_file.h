// RAII read-only memory mapping of a snapshot file. The mapping is private
// and read-only (PROT_READ, MAP_PRIVATE): the kernel pages bytes in on
// demand, so opening a multi-GB snapshot costs milliseconds and a corpus
// larger than RAM is served from page cache with the OS doing eviction.

#ifndef XFRAG_STORAGE_MMAP_FILE_H_
#define XFRAG_STORAGE_MMAP_FILE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace xfrag::storage {

/// \brief A read-only mmap of one file, unmapped on destruction.
class MmapFile {
 public:
  MmapFile() = default;
  ~MmapFile();

  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;
  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;

  /// \brief Maps `path` read-only. Empty files are rejected (a snapshot is
  /// never empty). The fd is closed after mapping; the mapping persists.
  static StatusOr<MmapFile> Open(const std::string& path);

  /// The mapped bytes.
  std::string_view bytes() const {
    return {static_cast<const char*>(data_), size_};
  }
  const uint8_t* data() const { return static_cast<const uint8_t*>(data_); }
  size_t size() const { return size_; }

  /// \brief Bytes of the mapping currently resident in memory (via
  /// mincore); an observability number, not a guarantee. Returns 0 when the
  /// probe fails.
  uint64_t ResidentBytes() const;

  /// \brief Advises the kernel the mapping will be read sequentially soon
  /// (used by full-file checksum verification).
  void AdviseSequential() const;

 private:
  void* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace xfrag::storage

#endif  // XFRAG_STORAGE_MMAP_FILE_H_
