// Binary persistence of documents and indexes ("bundles"): parse/index once,
// reload instantly. Format (all multi-byte integers are LEB128 varints):
//
//   bundle  := MAGIC version sections checksum(fixed64, over all sections)
//   section := kind(varint) payload-length(varint) payload
//     kind 1 — document: node-count, parents (+1 so the root's "no parent"
//              encodes as 0), tag dictionary + per-node tag ids, texts
//     kind 2 — index: term-count, then per term: term, posting-count,
//              delta-encoded node ids
//
// The checksum covers every section byte; LoadBundle verifies it before
// decoding, so corrupt or truncated files are rejected with ParseError.

#ifndef XFRAG_STORAGE_STORAGE_H_
#define XFRAG_STORAGE_STORAGE_H_

#include <optional>
#include <string>
#include <string_view>

#include "common/status.h"
#include "doc/document.h"
#include "text/inverted_index.h"

namespace xfrag::storage {

/// A loaded bundle: a document plus (optionally) its persisted index.
struct Bundle {
  doc::Document document;
  std::optional<text::InvertedIndex> index;

  explicit Bundle(doc::Document d) : document(std::move(d)) {}
};

/// \brief Serializes a document (and optionally its index) into a bundle.
std::string WriteBundle(const doc::Document& document,
                        const text::InvertedIndex* index = nullptr);

/// \brief Parses and validates a bundle.
StatusOr<Bundle> ReadBundle(std::string_view data);

/// \brief Writes a bundle to `path` (atomically via rename).
Status SaveBundleToFile(const std::string& path,
                        const doc::Document& document,
                        const text::InvertedIndex* index = nullptr);

/// \brief Loads a bundle from `path`.
StatusOr<Bundle> LoadBundleFromFile(const std::string& path);

}  // namespace xfrag::storage

#endif  // XFRAG_STORAGE_STORAGE_H_
