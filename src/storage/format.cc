#include "storage/format.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace xfrag::storage {

void PutVarint(uint64_t value, std::string* out) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>((value & 0x7F) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

void PutString(std::string_view value, std::string* out) {
  PutVarint(value.size(), out);
  out->append(value);
}

void PutFixed64(uint64_t value, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
  }
}

StatusOr<uint64_t> Reader::ReadVarint() {
  // Hardened against adversarial input: the shift is bounded by the explicit
  // 10-byte LEB128 cap (10 * 7 = 70 > 64), so it can never reach the width
  // of uint64_t and shift-overflow UB is structurally impossible. The 10th
  // byte may only contribute the single remaining bit.
  uint64_t value = 0;
  int shift = 0;
  for (int length = 1; length <= kMaxVarintBytes; ++length, shift += 7) {
    if (pos_ >= data_.size()) {
      return Status::ParseError("truncated varint");
    }
    uint8_t byte = static_cast<uint8_t>(data_[pos_++]);
    if (shift == 63 && (byte & 0x7F) > 1) {
      return Status::ParseError("varint overflows 64 bits");
    }
    value |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return value;
  }
  return Status::ParseError(
      "varint continues past 10 bytes (malformed LEB128)");
}

StatusOr<std::string> Reader::ReadString() {
  auto length = ReadVarint();
  if (!length.ok()) return length.status();
  if (*length > remaining()) {
    return Status::ParseError("truncated string payload");
  }
  std::string out(data_.substr(pos_, *length));
  pos_ += *length;
  return out;
}

StatusOr<uint64_t> Reader::ReadFixed64() {
  if (remaining() < 8) return Status::ParseError("truncated fixed64");
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_++]))
             << (8 * i);
  }
  return value;
}

uint64_t Checksum(std::string_view data) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return h;
}

Status WriteFileDurable(const std::string& path, std::string_view data) {
  const std::string temp = path + ".tmp";
  auto fail = [&temp](const std::string& what) {
    Status status =
        Status::Internal(what + " '" + temp + "': " + std::strerror(errno));
    ::unlink(temp.c_str());
    return status;
  };

  int fd = ::open(temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Internal("cannot open '" + temp +
                            "' for writing: " + std::strerror(errno));
  }
  size_t written = 0;
  while (written < data.size()) {
    ssize_t n = ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return fail("short write to");
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    return fail("cannot fsync");
  }
  if (::close(fd) != 0) {
    return fail("cannot close");
  }
  if (::rename(temp.c_str(), path.c_str()) != 0) {
    return fail("cannot rename to '" + path + "' from");
  }
  // The rename itself lives in the directory; fsync it so the swap is on
  // disk. Best-effort: some filesystems refuse directory fds.
  std::string dir = ".";
  if (size_t slash = path.find_last_of('/'); slash != std::string::npos) {
    dir = slash == 0 ? "/" : path.substr(0, slash);
  }
  int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return Status::OK();
}

}  // namespace xfrag::storage
