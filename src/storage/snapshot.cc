#include "storage/snapshot.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstring>
#include <unordered_map>

#include "common/strings.h"
#include "common/version.h"
#include "storage/format.h"

namespace xfrag::storage {

// Typed column access casts mapped bytes directly; the format is defined
// little-endian, so a big-endian host would need byte-swapping shims.
static_assert(std::endian::native == std::endian::little,
              "snapshot columns are little-endian");

namespace {

constexpr size_t kSectionKindCount = 21;  // Highest SectionKind value + 1.
constexpr size_t kSuperblockBytes = 64;   // Used bytes of page 0.

// Superblock field offsets (all u64 little-endian after the 8-byte magic).
constexpr size_t kOffVersion = 8;
constexpr size_t kOffPageSize = 16;
constexpr size_t kOffFileBytes = 24;
constexpr size_t kOffTocOffset = 32;
constexpr size_t kOffTocBytes = 40;
constexpr size_t kOffTocChecksum = 48;
constexpr size_t kOffHeaderChecksum = 56;

void WriteU64LE(uint64_t value, char* out) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<char>(value >> (8 * i));
}

uint64_t ReadU64LE(const char* in) {
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<uint64_t>(static_cast<uint8_t>(in[i])) << (8 * i);
  }
  return value;
}

void AppendU32(uint32_t value, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>(value >> (8 * i)));
  }
}

void AppendU64(uint64_t value, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>(value >> (8 * i)));
  }
}

std::string EncodeMeta(const SnapshotMeta& m) {
  std::string out;
  PutString(m.tool_version, &out);
  PutVarint(m.doc_count, &out);
  PutVarint(m.node_count, &out);
  PutVarint(m.child_count, &out);
  PutVarint(m.tag_dict_count, &out);
  PutVarint(m.tag_blob_bytes, &out);
  PutVarint(m.text_bytes, &out);
  PutVarint(m.term_entry_count, &out);
  PutVarint(m.term_blob_bytes, &out);
  PutVarint(m.postings_bytes, &out);
  PutVarint(m.posting_count, &out);
  PutVarint(m.class_count, &out);
  PutVarint(m.index_options.tokenizer.remove_stopwords ? 1 : 0, &out);
  PutVarint(m.index_options.tokenizer.min_token_length, &out);
  PutVarint(m.index_options.tokenizer.fold_plurals ? 1 : 0, &out);
  PutVarint(m.index_options.index_tag_names ? 1 : 0, &out);
  return out;
}

StatusOr<SnapshotMeta> DecodeMeta(std::string_view payload) {
  Reader r(payload);
  SnapshotMeta m;
  XFRAG_ASSIGN_OR_RETURN(m.tool_version, r.ReadString());
  XFRAG_ASSIGN_OR_RETURN(m.doc_count, r.ReadVarint());
  XFRAG_ASSIGN_OR_RETURN(m.node_count, r.ReadVarint());
  XFRAG_ASSIGN_OR_RETURN(m.child_count, r.ReadVarint());
  XFRAG_ASSIGN_OR_RETURN(m.tag_dict_count, r.ReadVarint());
  XFRAG_ASSIGN_OR_RETURN(m.tag_blob_bytes, r.ReadVarint());
  XFRAG_ASSIGN_OR_RETURN(m.text_bytes, r.ReadVarint());
  XFRAG_ASSIGN_OR_RETURN(m.term_entry_count, r.ReadVarint());
  XFRAG_ASSIGN_OR_RETURN(m.term_blob_bytes, r.ReadVarint());
  XFRAG_ASSIGN_OR_RETURN(m.postings_bytes, r.ReadVarint());
  XFRAG_ASSIGN_OR_RETURN(m.posting_count, r.ReadVarint());
  XFRAG_ASSIGN_OR_RETURN(m.class_count, r.ReadVarint());
  XFRAG_ASSIGN_OR_RETURN(uint64_t stopwords, r.ReadVarint());
  XFRAG_ASSIGN_OR_RETURN(uint64_t min_token, r.ReadVarint());
  XFRAG_ASSIGN_OR_RETURN(uint64_t plurals, r.ReadVarint());
  XFRAG_ASSIGN_OR_RETURN(uint64_t tag_names, r.ReadVarint());
  if (!r.AtEnd()) {
    return Status::ParseError("trailing bytes in snapshot meta");
  }
  m.index_options.tokenizer.remove_stopwords = stopwords != 0;
  m.index_options.tokenizer.min_token_length =
      static_cast<size_t>(min_token);
  m.index_options.tokenizer.fold_plurals = plurals != 0;
  m.index_options.index_tag_names = tag_names != 0;
  return m;
}

std::string EncodeDirectory(const std::vector<SnapshotDocRecord>& docs) {
  std::string out;
  for (const SnapshotDocRecord& d : docs) {
    PutString(d.name, &out);
    PutVarint(d.node_count, &out);
    PutVarint(d.term_count, &out);
    PutVarint(d.posting_count, &out);
    PutVarint(d.duplicated_nodes, &out);
    PutVarint(d.duplicated_classes, &out);
    PutVarint(d.node_base, &out);
    PutVarint(d.term_base, &out);
  }
  return out;
}

StatusOr<std::vector<SnapshotDocRecord>> DecodeDirectory(
    std::string_view payload, const SnapshotMeta& meta) {
  Reader r(payload);
  std::vector<SnapshotDocRecord> docs;
  docs.reserve(meta.doc_count);
  uint64_t node_base = 0, term_base = 0, postings = 0;
  for (uint64_t i = 0; i < meta.doc_count; ++i) {
    SnapshotDocRecord d;
    XFRAG_ASSIGN_OR_RETURN(d.name, r.ReadString());
    XFRAG_ASSIGN_OR_RETURN(d.node_count, r.ReadVarint());
    XFRAG_ASSIGN_OR_RETURN(d.term_count, r.ReadVarint());
    XFRAG_ASSIGN_OR_RETURN(d.posting_count, r.ReadVarint());
    XFRAG_ASSIGN_OR_RETURN(d.duplicated_nodes, r.ReadVarint());
    XFRAG_ASSIGN_OR_RETURN(d.duplicated_classes, r.ReadVarint());
    XFRAG_ASSIGN_OR_RETURN(d.node_base, r.ReadVarint());
    XFRAG_ASSIGN_OR_RETURN(d.term_base, r.ReadVarint());
    if (d.name.empty()) {
      return Status::ParseError("snapshot directory has an unnamed document");
    }
    if (d.node_count == 0) {
      return Status::ParseError("snapshot document '" + d.name +
                                "' has zero nodes");
    }
    // The stored bases are redundant with accumulation; a mismatch means
    // the directory and the columns disagree about where slices start.
    if (d.node_base != node_base || d.term_base != term_base) {
      return Status::ParseError("snapshot directory bases are inconsistent");
    }
    node_base += d.node_count;
    term_base += d.term_count;
    postings += d.posting_count;
    docs.push_back(std::move(d));
  }
  if (!r.AtEnd()) {
    return Status::ParseError("trailing bytes in snapshot directory");
  }
  if (node_base != meta.node_count || term_base != meta.term_entry_count ||
      postings != meta.posting_count) {
    return Status::ParseError(
        "snapshot directory totals disagree with the meta section");
  }
  return docs;
}

}  // namespace

Status WriteSnapshot(const collection::Collection& collection,
                     const text::IndexOptions& index_options,
                     const std::string& path) {
  if (collection.empty()) {
    return Status::InvalidArgument("refusing to snapshot an empty collection");
  }

  SnapshotMeta meta;
  meta.tool_version = kVersion;
  meta.doc_count = collection.size();
  meta.index_options = index_options;

  // Column buffers, concatenated across documents (layout comment in the
  // header). Buffers are raw little-endian bytes, appended in one pass.
  std::string parents, depths, subtrees, child_offsets, child_ids, tag_ids;
  std::string tag_dict_offsets, tag_blob;
  std::string text_offsets, text_blob;
  std::string term_offsets, term_blob, posting_offsets, postings_blob;
  std::string class_of, dup_anchor, class_nodes, class_occurrences;
  std::vector<SnapshotDocRecord> docs;
  docs.reserve(collection.size());

  std::unordered_map<std::string_view, uint32_t> tag_dict;
  std::vector<uint64_t> tag_dict_ends;  // Blob end per dictionary entry.
  uint64_t node_base = 0, child_total = 0, term_base = 0;

  for (size_t di = 0; di < collection.size(); ++di) {
    const collection::CollectionEntry& entry = collection.entry(di);
    const doc::Document& document = entry.document;
    const size_t n = document.size();

    SnapshotDocRecord record;
    record.name = entry.name;
    record.node_count = n;
    record.node_base = node_base;
    record.term_base = term_base;
    record.duplicated_nodes = entry.classes.duplicated_nodes();
    record.duplicated_classes = entry.classes.duplicated_classes();

    for (doc::NodeId node = 0; node < n; ++node) {
      AppendU32(document.parent(node), &parents);
      AppendU32(document.depth(node), &depths);
      AppendU32(document.subtree_size(node), &subtrees);
      AppendU32(static_cast<uint32_t>(child_total), &child_offsets);
      for (doc::NodeId child : document.children(node)) {
        AppendU32(child, &child_ids);
        ++child_total;
      }
      // The dictionary keys view the documents' own tag storage, which
      // outlives this function (the collection stays alive).
      std::string_view tag = document.tag(node);
      auto [it, inserted] =
          tag_dict.emplace(tag, static_cast<uint32_t>(tag_dict_ends.size()));
      if (inserted) {
        tag_blob.append(tag);
        tag_dict_ends.push_back(tag_blob.size());
      }
      AppendU32(it->second, &tag_ids);
      AppendU64(text_blob.size(), &text_offsets);
      text_blob.append(document.text(node));
      AppendU32(entry.classes.class_of(node), &class_of);
      AppendU32(entry.classes.dup_anchor(node), &dup_anchor);
    }

    std::vector<std::string> terms = entry.index.Terms();
    std::sort(terms.begin(), terms.end());
    record.term_count = terms.size();
    for (const std::string& term : terms) {
      AppendU64(term_blob.size(), &term_offsets);
      term_blob.append(term);
      AppendU64(postings_blob.size(), &posting_offsets);
      const auto& list = entry.index.Lookup(term);
      doc::NodeId previous = 0;
      for (doc::NodeId id : list) {
        PutVarint(id - previous, &postings_blob);  // First run is absolute.
        previous = id;
      }
      record.posting_count += list.size();
    }

    node_base += n;
    term_base += record.term_count;
    docs.push_back(std::move(record));
  }
  // Shared trailing boundary entries.
  AppendU32(static_cast<uint32_t>(child_total), &child_offsets);
  AppendU64(text_blob.size(), &text_offsets);
  AppendU64(term_blob.size(), &term_offsets);
  AppendU64(postings_blob.size(), &posting_offsets);

  tag_dict_offsets.reserve(8 * (tag_dict_ends.size() + 1));
  AppendU64(0, &tag_dict_offsets);
  for (uint64_t end : tag_dict_ends) AppendU64(end, &tag_dict_offsets);

  const doc::SubtreeClassInterner& interner = collection.subtree_classes();
  meta.class_count = interner.size();
  for (doc::SubtreeClassId c = 0; c < meta.class_count; ++c) {
    AppendU64(interner.class_nodes(c), &class_nodes);
    AppendU64(interner.occurrences(c), &class_occurrences);
  }

  meta.node_count = node_base;
  meta.child_count = child_total;
  meta.tag_dict_count = tag_dict_ends.size();
  meta.tag_blob_bytes = tag_blob.size();
  meta.text_bytes = text_blob.size();
  meta.term_entry_count = term_base;
  meta.term_blob_bytes = term_blob.size();
  meta.postings_bytes = postings_blob.size();
  for (const SnapshotDocRecord& d : docs) meta.posting_count += d.posting_count;
  if (meta.node_count >= (uint64_t{1} << 32)) {
    return Status::InvalidArgument("snapshot node count exceeds 32 bits");
  }

  // Assemble the file: superblock page, page-aligned sections, tail TOC.
  struct PendingSection {
    SectionKind kind;
    const std::string* payload;
  };
  const std::string meta_payload = EncodeMeta(meta);
  const std::string directory_payload = EncodeDirectory(docs);
  const PendingSection layout[] = {
      {SectionKind::kMeta, &meta_payload},
      {SectionKind::kDirectory, &directory_payload},
      {SectionKind::kParents, &parents},
      {SectionKind::kDepth, &depths},
      {SectionKind::kSubtreeSize, &subtrees},
      {SectionKind::kChildOffsets, &child_offsets},
      {SectionKind::kChildIds, &child_ids},
      {SectionKind::kTagIds, &tag_ids},
      {SectionKind::kTagDictOffsets, &tag_dict_offsets},
      {SectionKind::kTagDictBlob, &tag_blob},
      {SectionKind::kTextOffsets, &text_offsets},
      {SectionKind::kTextBlob, &text_blob},
      {SectionKind::kTermOffsets, &term_offsets},
      {SectionKind::kTermBlob, &term_blob},
      {SectionKind::kPostingOffsets, &posting_offsets},
      {SectionKind::kPostingsBlob, &postings_blob},
      {SectionKind::kClassOf, &class_of},
      {SectionKind::kDupAnchor, &dup_anchor},
      {SectionKind::kClassNodes, &class_nodes},
      {SectionKind::kClassOccurrences, &class_occurrences},
  };

  std::string file(kSnapshotPageSize, '\0');  // Superblock filled below.
  std::string toc;
  PutVarint(std::size(layout), &toc);
  for (const PendingSection& s : layout) {
    file.resize((file.size() + kSnapshotPageSize - 1) / kSnapshotPageSize *
                kSnapshotPageSize);
    PutVarint(static_cast<uint64_t>(s.kind), &toc);
    PutVarint(file.size(), &toc);
    PutVarint(s.payload->size(), &toc);
    PutFixed64(Checksum(*s.payload), &toc);
    file.append(*s.payload);
  }
  file.resize((file.size() + kSnapshotPageSize - 1) / kSnapshotPageSize *
              kSnapshotPageSize);
  const uint64_t toc_offset = file.size();
  file.append(toc);

  char* super = file.data();
  std::memcpy(super, kSnapshotMagic.data(), kSnapshotMagic.size());
  WriteU64LE(kSnapshotFormatVersion, super + kOffVersion);
  WriteU64LE(kSnapshotPageSize, super + kOffPageSize);
  WriteU64LE(file.size(), super + kOffFileBytes);
  WriteU64LE(toc_offset, super + kOffTocOffset);
  WriteU64LE(toc.size(), super + kOffTocBytes);
  WriteU64LE(Checksum(toc), super + kOffTocChecksum);
  WriteU64LE(Checksum(std::string_view(super, kOffHeaderChecksum)),
             super + kOffHeaderChecksum);

  return WriteFileDurable(path, file);
}

StatusOr<std::shared_ptr<SnapshotReader>> SnapshotReader::Open(
    const std::string& path) {
  const auto start = std::chrono::steady_clock::now();
  XFRAG_ASSIGN_OR_RETURN(MmapFile file, MmapFile::Open(path));
  std::string_view bytes = file.bytes();

  auto fail = [&path](const std::string& what) {
    return Status::ParseError("snapshot '" + path + "': " + what);
  };

  if (bytes.size() < kSnapshotPageSize) {
    return fail("file smaller than one page");
  }
  if (bytes.substr(0, kSnapshotMagic.size()) != kSnapshotMagic) {
    return fail("bad magic (not a snapshot)");
  }
  const char* super = bytes.data();
  if (ReadU64LE(super + kOffHeaderChecksum) !=
      Checksum(std::string_view(super, kOffHeaderChecksum))) {
    return fail("superblock checksum mismatch");
  }
  const uint64_t version = ReadU64LE(super + kOffVersion);
  if (version != kSnapshotFormatVersion) {
    return fail(StrFormat("unsupported format version %llu",
                          static_cast<unsigned long long>(version)));
  }
  if (ReadU64LE(super + kOffPageSize) != kSnapshotPageSize) {
    return fail("unexpected page size");
  }
  if (ReadU64LE(super + kOffFileBytes) != bytes.size()) {
    return fail("file size disagrees with superblock (truncated?)");
  }
  const uint64_t toc_offset = ReadU64LE(super + kOffTocOffset);
  const uint64_t toc_bytes = ReadU64LE(super + kOffTocBytes);
  if (toc_offset < kSnapshotPageSize || toc_offset > bytes.size() ||
      toc_bytes > bytes.size() - toc_offset) {
    return fail("TOC out of bounds");
  }
  std::string_view toc = bytes.substr(toc_offset, toc_bytes);
  if (ReadU64LE(super + kOffTocChecksum) != Checksum(toc)) {
    return fail("TOC checksum mismatch");
  }

  auto reader = std::shared_ptr<SnapshotReader>(new SnapshotReader());
  reader->path_ = path;
  reader->sections_.resize(kSectionKindCount);

  Reader toc_reader(toc);
  XFRAG_ASSIGN_OR_RETURN(uint64_t section_count, toc_reader.ReadVarint());
  if (section_count > 1024) return fail("implausible section count");
  for (uint64_t i = 0; i < section_count; ++i) {
    XFRAG_ASSIGN_OR_RETURN(uint64_t kind, toc_reader.ReadVarint());
    XFRAG_ASSIGN_OR_RETURN(uint64_t offset, toc_reader.ReadVarint());
    XFRAG_ASSIGN_OR_RETURN(uint64_t size, toc_reader.ReadVarint());
    XFRAG_ASSIGN_OR_RETURN(uint64_t checksum, toc_reader.ReadFixed64());
    if (offset % kSnapshotPageSize != 0) {
      return fail("section not page-aligned");
    }
    if (offset > bytes.size() || size > bytes.size() - offset) {
      return fail("section out of bounds");
    }
    if (kind >= kSectionKindCount) continue;  // Future kinds are skipped.
    Section& s = reader->sections_[kind];
    if (s.present) return fail("duplicate section in TOC");
    s.offset = offset;
    s.bytes = size;
    s.checksum = checksum;
    s.present = true;
  }
  if (!toc_reader.AtEnd()) return fail("trailing bytes in TOC");

  for (size_t kind = 1; kind < kSectionKindCount; ++kind) {
    if (!reader->sections_[kind].present) {
      return fail(StrFormat("required section %zu missing", kind));
    }
  }

  // The meta and directory sections are interpreted right here at open —
  // before any VerifyChecksums pass could run — and a bit flip in the
  // persisted tokenizer options or document names would otherwise parse
  // cleanly and silently change query normalization. Both sections are
  // tiny, so verify their checksums now; the data columns stay covered by
  // structural validation and the explicit full-file pass.
  for (SectionKind kind : {SectionKind::kMeta, SectionKind::kDirectory}) {
    const Section& s = reader->sections_[static_cast<size_t>(kind)];
    if (Checksum(bytes.substr(s.offset, s.bytes)) != s.checksum) {
      return fail(StrFormat("section %llu checksum mismatch",
                            static_cast<unsigned long long>(kind)));
    }
  }

  XFRAG_ASSIGN_OR_RETURN(reader->meta_,
                         DecodeMeta(bytes.substr(
                             reader->sections_[1].offset,
                             reader->sections_[1].bytes)));
  const SnapshotMeta& meta = reader->meta_;
  if (meta.doc_count == 0) return fail("empty snapshot");
  if (meta.node_count >= (uint64_t{1} << 32)) {
    return fail("node count exceeds 32 bits");
  }
  if (meta.doc_count > meta.node_count ||
      meta.child_count != meta.node_count - meta.doc_count) {
    return fail("child count disagrees with node/document counts");
  }
  // Caps keep the 4*/8* expected-size arithmetic below from overflowing on
  // adversarial counts; real corpora sit far under 2^48 of anything.
  for (uint64_t count :
       {meta.tag_dict_count, meta.term_entry_count, meta.class_count,
        meta.posting_count, meta.tag_blob_bytes, meta.text_bytes,
        meta.term_blob_bytes, meta.postings_bytes}) {
    if (count > (uint64_t{1} << 48)) return fail("implausible meta count");
  }

  // Every typed column's byte size is pinned by the meta counts; checking
  // them here means the accessors can never index past a section.
  struct Expect {
    SectionKind kind;
    uint64_t bytes;
  };
  const Expect expected[] = {
      {SectionKind::kParents, 4 * meta.node_count},
      {SectionKind::kDepth, 4 * meta.node_count},
      {SectionKind::kSubtreeSize, 4 * meta.node_count},
      {SectionKind::kChildOffsets, 4 * (meta.node_count + 1)},
      {SectionKind::kChildIds, 4 * meta.child_count},
      {SectionKind::kTagIds, 4 * meta.node_count},
      {SectionKind::kTagDictOffsets, 8 * (meta.tag_dict_count + 1)},
      {SectionKind::kTagDictBlob, meta.tag_blob_bytes},
      {SectionKind::kTextOffsets, 8 * (meta.node_count + 1)},
      {SectionKind::kTextBlob, meta.text_bytes},
      {SectionKind::kTermOffsets, 8 * (meta.term_entry_count + 1)},
      {SectionKind::kTermBlob, meta.term_blob_bytes},
      {SectionKind::kPostingOffsets, 8 * (meta.term_entry_count + 1)},
      {SectionKind::kPostingsBlob, meta.postings_bytes},
      {SectionKind::kClassOf, 4 * meta.node_count},
      {SectionKind::kDupAnchor, 4 * meta.node_count},
      {SectionKind::kClassNodes, 8 * meta.class_count},
      {SectionKind::kClassOccurrences, 8 * meta.class_count},
  };
  for (const Expect& e : expected) {
    if (reader->sections_[static_cast<size_t>(e.kind)].bytes != e.bytes) {
      return fail(StrFormat("section %llu has unexpected size",
                            static_cast<unsigned long long>(e.kind)));
    }
  }

  XFRAG_ASSIGN_OR_RETURN(
      reader->docs_,
      DecodeDirectory(bytes.substr(reader->sections_[2].offset,
                                   reader->sections_[2].bytes),
                      meta));

  reader->file_ = std::move(file);
  reader->stats_.file_bytes = reader->file_.size();
  reader->stats_.mapped_bytes = reader->file_.size();
  reader->stats_.resident_bytes = reader->file_.ResidentBytes();
  reader->stats_.open_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  return reader;
}

Status SnapshotReader::VerifyChecksums() const {
  file_.AdviseSequential();
  for (size_t kind = 1; kind < kSectionKindCount; ++kind) {
    const Section& s = sections_[kind];
    if (!s.present) continue;
    if (Checksum(file_.bytes().substr(s.offset, s.bytes)) != s.checksum) {
      return Status::ParseError(
          StrFormat("snapshot '%s': section %zu checksum mismatch",
                    path_.c_str(), kind));
    }
  }
  return Status::OK();
}

StatusOr<SnapshotCollection> LoadCollectionFromSnapshot(
    const std::string& path, const SnapshotOpenOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  XFRAG_ASSIGN_OR_RETURN(std::shared_ptr<SnapshotReader> reader,
                         SnapshotReader::Open(path));
  const SnapshotMeta& meta = reader->meta();
  const bool validate = options.validate_structure;

  SnapshotCollection out;
  XFRAG_ASSIGN_OR_RETURN(
      doc::SubtreeClassInterner interner,
      doc::SubtreeClassInterner::FromSnapshotStats(
          reader->class_nodes(), reader->class_occurrences(),
          meta.class_count));
  out.collection.AdoptSubtreeClassStats(std::move(interner));

  // Anchor the child CSR to the column it indexes: the first offset must be
  // 0. With the per-document span checks (each covers node_count - 1 slots)
  // and the shared boundary entries this pins child_offsets[node_count] ==
  // meta.child_count, so no validated document can steer child-id reads past
  // the section. The per-document bound below is the second, independent
  // line of defense.
  if (validate && reader->child_offsets()[0] != 0) {
    return Status::ParseError("snapshot '" + path +
                              "': child offsets do not start at 0");
  }

  for (const SnapshotDocRecord& record : reader->documents()) {
    const uint64_t b = record.node_base;

    doc::SnapshotDocumentColumns dc;
    dc.node_count = record.node_count;
    dc.parents = reader->parents() + b;
    dc.depths = reader->depths() + b;
    dc.subtree_sizes = reader->subtree_sizes() + b;
    dc.child_offsets = reader->child_offsets() + b;
    dc.child_ids = reader->child_ids();  // Global base; offsets are global.
    dc.child_id_count = meta.child_count;
    dc.tag_ids = reader->tag_ids() + b;
    dc.tag_offsets = reader->tag_dict_offsets();
    dc.tag_dict_count = meta.tag_dict_count;
    dc.tag_blob = reader->tag_dict_blob();
    dc.text_offsets = reader->text_offsets() + b;
    dc.text_blob = reader->text_blob();
    dc.validate = validate;
    auto document = doc::Document::FromSnapshotColumns(dc);
    if (!document.ok()) {
      return Status(document.status().code(),
                    "snapshot '" + path + "' document '" + record.name +
                        "': " + document.status().message());
    }

    text::InvertedIndex::SnapshotColumns ic;
    ic.term_count = record.term_count;
    ic.term_offsets = reader->term_offsets() + record.term_base;
    ic.term_blob = reader->term_blob();
    ic.posting_offsets = reader->posting_offsets() + record.term_base;
    ic.postings_blob = reader->postings_blob();
    ic.node_count = record.node_count;
    ic.posting_count = record.posting_count;
    ic.validate = validate;
    auto index = text::InvertedIndex::FromSnapshotColumns(
        ic, meta.index_options.tokenizer);
    if (!index.ok()) {
      return Status(index.status().code(),
                    "snapshot '" + path + "' index for '" + record.name +
                        "': " + index.status().message());
    }

    doc::SubtreeClassIndex::SnapshotColumns cc;
    cc.node_count = record.node_count;
    cc.class_of = reader->class_of() + b;
    cc.dup_anchor = reader->dup_anchors() + b;
    cc.duplicated_nodes = record.duplicated_nodes;
    cc.duplicated_classes = record.duplicated_classes;
    cc.class_count = meta.class_count;
    cc.validate = validate;
    auto classes = doc::SubtreeClassIndex::FromSnapshotColumns(cc, *document);
    if (!classes.ok()) {
      return Status(classes.status().code(),
                    "snapshot '" + path + "' classes for '" + record.name +
                        "': " + classes.status().message());
    }

    XFRAG_RETURN_NOT_OK(out.collection.AddPrebuilt(
        record.name, std::move(*document), std::move(*index),
        std::move(*classes)));
  }

  out.collection.HoldResource(reader);
  out.meta = meta;
  out.stats = reader->open_stats();
  out.stats.resident_bytes = reader->ResidentBytesNow();
  out.stats.open_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  out.reader = std::move(reader);
  return out;
}

}  // namespace xfrag::storage
