// Memory-mapped immutable collection snapshots: the parse → index →
// hash-cons pipeline runs once (offline, or in xfrag_snapshot), and every
// subsequent process start mmaps the result and serves zero-copy. Format
// spec and rationale: docs/STORAGE.md.
//
// File layout (all offsets page-aligned, integers little-endian):
//
//   page 0   superblock: magic "XFSNAP01", format version, page size,
//            file bytes, TOC location + checksum, header checksum
//   ...      sections (columnar, one per SectionKind), page-aligned
//   tail     TOC: per section (kind, offset, bytes, checksum), varint-coded
//            with the hardened storage/format.h primitives
//
// Node columns are concatenated across documents with shared boundary
// entries: `child_offsets` is u32[total_nodes + 1] cumulative into the
// global child-id column (values are document-local node ids), and
// `text_offsets` is u64[total_nodes + 1] absolute into one global text
// blob, so a document's view is a pointer slice plus the global data base.
// The tag dictionary and the subtree-class table are collection-global;
// term dictionaries and delta-coded posting runs are per-document slices of
// global blobs located through the directory's cumulative bases.
//
// Opening costs O(superblock + TOC + directory): section bounds, alignment,
// and byte sizes are checked against the meta counts without touching data
// pages; the meta and directory sections — the only bytes interpreted at
// open — are also checksum-verified then, so flipped tokenizer options or
// document names never parse cleanly. Structural validation of the columns
// themselves (pre-order parents, CSR consistency, offset monotonicity,
// posting runs) happens per
// document in the zero-copy constructors when
// SnapshotOpenOptions::validate_structure is set (the default — cheap
// integer scans that make adversarial files fail with ParseError instead of
// undefined behavior). VerifyChecksums() is the explicit full-file pass.

#ifndef XFRAG_STORAGE_SNAPSHOT_H_
#define XFRAG_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "collection/collection.h"
#include "common/status.h"
#include "storage/mmap_file.h"
#include "text/inverted_index.h"

namespace xfrag::storage {

inline constexpr uint64_t kSnapshotFormatVersion = 1;
inline constexpr uint64_t kSnapshotPageSize = 4096;
inline constexpr std::string_view kSnapshotMagic = "XFSNAP01";

/// Section identifiers. Unknown kinds are skipped on read (forward
/// compatibility); all kinds below are required.
enum class SectionKind : uint64_t {
  kMeta = 1,
  kDirectory = 2,
  kParents = 3,
  kDepth = 4,
  kSubtreeSize = 5,
  kChildOffsets = 6,
  kChildIds = 7,
  kTagIds = 8,
  kTagDictOffsets = 9,
  kTagDictBlob = 10,
  kTextOffsets = 11,
  kTextBlob = 12,
  kTermOffsets = 13,
  kTermBlob = 14,
  kPostingOffsets = 15,
  kPostingsBlob = 16,
  kClassOf = 17,
  kDupAnchor = 18,
  kClassNodes = 19,
  kClassOccurrences = 20,
};

/// \brief Collection-level counts and build configuration, from the meta
/// section. The counts pin every column's expected byte size at open time.
struct SnapshotMeta {
  std::string tool_version;  // Library version that wrote the file.
  uint64_t doc_count = 0;
  uint64_t node_count = 0;     // Sum over documents.
  uint64_t child_count = 0;    // node_count - doc_count.
  uint64_t tag_dict_count = 0;
  uint64_t tag_blob_bytes = 0;
  uint64_t text_bytes = 0;
  uint64_t term_entry_count = 0;  // Sum of per-document term counts.
  uint64_t term_blob_bytes = 0;
  uint64_t postings_bytes = 0;
  uint64_t posting_count = 0;  // Total postings across documents.
  uint64_t class_count = 0;
  /// Tokenizer/indexing configuration the postings were built with; query
  /// normalization must match it, so it travels in the file.
  text::IndexOptions index_options;
};

/// \brief One document's directory record: counts plus cumulative bases
/// (stored redundantly and cross-checked against accumulation at open).
struct SnapshotDocRecord {
  std::string name;
  uint64_t node_count = 0;
  uint64_t term_count = 0;
  uint64_t posting_count = 0;
  uint64_t duplicated_nodes = 0;
  uint64_t duplicated_classes = 0;
  uint64_t node_base = 0;  // Sum of preceding node_counts.
  uint64_t term_base = 0;  // Sum of preceding term_counts.
};

struct SnapshotOpenOptions {
  /// Run the per-document structural scans when constructing the zero-copy
  /// views (LoadCollectionFromSnapshot). Off = trusted mode: O(1) open, for
  /// snapshots this process (or a trusted pipeline) just wrote.
  bool validate_structure = true;
};

/// \brief Observability record of one open: wall time, size, and how much
/// of the mapping was resident once the collection was constructed.
struct SnapshotOpenStats {
  double open_ms = 0.0;
  uint64_t file_bytes = 0;
  uint64_t mapped_bytes = 0;
  uint64_t resident_bytes = 0;
};

/// \brief Writes `collection` as a snapshot at `path`, atomically and
/// durably (temp file + fsync + rename + directory fsync, so a crash never
/// replaces a good snapshot with a partial one; the temp file is removed on
/// failure).
/// `index_options` must be the configuration the collection's indexes were
/// built with — it is persisted so readers normalize queries identically.
Status WriteSnapshot(const collection::Collection& collection,
                     const text::IndexOptions& index_options,
                     const std::string& path);

/// \brief An open snapshot: the mapping plus the parsed metadata/TOC.
///
/// Construction (Open) validates the superblock, the TOC checksum, section
/// bounds/alignment/presence, and the directory — everything needed to make
/// subsequent typed column access in-bounds — without faulting data pages.
class SnapshotReader {
 public:
  static StatusOr<std::shared_ptr<SnapshotReader>> Open(
      const std::string& path);

  const std::string& path() const { return path_; }
  const SnapshotMeta& meta() const { return meta_; }
  const std::vector<SnapshotDocRecord>& documents() const { return docs_; }
  const SnapshotOpenStats& open_stats() const { return stats_; }

  /// Bytes of the mapping resident right now (observability).
  uint64_t ResidentBytesNow() const { return file_.ResidentBytes(); }

  /// \brief Recomputes every section checksum against the TOC — the full
  /// O(file) integrity pass (xfrag_snapshot verify, fuzz tests).
  Status VerifyChecksums() const;

  // Typed column bases (collection-global; see the layout comment above).
  // Bounds were established at Open from the meta counts.
  const uint32_t* parents() const { return U32(SectionKind::kParents); }
  const uint32_t* depths() const { return U32(SectionKind::kDepth); }
  const uint32_t* subtree_sizes() const {
    return U32(SectionKind::kSubtreeSize);
  }
  const uint32_t* child_offsets() const {
    return U32(SectionKind::kChildOffsets);
  }
  const uint32_t* child_ids() const { return U32(SectionKind::kChildIds); }
  const uint32_t* tag_ids() const { return U32(SectionKind::kTagIds); }
  const uint64_t* tag_dict_offsets() const {
    return U64(SectionKind::kTagDictOffsets);
  }
  std::string_view tag_dict_blob() const {
    return Bytes(SectionKind::kTagDictBlob);
  }
  const uint64_t* text_offsets() const {
    return U64(SectionKind::kTextOffsets);
  }
  std::string_view text_blob() const { return Bytes(SectionKind::kTextBlob); }
  const uint64_t* term_offsets() const {
    return U64(SectionKind::kTermOffsets);
  }
  std::string_view term_blob() const { return Bytes(SectionKind::kTermBlob); }
  const uint64_t* posting_offsets() const {
    return U64(SectionKind::kPostingOffsets);
  }
  std::string_view postings_blob() const {
    return Bytes(SectionKind::kPostingsBlob);
  }
  const uint32_t* class_of() const { return U32(SectionKind::kClassOf); }
  const uint32_t* dup_anchors() const { return U32(SectionKind::kDupAnchor); }
  const uint64_t* class_nodes() const { return U64(SectionKind::kClassNodes); }
  const uint64_t* class_occurrences() const {
    return U64(SectionKind::kClassOccurrences);
  }

 private:
  struct Section {
    uint64_t offset = 0;
    uint64_t bytes = 0;
    uint64_t checksum = 0;
    bool present = false;
  };

  SnapshotReader() = default;

  const Section& Sec(SectionKind kind) const {
    return sections_[static_cast<size_t>(kind)];
  }
  std::string_view Bytes(SectionKind kind) const {
    const Section& s = Sec(kind);
    return file_.bytes().substr(s.offset, s.bytes);
  }
  const uint32_t* U32(SectionKind kind) const {
    return reinterpret_cast<const uint32_t*>(file_.data() + Sec(kind).offset);
  }
  const uint64_t* U64(SectionKind kind) const {
    return reinterpret_cast<const uint64_t*>(file_.data() + Sec(kind).offset);
  }

  std::string path_;
  MmapFile file_;
  SnapshotMeta meta_;
  std::vector<SnapshotDocRecord> docs_;
  std::vector<Section> sections_;  // Indexed by SectionKind value.
  SnapshotOpenStats stats_;
};

/// \brief A collection served zero-copy from an open snapshot. The reader
/// is anchored inside the collection (Collection::HoldResource), so moving
/// the struct or dropping `reader` is safe.
struct SnapshotCollection {
  collection::Collection collection;
  SnapshotMeta meta;
  SnapshotOpenStats stats;
  std::shared_ptr<SnapshotReader> reader;
};

/// \brief Opens `path` and constructs the zero-copy collection over it.
/// With `options.validate_structure` (default) every document's columns are
/// structurally validated during construction; a corrupt snapshot fails
/// here with ParseError and never causes out-of-bounds reads later.
StatusOr<SnapshotCollection> LoadCollectionFromSnapshot(
    const std::string& path, const SnapshotOpenOptions& options = {});

}  // namespace xfrag::storage

#endif  // XFRAG_STORAGE_SNAPSHOT_H_
