#include "storage/storage.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "common/strings.h"
#include "storage/format.h"

namespace xfrag::storage {

namespace {

constexpr std::string_view kMagic = "XFRAGDB";
constexpr uint64_t kFormatVersion = 1;
constexpr uint64_t kDocumentSection = 1;
constexpr uint64_t kIndexSection = 2;

void EncodeDocument(const doc::Document& document, std::string* out) {
  PutVarint(document.size(), out);
  // Parents, shifted so the root's kNoNode encodes as 0.
  for (doc::NodeId n = 0; n < document.size(); ++n) {
    uint64_t encoded =
        document.parent(n) == doc::kNoNode
            ? 0
            : static_cast<uint64_t>(document.parent(n)) + 1;
    PutVarint(encoded, out);
  }
  // Tag dictionary.
  std::vector<std::string> dictionary;
  std::unordered_map<std::string, uint64_t> tag_ids;
  std::vector<uint64_t> node_tags;
  node_tags.reserve(document.size());
  for (doc::NodeId n = 0; n < document.size(); ++n) {
    auto [it, inserted] = tag_ids.emplace(document.tag(n), dictionary.size());
    if (inserted) dictionary.emplace_back(document.tag(n));
    node_tags.push_back(it->second);
  }
  PutVarint(dictionary.size(), out);
  for (const std::string& tag : dictionary) PutString(tag, out);
  for (uint64_t id : node_tags) PutVarint(id, out);
  // Texts.
  for (doc::NodeId n = 0; n < document.size(); ++n) {
    PutString(document.text(n), out);
  }
}

StatusOr<doc::Document> DecodeDocument(std::string_view payload) {
  Reader reader(payload);
  auto count = reader.ReadVarint();
  if (!count.ok()) return count.status();
  if (*count == 0) return Status::ParseError("document with zero nodes");
  if (*count > (uint64_t{1} << 32)) {
    return Status::ParseError("implausible node count");
  }
  std::vector<doc::NodeId> parents;
  parents.reserve(*count);
  for (uint64_t i = 0; i < *count; ++i) {
    auto encoded = reader.ReadVarint();
    if (!encoded.ok()) return encoded.status();
    parents.push_back(*encoded == 0
                          ? doc::kNoNode
                          : static_cast<doc::NodeId>(*encoded - 1));
  }
  auto dictionary_size = reader.ReadVarint();
  if (!dictionary_size.ok()) return dictionary_size.status();
  std::vector<std::string> dictionary;
  for (uint64_t i = 0; i < *dictionary_size; ++i) {
    auto tag = reader.ReadString();
    if (!tag.ok()) return tag.status();
    dictionary.push_back(std::move(*tag));
  }
  std::vector<std::string> tags;
  tags.reserve(*count);
  for (uint64_t i = 0; i < *count; ++i) {
    auto id = reader.ReadVarint();
    if (!id.ok()) return id.status();
    if (*id >= dictionary.size()) {
      return Status::ParseError("tag id out of dictionary range");
    }
    tags.push_back(dictionary[*id]);
  }
  std::vector<std::string> texts;
  texts.reserve(*count);
  for (uint64_t i = 0; i < *count; ++i) {
    auto text = reader.ReadString();
    if (!text.ok()) return text.status();
    texts.push_back(std::move(*text));
  }
  if (!reader.AtEnd()) {
    return Status::ParseError("trailing bytes in document section");
  }
  return doc::Document::FromParents(std::move(parents), std::move(tags),
                                    std::move(texts));
}

void EncodeIndex(const text::InvertedIndex& index, std::string* out) {
  std::vector<std::string> terms = index.Terms();
  std::sort(terms.begin(), terms.end());  // Deterministic encoding.
  PutVarint(terms.size(), out);
  for (const std::string& term : terms) {
    PutString(term, out);
    const auto& postings = index.Lookup(term);
    PutVarint(postings.size(), out);
    doc::NodeId previous = 0;
    for (doc::NodeId n : postings) {
      PutVarint(n - previous, out);  // Delta encoding; lists are sorted.
      previous = n;
    }
  }
}

StatusOr<text::InvertedIndex> DecodeIndex(std::string_view payload) {
  Reader reader(payload);
  auto term_count = reader.ReadVarint();
  if (!term_count.ok()) return term_count.status();
  std::unordered_map<std::string, std::vector<doc::NodeId>> postings;
  postings.reserve(*term_count);
  for (uint64_t t = 0; t < *term_count; ++t) {
    auto term = reader.ReadString();
    if (!term.ok()) return term.status();
    auto posting_count = reader.ReadVarint();
    if (!posting_count.ok()) return posting_count.status();
    std::vector<doc::NodeId> list;
    list.reserve(*posting_count);
    uint64_t current = 0;
    for (uint64_t i = 0; i < *posting_count; ++i) {
      auto delta = reader.ReadVarint();
      if (!delta.ok()) return delta.status();
      current += *delta;
      if (current > (uint64_t{1} << 32)) {
        return Status::ParseError("posting id out of range");
      }
      list.push_back(static_cast<doc::NodeId>(current));
    }
    postings.emplace(std::move(*term), std::move(list));
  }
  if (!reader.AtEnd()) {
    return Status::ParseError("trailing bytes in index section");
  }
  return text::InvertedIndex::FromPostings(std::move(postings));
}

void AppendSection(uint64_t kind, std::string payload, std::string* out) {
  PutVarint(kind, out);
  PutString(payload, out);
}

}  // namespace

std::string WriteBundle(const doc::Document& document,
                        const text::InvertedIndex* index) {
  std::string sections;
  std::string document_payload;
  EncodeDocument(document, &document_payload);
  AppendSection(kDocumentSection, std::move(document_payload), &sections);
  if (index != nullptr) {
    std::string index_payload;
    EncodeIndex(*index, &index_payload);
    AppendSection(kIndexSection, std::move(index_payload), &sections);
  }
  std::string out;
  out.append(kMagic);
  PutVarint(kFormatVersion, &out);
  PutString(sections, &out);
  PutFixed64(Checksum(sections), &out);
  return out;
}

StatusOr<Bundle> ReadBundle(std::string_view data) {
  if (data.substr(0, kMagic.size()) != kMagic) {
    return Status::ParseError("not an xfrag bundle (bad magic)");
  }
  Reader reader(data.substr(kMagic.size()));
  auto version = reader.ReadVarint();
  if (!version.ok()) return version.status();
  if (*version != kFormatVersion) {
    return Status::ParseError(
        StrFormat("unsupported bundle version %llu",
                  static_cast<unsigned long long>(*version)));
  }
  auto sections = reader.ReadString();
  if (!sections.ok()) return sections.status();
  auto checksum = reader.ReadFixed64();
  if (!checksum.ok()) return checksum.status();
  if (*checksum != Checksum(*sections)) {
    return Status::ParseError("bundle checksum mismatch (corrupt file)");
  }
  if (!reader.AtEnd()) {
    return Status::ParseError("trailing bytes after bundle checksum");
  }

  Reader section_reader(*sections);
  std::optional<doc::Document> document;
  std::optional<text::InvertedIndex> index;
  while (!section_reader.AtEnd()) {
    auto kind = section_reader.ReadVarint();
    if (!kind.ok()) return kind.status();
    auto payload = section_reader.ReadString();
    if (!payload.ok()) return payload.status();
    if (*kind == kDocumentSection) {
      auto decoded = DecodeDocument(*payload);
      if (!decoded.ok()) return decoded.status();
      document.emplace(std::move(*decoded));
    } else if (*kind == kIndexSection) {
      auto decoded = DecodeIndex(*payload);
      if (!decoded.ok()) return decoded.status();
      index.emplace(std::move(*decoded));
    }
    // Unknown sections are skipped (forward compatibility).
  }
  if (!document.has_value()) {
    return Status::ParseError("bundle has no document section");
  }
  Bundle bundle(std::move(*document));
  bundle.index = std::move(index);
  return bundle;
}

Status SaveBundleToFile(const std::string& path,
                        const doc::Document& document,
                        const text::InvertedIndex* index) {
  return WriteFileDurable(path, WriteBundle(document, index));
}

StatusOr<Bundle> LoadBundleFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto bundle = ReadBundle(buffer.str());
  if (!bundle.ok()) {
    // Re-wrap with the path so a failed multi-file startup names the culprit.
    return Status(bundle.status().code(),
                  "'" + path + "': " + bundle.status().message());
  }
  return bundle;
}

}  // namespace xfrag::storage
