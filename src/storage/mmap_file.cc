#include "storage/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

namespace xfrag::storage {

MmapFile::~MmapFile() {
  if (data_ != nullptr) ::munmap(data_, size_);
}

MmapFile::MmapFile(MmapFile&& other) noexcept {
  *this = std::move(other);
}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this == &other) return *this;
  if (data_ != nullptr) ::munmap(data_, size_);
  data_ = std::exchange(other.data_, nullptr);
  size_ = std::exchange(other.size_, 0);
  return *this;
}

StatusOr<MmapFile> MmapFile::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::NotFound("cannot open '" + path +
                            "': " + std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    Status status = Status::Internal("cannot stat '" + path +
                                     "': " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (st.st_size <= 0) {
    ::close(fd);
    return Status::ParseError("'" + path + "' is empty");
  }
  size_t size = static_cast<size_t>(st.st_size);
  void* data = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // The mapping holds its own reference to the file.
  if (data == MAP_FAILED) {
    return Status::Internal("cannot mmap '" + path +
                            "': " + std::strerror(errno));
  }
  MmapFile file;
  file.data_ = data;
  file.size_ = size;
  return file;
}

uint64_t MmapFile::ResidentBytes() const {
  if (data_ == nullptr) return 0;
  const size_t page = static_cast<size_t>(::sysconf(_SC_PAGESIZE));
  const size_t pages = (size_ + page - 1) / page;
  std::vector<unsigned char> residency(pages);
  if (::mincore(data_, size_, residency.data()) != 0) return 0;
  uint64_t resident_pages = 0;
  for (unsigned char r : residency) resident_pages += (r & 1u);
  return resident_pages * page;
}

void MmapFile::AdviseSequential() const {
  if (data_ != nullptr) ::madvise(data_, size_, MADV_SEQUENTIAL);
}

}  // namespace xfrag::storage
