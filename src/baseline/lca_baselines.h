// Baseline keyword-search semantics from the literature the paper argues
// against (§1, §6):
//
//  * SLCA — smallest lowest common ancestors (Xu & Papakonstantinou,
//    SIGMOD'05, the paper's [20]): nodes whose subtree contains all query
//    keywords and none of whose children's subtrees do.
//  * ELCA — exclusive LCAs (XRank, the paper's [7]): nodes that still contain
//    all keywords after excluding occurrences that belong to a descendant
//    which itself contains all keywords.
//  * Smallest-containing-subtree answers — the "conventional query
//    semantics" of the introduction: each SLCA's full subtree as one answer.
//
// These implement the effectiveness comparison: on the paper's Figure-1
// document, none of them can return the target fragment ⟨n16,n17,n18⟩.

#ifndef XFRAG_BASELINE_LCA_BASELINES_H_
#define XFRAG_BASELINE_LCA_BASELINES_H_

#include <string>
#include <vector>

#include "algebra/fragment_set.h"
#include "common/status.h"
#include "doc/document.h"
#include "text/inverted_index.h"

namespace xfrag::baseline {

/// \brief LCA-family baselines over one document + index.
class LcaBaselines {
 public:
  LcaBaselines(const doc::Document& document, const text::InvertedIndex& index)
      : document_(document), index_(index) {}

  /// \brief SLCA nodes for the conjunctive keyword query `terms`.
  ///
  /// Runs in O(N·m·log P) over document size N, m terms, posting sizes P —
  /// a scan over the containment-closed candidate set (ancestors of an SLCA
  /// always contain all keywords, so the set is upward-closed and minimal
  /// elements are exactly nodes with no qualifying child).
  /// Empty result when any term has no postings. Sorted by node id.
  StatusOr<std::vector<doc::NodeId>> Slca(
      const std::vector<std::string>& terms) const;

  /// \brief Brute-force SLCA oracle: enumerates every match combination,
  /// takes LCAs, keeps the minimal ones. Exponential in m; for tests.
  StatusOr<std::vector<doc::NodeId>> SlcaBruteForce(
      const std::vector<std::string>& terms, size_t max_combinations) const;

  /// \brief ELCA nodes for the conjunctive keyword query `terms`.
  StatusOr<std::vector<doc::NodeId>> Elca(
      const std::vector<std::string>& terms) const;

  /// \brief The smallest-containing-subtree answer set: for each SLCA node,
  /// the fragment consisting of its entire subtree.
  StatusOr<algebra::FragmentSet> SmallestSubtreeAnswers(
      const std::vector<std::string>& terms) const;

 private:
  /// Nodes whose subtree contains at least one posting of every term
  /// (upward-closed), as a boolean mask over node ids.
  StatusOr<std::vector<bool>> ContainsAllMask(
      const std::vector<std::string>& terms) const;

  const doc::Document& document_;
  const text::InvertedIndex& index_;
};

}  // namespace xfrag::baseline

#endif  // XFRAG_BASELINE_LCA_BASELINES_H_
