#include "baseline/lca_baselines.h"

#include <algorithm>

#include "common/strings.h"

namespace xfrag::baseline {

using algebra::Fragment;
using algebra::FragmentSet;
using doc::NodeId;

StatusOr<std::vector<bool>> LcaBaselines::ContainsAllMask(
    const std::vector<std::string>& terms) const {
  if (terms.empty()) {
    return Status::InvalidArgument("query must contain at least one term");
  }
  std::vector<bool> mask(document_.size(), false);
  // Seed: a node contains all terms when every posting list intersects its
  // subtree range [n, n + subtree_size).
  for (NodeId n = 0; n < document_.size(); ++n) {
    bool all = true;
    for (const auto& term : terms) {
      const auto& postings = index_.Lookup(term);
      auto it = std::lower_bound(postings.begin(), postings.end(), n);
      if (it == postings.end() || *it >= n + document_.subtree_size(n)) {
        all = false;
        break;
      }
    }
    mask[n] = all;
  }
  return mask;
}

StatusOr<std::vector<NodeId>> LcaBaselines::Slca(
    const std::vector<std::string>& terms) const {
  auto mask = ContainsAllMask(terms);
  if (!mask.ok()) return mask.status();
  std::vector<NodeId> out;
  for (NodeId n = 0; n < document_.size(); ++n) {
    if (!(*mask)[n]) continue;
    bool child_contains = false;
    for (NodeId child : document_.children(n)) {
      if ((*mask)[child]) {
        child_contains = true;
        break;
      }
    }
    if (!child_contains) out.push_back(n);
  }
  return out;
}

StatusOr<std::vector<NodeId>> LcaBaselines::SlcaBruteForce(
    const std::vector<std::string>& terms, size_t max_combinations) const {
  if (terms.empty()) {
    return Status::InvalidArgument("query must contain at least one term");
  }
  size_t combinations = 1;
  std::vector<const std::vector<NodeId>*> lists;
  for (const auto& term : terms) {
    const auto& postings = index_.Lookup(term);
    if (postings.empty()) return std::vector<NodeId>{};
    combinations *= postings.size();
    if (combinations > max_combinations) {
      return Status::ResourceExhausted(
          StrFormat("brute-force SLCA would enumerate > %zu combinations",
                    max_combinations));
    }
    lists.push_back(&postings);
  }
  // Enumerate the cross product with a mixed-radix counter.
  std::vector<size_t> counter(lists.size(), 0);
  std::vector<NodeId> lcas;
  while (true) {
    NodeId lca = (*lists[0])[counter[0]];
    for (size_t i = 1; i < lists.size(); ++i) {
      lca = document_.Lca(lca, (*lists[i])[counter[i]]);
    }
    lcas.push_back(lca);
    size_t digit = 0;
    while (digit < counter.size()) {
      if (++counter[digit] < lists[digit]->size()) break;
      counter[digit] = 0;
      ++digit;
    }
    if (digit == counter.size()) break;
  }
  std::sort(lcas.begin(), lcas.end());
  lcas.erase(std::unique(lcas.begin(), lcas.end()), lcas.end());
  // Keep minimal elements: drop any LCA that is a strict ancestor of another.
  std::vector<NodeId> out;
  for (NodeId candidate : lcas) {
    bool has_descendant = false;
    for (NodeId other : lcas) {
      if (other != candidate && document_.IsAncestor(candidate, other)) {
        has_descendant = true;
        break;
      }
    }
    if (!has_descendant) out.push_back(candidate);
  }
  return out;
}

StatusOr<std::vector<NodeId>> LcaBaselines::Elca(
    const std::vector<std::string>& terms) const {
  auto mask = ContainsAllMask(terms);
  if (!mask.ok()) return mask.status();
  // The mask is upward-closed, so the deepest masked ancestor-or-self of a
  // posting p is found by walking up from p until the mask holds.
  auto lowest_masked_ancestor = [&](NodeId p) -> NodeId {
    NodeId cur = p;
    while (!(*mask)[cur]) cur = document_.parent(cur);
    return cur;  // Root is masked whenever any candidate exists.
  };
  std::vector<NodeId> out;
  for (NodeId n = 0; n < document_.size(); ++n) {
    if (!(*mask)[n]) continue;
    bool elca = true;
    for (const auto& term : terms) {
      const auto& postings = index_.Lookup(term);
      auto it = std::lower_bound(postings.begin(), postings.end(), n);
      NodeId end = n + document_.subtree_size(n);
      bool witness = false;
      for (; it != postings.end() && *it < end; ++it) {
        if (lowest_masked_ancestor(*it) == n) {
          witness = true;
          break;
        }
      }
      if (!witness) {
        elca = false;
        break;
      }
    }
    if (elca) out.push_back(n);
  }
  return out;
}

StatusOr<FragmentSet> LcaBaselines::SmallestSubtreeAnswers(
    const std::vector<std::string>& terms) const {
  auto slca = Slca(terms);
  if (!slca.ok()) return slca.status();
  FragmentSet out;
  for (NodeId root : *slca) {
    std::vector<NodeId> nodes;
    nodes.reserve(document_.subtree_size(root));
    for (NodeId n = root; n < root + document_.subtree_size(root); ++n) {
      nodes.push_back(n);
    }
    out.Insert(Fragment::FromSortedUnchecked(std::move(nodes)));
  }
  return out;
}

}  // namespace xfrag::baseline
